"""Shared fixtures and helpers for the benchmark suite.

Every benchmark file regenerates one table or figure of the reproduced
evaluation (see ``DESIGN.md`` §4 and ``EXPERIMENTS.md``).  Benchmarks are run
with ``pytest benchmarks/ --benchmark-only``; in addition to the
pytest-benchmark timing table, each experiment writes its memory/runtime
table to ``benchmarks/results/<experiment>.txt`` so the numbers quoted in
``EXPERIMENTS.md`` can be regenerated verbatim.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.bench.harness import Measurement
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.engines.projection_engine import ProjectionEngine
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG, BIB_DTD_WEAK
from repro.workloads.xmark import generate_auction_site

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Number of books in the default per-query comparison document (~65 kB).
DEFAULT_BOOKS = 200

#: Book counts for the document-size scaling experiments (F3/F4).
SCALING_BOOKS = [50, 100, 200, 400, 800]


def make_engines(dtd) -> Dict[str, object]:
    """The three engines the evaluation compares."""
    return {
        "flux": FluxEngine(dtd),
        "projection": ProjectionEngine(dtd),
        "dom": DomEngine(dtd),
    }


@pytest.fixture(scope="session")
def bib_document() -> str:
    """The default strong-DTD bibliography document."""
    return generate_bibliography(num_books=DEFAULT_BOOKS, seed=2004)


@pytest.fixture(scope="session")
def bib_documents_by_size() -> Dict[str, str]:
    """Bibliography documents of increasing size (for F3/F4)."""
    return {
        f"bib-{books}": generate_bibliography(num_books=books, seed=2004)
        for books in SCALING_BOOKS
    }


@pytest.fixture(scope="session")
def weak_bib_document() -> str:
    """A weak-DTD bibliography (interleaved children) of the default size."""
    return generate_bibliography(num_books=DEFAULT_BOOKS, seed=2004, conform_to="weak")


@pytest.fixture(scope="session")
def auction_document() -> str:
    """The auction-site document (~160 kB)."""
    return generate_auction_site(scale=1.0, seed=2004)


@pytest.fixture(scope="session")
def bib_engines():
    return make_engines(BIB_DTD_STRONG)


@pytest.fixture(scope="session")
def auction_engines():
    return make_engines(AUCTION_DTD)


def run_and_record(benchmark, engine, engine_name, query, query_name, document, document_name,
                   collector: List[Measurement]):
    """Run ``engine`` on (query, document) under pytest-benchmark and record a
    measurement row for the experiment table."""
    if hasattr(engine, "compile"):
        # Compile outside the measured region: the paper reports evaluation
        # cost; query compilation is a one-time cost reported separately.
        engine.compile(query)
    result_holder = {}

    def target():
        result_holder["result"] = engine.execute(query, document)
        return result_holder["result"]

    benchmark.pedantic(target, rounds=1, iterations=1)
    result = result_holder["result"]
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["peak_buffer_bytes"] = result.stats.peak_buffer_bytes
    benchmark.extra_info["output_bytes"] = result.stats.output_bytes
    collector.append(
        Measurement(
            engine=engine_name,
            query=query_name,
            document=document_name,
            document_bytes=len(document),
            peak_buffer_bytes=result.stats.peak_buffer_bytes,
            elapsed_seconds=result.stats.elapsed_seconds,
            output_bytes=result.stats.output_bytes,
            events_processed=result.stats.events_processed,
        )
    )
    return result


def write_report(filename: str, *sections: str) -> str:
    """Write an experiment report to ``benchmarks/results/<filename>``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    content = "\n\n".join(sections) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return content
