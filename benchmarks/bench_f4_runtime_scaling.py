"""Experiment F4 — evaluation runtime as a function of document size.

All three engines process documents in time linear in the document size (the
FluX engine is single-pass; the baselines parse everything before
evaluating).  The figure checks that linearity and compares the constant
factors; the important qualitative outcome is that the FluX engine's
streaming machinery does not introduce super-linear behaviour.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import format_series, series_by
from repro.workloads.queries import get_query

from conftest import SCALING_BOOKS, run_and_record, write_report

_MEASUREMENTS: List[Measurement] = []
_ENGINE_NAMES = ["flux", "projection", "dom"]
_SPEC = get_query("BIB-Q3")


@pytest.mark.parametrize("books", SCALING_BOOKS)
@pytest.mark.parametrize("engine_name", _ENGINE_NAMES)
def test_f4_runtime_scaling(benchmark, engine_name, books, bib_engines, bib_documents_by_size):
    document_name = f"bib-{books}"
    document = bib_documents_by_size[document_name]
    engine = bib_engines[engine_name]
    result = run_and_record(
        benchmark,
        engine,
        engine_name,
        _SPEC.xquery,
        _SPEC.key,
        document,
        document_name,
        _MEASUREMENTS,
    )
    assert result.output


@pytest.fixture(scope="module", autouse=True)
def report_f4():
    yield
    if not _MEASUREMENTS:
        return
    series_text = format_series(
        _MEASUREMENTS,
        x_key="document_bytes",
        metric="elapsed_seconds",
        title="F4: evaluation runtime vs document size (BIB-Q3, strong DTD)",
    )
    series = series_by(_MEASUREMENTS, metric="elapsed_seconds")
    linearity = ["runtime growth vs size growth (ratio ~1 means linear):"]
    for engine_name, points in series.items():
        (x0, y0), (x1, y1) = points[0], points[-1]
        if y0 > 0 and x0 > 0:
            ratio = (y1 / y0) / (x1 / x0)
            linearity.append(f"  {engine_name}: {ratio:.2f}")
    content = write_report("f4_runtime_scaling.txt", series_text, "\n".join(linearity))
    print("\n" + content)
