"""Experiment S8 — static cost model vs observed serving cost.

The analyzer (``repro.analysis.query``) prices every compiled plan before
any data flows: predicted events routed per document, predicted buffered
items, a combined score (what ``repro explain`` prints and what query
registration exposes as ``static_cost``).  This experiment checks the two
claims that make the score *useful*:

1. **Ranking agreement** — across each workload's catalogued fleet, the
   static scores rank the queries roughly as their *measured* per-pass
   cost ranks them (events actually routed to each query plus bytes it
   actually buffered, from a real shared pass).  Absolute calibration is
   not claimed — the model guesses ``*``-axis fan-out — so agreement is
   scored with Kendall's tau over all query pairs.

2. **Auto-mode competitiveness** — the ``--execution auto`` policy
   (:func:`~repro.analysis.query.select_mode`, fed those same estimates)
   picks an execution configuration whose measured serving throughput is
   within 20% of the best manual choice on the same document stream.

Machine-checked acceptance, per workload (bib and XMark):

* Kendall tau between static and measured ranking ≥ 0.3;
* auto-selected configuration throughput ≥ 0.8 × best manual.

Results land in ``benchmarks/results/s8_static_cost.{json,txt}``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import pytest

from repro.analysis.query import estimate_cost, select_mode
from repro.core.optimizer import OptimizerPipeline
from repro.dtd.parser import parse_dtd
from repro.runtime.plan_cache import PlanCache
from repro.service import QueryService, ServicePool
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.workloads.xmark import generate_auction_site

from conftest import RESULTS_DIR, write_report

_CONFIGS = {
    "bib": (
        BIB_DTD_STRONG,
        queries_for_workload("bib"),
        lambda: generate_bibliography(num_books=60, seed=2004),
    ),
    "xmark": (
        AUCTION_DTD,
        queries_for_workload("auction"),
        lambda: generate_auction_site(scale=0.2, seed=2004),
    ),
}

#: The manual execution configurations auto competes against —
#: (label, execution, pool workers); ``None`` workers is the plain
#: unpooled serve loop.
_MANUAL = [
    ("inline", "inline", None),
    ("threads", "threads", None),
    ("inline-pool2", "inline", 2),
]

DOCUMENT_COUNT = 6

_REPORT: Dict[str, dict] = {}


def kendall_tau(xs: List[float], ys: List[float]) -> float:
    """Kendall rank correlation over all pairs (ties count as agreement
    when tied in both, else as half-discordance via the simple tau-a on
    untied pairs)."""
    concordant = discordant = 0
    n = len(xs)
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            product = dx * dy
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 1.0


def measured_costs(dtd, specs, document) -> Dict[str, float]:
    """Observed per-query pass cost: events routed + buffered-byte weight.

    The same shape as the static score (events dominate, buffering
    weighted in) but from a real shared pass's accounting.
    """
    service = QueryService(dtd, execution="inline")
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    results = service.run_pass(document)
    forwarded = service.metrics.last_pass.per_query_forwarded
    return {
        spec.key: float(forwarded.get(spec.key, 0))
        + results[spec.key].peak_buffer_bytes / 16.0
        for spec in specs
    }


def serve_throughput(dtd, specs, documents, execution, workers) -> float:
    """Parser bytes per second serving ``documents`` under one config."""
    total_bytes = sum(len(document) for document in documents)
    if workers is None:
        service = QueryService(dtd, execution=execution)
        for spec in specs:
            service.register(spec.xquery, key=spec.key)
        started = time.perf_counter()
        for document in documents:
            service.run_pass(document)
        elapsed = time.perf_counter() - started
    else:
        pool = ServicePool(dtd, workers=workers, execution=execution)
        for spec in specs:
            pool.register(spec.xquery, key=spec.key)
        started = time.perf_counter()
        for outcome in pool.serve(iter(documents)):
            assert outcome.ok, outcome.error
        elapsed = time.perf_counter() - started
    return total_bytes / elapsed


@pytest.mark.parametrize("workload", sorted(_CONFIGS))
def test_s8_static_cost(benchmark, workload):
    dtd_text, specs, make_document = _CONFIGS[workload]
    dtd = parse_dtd(dtd_text)
    document = make_document()
    documents = [document] * DOCUMENT_COUNT
    row: Dict[str, object] = {}

    def run_all():
        # --- 1. static vs measured ranking -------------------------------
        cache = PlanCache()
        pipeline = OptimizerPipeline(dtd)
        static: Dict[str, float] = {}
        estimates = []
        for spec in specs:
            entry, _ = cache.get_or_compile(spec.xquery, pipeline)
            estimate = estimate_cost(entry)
            static[spec.key] = estimate.score
            estimates.append(estimate)
        measured = measured_costs(dtd, specs, document)
        keys = [spec.key for spec in specs]
        tau = kendall_tau([static[k] for k in keys], [measured[k] for k in keys])

        # --- 2. auto mode vs manual configurations -----------------------
        throughput = {
            label: serve_throughput(dtd, specs, documents, execution, workers)
            for label, execution, workers in _MANUAL
        }
        decision = select_mode(
            estimates,
            document_bytes=len(document),
            document_count=DOCUMENT_COUNT,
            cpu_count=os.cpu_count(),
        )
        auto_workers = decision.workers if decision.pooled else None
        auto_execution = decision.execution
        auto_label = f"auto({auto_execution}, workers={auto_workers})"
        auto = serve_throughput(dtd, specs, documents, auto_execution, auto_workers)
        best_label, best = max(throughput.items(), key=lambda item: item[1])

        row.update(
            {
                "queries": len(specs),
                "document_bytes": len(document),
                "kendall_tau": tau,
                "per_query": {
                    key: {"static": static[key], "measured": measured[key]}
                    for key in keys
                },
                "throughput_bytes_per_second": dict(throughput),
                "auto": {
                    "label": auto_label,
                    "decision": decision.describe(),
                    "reasons": list(decision.reasons),
                    "throughput": auto,
                },
                "best_manual": {"label": best_label, "throughput": best},
                "auto_vs_best": auto / best,
            }
        )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    _REPORT[workload] = row
    benchmark.extra_info.update(
        {"kendall_tau": row["kendall_tau"], "auto_vs_best": row["auto_vs_best"]}
    )

    # Acceptance: the static ranking agrees with the measured one, and
    # auto is within 20% of the best manual configuration.
    assert row["kendall_tau"] >= 0.3
    assert row["auto_vs_best"] >= 0.8


@pytest.fixture(scope="module", autouse=True)
def report_s8():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s8_static_cost.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S8: static cost model — predicted vs observed, auto vs manual",
        "",
        f"{'workload':<10}{'queries':>8}{'tau':>7}{'auto/best':>11}  "
        f"auto decision / best manual",
    ]
    for workload in sorted(_REPORT):
        row = _REPORT[workload]
        lines.append(
            f"{workload:<10}{row['queries']:>8}{row['kendall_tau']:>7.2f}"
            f"{row['auto_vs_best']:>11.2f}  "
            f"{row['auto']['label']} / {row['best_manual']['label']}"
        )
        lines.append("")
        lines.append(f"  {'query':<28}{'static':>12}{'measured':>12}")
        ranked = sorted(
            row["per_query"].items(), key=lambda item: item[1]["static"]
        )
        for key, scores in ranked:
            lines.append(
                f"  {key:<28}{scores['static']:>12.1f}{scores['measured']:>12.1f}"
            )
        lines.append("")
    content = write_report("s8_static_cost.txt", "\n".join(lines))
    print("\n" + content)
