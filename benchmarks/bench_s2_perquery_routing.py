"""Experiment S2 — per-query event routing and the inline scheduler.

PR 1's shared pass filtered the stream once with the *union* of all
registered queries' interest, then broadcast every surviving event to every
session: a sparse query in a dense fleet paid for the whole fleet's
appetite.  PR 2 routes per query — one stack-machine pass computes, per
admitted event, the bitmask of plans that actually need it — and optionally
drives the per-query runtimes *inline* (round-robin on the dispatch thread)
instead of on worker threads.

This experiment measures both claims on the bibliography fleet and the
XMark auction fleet:

* **routing**: for each query, the events routed to it versus
  ``events_forwarded`` (what the union filter would have broadcast to every
  session).  The acceptance bar: on the bib 6-query fleet, at least one
  sparse query receives *strictly fewer* events than the union forwarded
  count.
* **execution modes**: wall-clock of the same pass under
  ``execution="threads"`` (PR 1 model: one worker per query behind a
  bounded channel) and ``execution="inline"`` (no threads, re-entrant
  evaluator generators).

Correctness is asserted throughout: every query's output must be
byte-identical to its solo ``FluxEngine`` run in *both* modes.  Results are
written to ``benchmarks/results/s2_perquery_routing.{json,txt}``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.service import QueryService
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload

from conftest import RESULTS_DIR, write_report

_CONFIGS = {
    "bib": BIB_DTD_STRONG,
    "auction": AUCTION_DTD,
}

_REPORT: Dict[str, dict] = {}


def _solo_outputs(dtd, specs, document) -> Dict[str, str]:
    engine = FluxEngine(dtd)
    return {spec.key: engine.execute(spec.xquery, document).output for spec in specs}


def _run_mode(dtd, specs, document, execution: str) -> dict:
    service = QueryService(dtd, execution=execution)
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    started = time.perf_counter()
    results = service.run_pass(document)
    elapsed = time.perf_counter() - started
    metrics = service.metrics.last_pass
    return {
        "elapsed_seconds": elapsed,
        "parser_events": metrics.parser_events,
        "events_forwarded": metrics.events_forwarded,
        "per_query_forwarded": dict(metrics.per_query_forwarded),
        "per_query_pruned": dict(metrics.per_query_pruned),
        "outputs": {key: result.output for key, result in results.items()},
    }


@pytest.mark.parametrize("workload", sorted(_CONFIGS))
def test_s2_routing_beats_union_broadcast(
    benchmark, workload, bib_document, auction_document
):
    dtd = _CONFIGS[workload]
    document = bib_document if workload == "bib" else auction_document
    specs = queries_for_workload(workload)
    solo = _solo_outputs(dtd, specs, document)

    holder = {}

    def target():
        holder["threads"] = _run_mode(dtd, specs, document, "threads")
        return holder["threads"]

    benchmark.pedantic(target, rounds=1, iterations=1)
    threads = holder["threads"]
    inline = _run_mode(dtd, specs, document, "inline")

    # Correctness first: byte-identical to solo in both execution modes.
    assert threads["outputs"] == solo
    assert inline["outputs"] == solo

    forwarded = threads["events_forwarded"]
    per_query = threads["per_query_forwarded"]
    # Routing must agree between modes (it is independent of the driver).
    assert per_query == inline["per_query_forwarded"]
    # Every query gets at most the union broadcast...
    assert all(routed <= forwarded for routed in per_query.values())
    sparse = {key: routed for key, routed in per_query.items() if routed < forwarded}
    # ...and on the bib 6-query fleet at least one sparse query strictly less.
    if workload == "bib":
        assert len(specs) >= 5
        assert sparse, "expected a sparse query to beat the union broadcast"

    entry = {
        "workload": workload,
        "queries": len(specs),
        "document_bytes": len(document),
        "events_forwarded_union": forwarded,
        "per_query_forwarded": per_query,
        "per_query_pruned": threads["per_query_pruned"],
        "sparse_queries": sorted(sparse),
        "elapsed_seconds_threads": threads["elapsed_seconds"],
        "elapsed_seconds_inline": inline["elapsed_seconds"],
        "inline_speedup": threads["elapsed_seconds"] / inline["elapsed_seconds"],
    }
    _REPORT[workload] = entry
    benchmark.extra_info.update(
        {k: v for k, v in entry.items() if not isinstance(v, (dict, list))}
    )


@pytest.fixture(scope="module", autouse=True)
def report_s2():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s2_perquery_routing.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S2: per-query routing — events routed to each query vs. the union"
        " broadcast, threads vs. inline wall-clock",
        "",
    ]
    for workload in sorted(_REPORT):
        entry = _REPORT[workload]
        lines.append(
            f"{workload}: {entry['queries']} queries, union forwarded"
            f" {entry['events_forwarded_union']} events;"
            f" threads {entry['elapsed_seconds_threads'] * 1000:.1f} ms,"
            f" inline {entry['elapsed_seconds_inline'] * 1000:.1f} ms"
            f" ({entry['inline_speedup']:.2f}x)"
        )
        lines.append(f"{'query':<12}{'routed':>10}{'suppressed':>12}{'share':>8}")
        forwarded = entry["events_forwarded_union"]
        for key in sorted(entry["per_query_forwarded"]):
            routed = entry["per_query_forwarded"][key]
            pruned = entry["per_query_pruned"][key]
            lines.append(
                f"{key:<12}{routed:>10}{pruned:>12}{routed / forwarded:>8.2f}"
            )
        lines.append("")
    content = write_report("s2_perquery_routing.txt", "\n".join(lines))
    print("\n" + content)
