"""Experiment F3 — peak buffer memory as a function of document size.

The headline scalability claim: on XMP Q3 (the paper's running example) the
FluX engine's memory consumption is *independent of the document size* under
the strong DTD (nothing is buffered), the projection engine grows linearly
with the projected fraction of the document, and the DOM engine grows
linearly with the whole document.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import format_series, series_by
from repro.workloads.queries import get_query

from conftest import SCALING_BOOKS, run_and_record, write_report

_MEASUREMENTS: List[Measurement] = []
_ENGINE_NAMES = ["flux", "projection", "dom"]
_SPEC = get_query("BIB-Q3")


@pytest.mark.parametrize("books", SCALING_BOOKS)
@pytest.mark.parametrize("engine_name", _ENGINE_NAMES)
def test_f3_memory_scaling(benchmark, engine_name, books, bib_engines, bib_documents_by_size):
    document_name = f"bib-{books}"
    document = bib_documents_by_size[document_name]
    engine = bib_engines[engine_name]
    result = run_and_record(
        benchmark,
        engine,
        engine_name,
        _SPEC.xquery,
        _SPEC.key,
        document,
        document_name,
        _MEASUREMENTS,
    )
    assert result.output


@pytest.fixture(scope="module", autouse=True)
def report_f3():
    yield
    if not _MEASUREMENTS:
        return
    series_text = format_series(
        _MEASUREMENTS,
        x_key="document_bytes",
        metric="peak_buffer_bytes",
        title="F3: peak buffer memory vs document size (BIB-Q3, strong DTD)",
    )
    # Growth factors between the smallest and largest document, per engine.
    series = series_by(_MEASUREMENTS, metric="peak_buffer_bytes")
    growth_lines = ["growth factor (largest/smallest document):"]
    for engine_name, points in series.items():
        smallest = points[0][1]
        largest = points[-1][1]
        if smallest > 0:
            growth_lines.append(f"  {engine_name}: {largest / smallest:.1f}x")
        else:
            growth_lines.append(f"  {engine_name}: constant (0 B at every size)")
    content = write_report("f3_memory_scaling.txt", series_text, "\n".join(growth_lines))
    print("\n" + content)
