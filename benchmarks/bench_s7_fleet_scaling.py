"""Experiment S7 — fleet scaling: 10 → 10 000 registered queries.

The multi-tenancy claim: serving cost grows with the number of *distinct
query structures*, not with the number of registrants.  A fleet of N
registrations drawn from M base queries (every repeat an alias — bound
variables renamed, so query texts differ while structures collide) is
served two ways:

* **shared** (``dedup=True``, this PR): structural dedup interns the
  fleet to M plans, the routing trie keeps per-event masks M bits wide,
  each structure is evaluated once per pass and the result fanned out to
  its subscribers by reference;
* **linear baseline** (``dedup=False``, the pre-dedup behavior): every
  registration keeps a private plan, routes as its own mask bit, and is
  evaluated independently — cost linear in N by construction.

For each workload (bib and XMark) and each fleet size the experiment
reports parser events per second through the pass and peak traced memory
per registered query (tracemalloc spans registration *and* the pass, so
private-plan weight is charged to the baseline honestly), and
byte-compares a sampled subset of subscribers against solo
:class:`~repro.engines.flux_engine.FluxEngine` runs.

Machine-checked acceptance at N = 10 000 (structures ≤ 100):

* shared events/second ≥ 5× the linear baseline's;
* shared memory per query falls as the fleet grows (sublinear total);
* sampled subscribers byte-identical to solo.

Results land in ``benchmarks/results/s7_fleet_scaling.{json,txt}``.
"""

from __future__ import annotations

import json
import os
import random
import time
import tracemalloc
from typing import Dict, List

import pytest

from repro.bench.fleets import make_fleet, run_solo
from repro.service import QueryService
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.workloads.xmark import generate_auction_site

from conftest import RESULTS_DIR, write_report

FLEET_SIZES = [10, 100, 1_000, 10_000]
SAMPLE = 25

_CONFIGS = {
    "bib": (
        BIB_DTD_STRONG,
        [spec.xquery for spec in queries_for_workload("bib")],
        lambda: generate_bibliography(num_books=20, seed=2004),
    ),
    "xmark": (
        AUCTION_DTD,
        [spec.xquery for spec in queries_for_workload("auction")],
        lambda: generate_auction_site(scale=0.1, seed=2004),
    ),
}

_REPORT: Dict[str, dict] = {}


def _measure(dtd, fleet, document, dedup: bool) -> dict:
    """Register the fleet, then measure memory and a steady-state pass.

    tracemalloc wraps registration plus a first (warm-up) pass, so the
    per-registration plan weight — the thing dedup removes — is part of
    the memory figure.  The timed pass runs with tracing off.
    """
    service = QueryService(dtd, execution="inline", dedup=dedup)
    tracemalloc.start()
    try:
        for query in fleet:
            service.register(query.text, key=query.key)
        service.run_pass(document)
        _, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    started = time.perf_counter()
    results = service.run_pass(document)
    elapsed = time.perf_counter() - started
    metrics = service.metrics.last_pass
    outputs = {key: result.output for key, result in results.items()}
    return {
        "structures": metrics.structures,
        "parser_events": metrics.parser_events,
        "elapsed_seconds": elapsed,
        "events_per_second": metrics.parser_events / elapsed,
        "peak_traced_bytes": peak_bytes,
        "bytes_per_query": peak_bytes / len(fleet),
        "outputs": outputs,
    }


@pytest.mark.parametrize("workload", sorted(_CONFIGS))
def test_s7_fleet_scaling(benchmark, workload):
    dtd, bases, make_document = _CONFIGS[workload]
    document = make_document()
    rng = random.Random(20040831)
    rows: List[dict] = []

    def run_all() -> List[dict]:
        for total in FLEET_SIZES:
            fleet = make_fleet(bases, total)
            shared = _measure(dtd, fleet, document, dedup=True)
            baseline = _measure(dtd, fleet, document, dedup=False)
            # Differential check on a sample of subscribers (both modes).
            sample_keys = {q.key for q in rng.sample(fleet, min(SAMPLE, total))}
            solo = run_solo(fleet, document, dtd=dtd, keys=sample_keys)
            for key, expected in solo.items():
                assert shared["outputs"][key] == expected, (total, key)
                assert baseline["outputs"][key] == expected, (total, key)
            rows.append(
                {
                    "queries": total,
                    "structures": shared["structures"],
                    "verified_keys": len(solo),
                    "shared": {
                        k: v for k, v in shared.items() if k != "outputs"
                    },
                    "baseline": {
                        k: v for k, v in baseline.items() if k != "outputs"
                    },
                    "speedup": (
                        shared["events_per_second"]
                        / baseline["events_per_second"]
                    ),
                }
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    _REPORT[workload] = {
        "document_bytes": len(document),
        "bases": len(bases),
        "rows": rows,
    }
    last = rows[-1]
    benchmark.extra_info.update(
        {
            "queries": last["queries"],
            "structures": last["structures"],
            "speedup_at_10k": last["speedup"],
        }
    )

    # Acceptance, machine-checked at the 10k point.
    assert last["queries"] == 10_000
    assert last["structures"] <= 100
    assert last["speedup"] >= 5.0
    # Memory per query is sublinear in the alias count: the per-query
    # share *falls* as the fleet grows (a linear footprint would hold it
    # constant).
    first = rows[0]
    assert (
        last["shared"]["bytes_per_query"]
        < first["shared"]["bytes_per_query"] / 2
    )


@pytest.fixture(scope="module", autouse=True)
def report_s7():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s7_fleet_scaling.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S7: fleet scaling — shared (structural dedup) vs linear baseline",
        "",
        f"{'workload':<10}{'queries':>8}{'structs':>8}"
        f"{'ev/s shared':>14}{'ev/s linear':>14}{'speedup':>9}"
        f"{'B/query shared':>16}{'B/query linear':>16}",
    ]
    for workload in sorted(_REPORT):
        for row in _REPORT[workload]["rows"]:
            lines.append(
                f"{workload:<10}{row['queries']:>8}{row['structures']:>8}"
                f"{row['shared']['events_per_second']:>14.0f}"
                f"{row['baseline']['events_per_second']:>14.0f}"
                f"{row['speedup']:>9.2f}"
                f"{row['shared']['bytes_per_query']:>16.0f}"
                f"{row['baseline']['bytes_per_query']:>16.0f}"
            )
    content = write_report("s7_fleet_scaling.txt", "\n".join(lines))
    print("\n" + content)
