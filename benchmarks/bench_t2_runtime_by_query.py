"""Experiment T2 — evaluation runtime per engine per bibliography query.

Paper claim: FluXQuery's runtime is lower than that of conventional engines
(the gap is smaller than for memory).  On this pure-Python substrate the
*relative* ordering is what matters: the FluX engine must stay within a small
constant factor of the DOM engine while using a fraction of its memory, and
must not degrade with document size (see F4 for scaling).

The timing measured here is query evaluation only; query compilation is done
once beforehand (the optimizer's cost is reported by the pipeline itself and
is independent of document size).
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import format_table
from repro.workloads.queries import queries_for_workload

from conftest import run_and_record, write_report

_MEASUREMENTS: List[Measurement] = []
_QUERIES = queries_for_workload("bib")
_ENGINE_NAMES = ["flux", "projection", "dom"]


@pytest.mark.parametrize("query_key", [spec.key for spec in _QUERIES])
@pytest.mark.parametrize("engine_name", _ENGINE_NAMES)
def test_t2_runtime(benchmark, engine_name, query_key, bib_engines, bib_document):
    spec = next(s for s in _QUERIES if s.key == query_key)
    engine = bib_engines[engine_name]
    result = run_and_record(
        benchmark,
        engine,
        engine_name,
        spec.xquery,
        spec.key,
        bib_document,
        "bib-strong",
        _MEASUREMENTS,
    )
    assert result.output


@pytest.fixture(scope="module", autouse=True)
def report_t2():
    yield
    if not _MEASUREMENTS:
        return
    table = format_table(
        _MEASUREMENTS,
        metric="elapsed_seconds",
        title="T2: evaluation runtime per query (strong bibliography DTD)",
    )
    content = write_report("t2_runtime_by_query.txt", table)
    print("\n" + content)
