"""Experiment S4 — fault-isolated service pool: throughput scaling 1→8.

PR 3's serving loop overlaps *nothing*: one ``QueryService`` serves one
shared pass at a time, so while a document is still arriving the loop can
neither evaluate another document nor even start parsing the next one.
:class:`~repro.service.ServicePool` shards the stream across N mirrored
workers sharing one plan cache.  This experiment measures what that is
worth, in the regime the pool exists for and in the one it cannot help:

* **serving regime** (the headline): documents arrive as chunked *feeds*
  with per-chunk delivery latency (:class:`LatencyFeed` — ``read()``
  blocks like a socket would, releasing the GIL).  A single serve loop
  pays ``delivery + evaluation`` per document, serially; the pool hides
  delivery behind the other workers' evaluation.  Measured at 1, 2, 4, 8
  workers on bib and XMark fleets; the acceptance bar is **pool(4) ≥ 2×
  the single-service loop** in documents/second.
* **CPU-bound regime** (the honest footnote): the same documents as
  in-memory strings.  Under CPython's GIL the worker threads interleave
  instead of parallelizing, so the pool's throughput is ~1× — reported,
  not hidden (a multi-process shard is future work; see ROADMAP).

Also verified here, per the PR's acceptance criteria:

* **compile-once**: across the whole pool each distinct query is compiled
  exactly once — ``misses`` (now counting only real compilations) equals
  the fleet size even with every worker registering concurrently; the
  followers surface as the new ``coalesced`` counter;
* **fault isolation**: a malformed document injected mid-stream yields an
  error-tagged ``ServedDocument`` while every other document's results
  stay byte-identical to solo ``FluxEngine`` runs.

Results land in ``benchmarks/results/s4_pool_scaling.{json,txt}``.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from typing import Dict, List

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.errors import XMLSyntaxError
from repro.service import QueryService, ServicePool
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.workloads.xmark import generate_auction_site

from conftest import RESULTS_DIR, write_report

#: Documents per stream (sizes vary like real traffic, see the fixtures).
STREAM_DOCUMENTS = 12

#: Chunks per document feed and delivery latency per chunk: 10 × 15 ms =
#: 150 ms of transport per document, a modest LAN-upload profile that is
#: 2–8× the fleets' per-document evaluation cost.
FEED_CHUNKS = 10
CHUNK_LATENCY_SECONDS = 0.015

#: Pool sizes for the scaling curve.
WORKER_COUNTS = [1, 2, 4, 8]

_REPORT: Dict[str, dict] = {}


class LatencyFeed(io.TextIOBase):
    """A document arriving over a slow transport.

    ``read()`` returns the next chunk after :data:`CHUNK_LATENCY_SECONDS`
    (``time.sleep`` blocks exactly like a socket read: the GIL is
    released, so other pool workers keep evaluating).  Works anywhere the
    service accepts a file-like document.
    """

    def __init__(self, text: str, chunks: int = FEED_CHUNKS,
                 latency: float = CHUNK_LATENCY_SECONDS):
        step = max(1, (len(text) + chunks - 1) // chunks)
        self._parts = [text[i : i + step] for i in range(0, len(text), step)]
        self._latency = latency
        self._next = 0

    def read(self, size: int = -1) -> str:  # size ignored: chunked source
        if self._next >= len(self._parts):
            return ""
        time.sleep(self._latency)
        part = self._parts[self._next]
        self._next += 1
        return part


def _workload(name: str):
    if name == "bib":
        dtd = BIB_DTD_STRONG
        documents = [
            generate_bibliography(num_books=books, seed=2004 + i)
            for i, books in enumerate([60, 120, 90, 150, 75, 105] * 2)
        ][:STREAM_DOCUMENTS]
    else:  # xmark
        dtd = AUCTION_DTD
        documents = [
            generate_auction_site(scale=scale, seed=2004 + i)
            for i, scale in enumerate([0.3, 0.5, 0.4, 0.6, 0.35, 0.45] * 2)
        ][:STREAM_DOCUMENTS]
    specs = queries_for_workload("bib" if name == "bib" else "auction")
    return dtd, specs, documents


def _solo_outputs(dtd, specs, documents) -> List[Dict[str, str]]:
    engine = FluxEngine(dtd)
    return [
        {spec.key: engine.execute(spec.xquery, document).output for spec in specs}
        for document in documents
    ]


def _check_outputs(served, solo) -> None:
    for outcome in served:
        assert outcome.ok, outcome.error
        produced = {key: result.output for key, result in outcome.results.items()}
        assert produced == solo[outcome.index]


def _run_single_loop(dtd, specs, documents, feeds: bool) -> dict:
    service = QueryService(dtd, execution="inline")
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    stream = [LatencyFeed(doc) if feeds else doc for doc in documents]
    started = time.perf_counter()
    served = list(service.serve(stream))
    elapsed = time.perf_counter() - started
    return {"elapsed_seconds": elapsed, "served": served,
            "docs_per_second": len(documents) / elapsed}


def _run_pool(dtd, specs, documents, workers: int, feeds: bool) -> dict:
    pool = ServicePool(dtd, workers=workers, execution="inline")
    # Register the fleet *concurrently from every worker's mirror* — the
    # thundering-herd case the single-flight cache exists for: all workers
    # hit each query's key at the same instant (one barrier per query), so
    # one mirror leads the compilation and the others coalesce onto its
    # flight.  Exactly one compilation per distinct query must be paid
    # across the pool.
    barrier = threading.Barrier(workers)

    def register_mirror(service: QueryService) -> None:
        for spec in specs:
            if workers > 1:
                barrier.wait()
            service.register(spec.xquery, key=spec.key)

    threads = [
        threading.Thread(target=register_mirror, args=(service,))
        for service in pool.services
    ]
    # A single optimizer run often fits inside one GIL scheduling slice
    # (5 ms), which would let the leader finish before any follower even
    # looks up the key; shrink the slice so the herd genuinely overlaps.
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0002)
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        sys.setswitchinterval(switch_interval)
    stats = pool.plan_cache.stats
    assert stats.misses == len(specs), (
        f"expected one compilation per distinct query, got {stats.misses}"
    )
    assert stats.coalesced + stats.hits == (workers - 1) * len(specs)

    stream = [LatencyFeed(doc) if feeds else doc for doc in documents]
    started = time.perf_counter()
    served = list(pool.serve(stream))
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "served": served,
        "docs_per_second": len(documents) / elapsed,
        "plan_cache": pool.plan_cache.stats.as_dict(),
    }


def _fault_isolation(dtd, specs, documents, solo) -> dict:
    """Inject a mid-document parse error into a 4-worker pool's stream."""
    bad_index = len(documents) // 2
    stream = list(documents)
    # A real document that goes bad halfway through: the pass has already
    # parsed and routed thousands of events when the parser fails.
    stream[bad_index] = stream[bad_index][: len(stream[bad_index]) // 2] + "<<<"
    pool = ServicePool(dtd, workers=4, execution="inline")
    for spec in specs:
        pool.register(spec.xquery, key=spec.key)
    served = list(pool.serve(LatencyFeed(doc) for doc in stream))
    assert sorted(outcome.index for outcome in served) == list(range(len(stream)))
    failures = [outcome for outcome in served if not outcome.ok]
    assert len(failures) == 1 and failures[0].index == bad_index
    assert isinstance(failures[0].error, XMLSyntaxError)
    assert failures[0].results == {}
    for outcome in served:
        if outcome.index == bad_index:
            continue
        produced = {key: result.output for key, result in outcome.results.items()}
        assert produced == solo[outcome.index], (
            "fault isolation broke byte-identity for document %d" % outcome.index
        )
    metrics = pool.metrics
    assert metrics.documents_failed == 1
    assert metrics.documents_ok == len(stream) - 1
    return {
        "bad_index": bad_index,
        "error": type(failures[0].error).__name__,
        "failed_worker": failures[0].worker,
        "documents_ok": metrics.documents_ok,
        "documents_failed": metrics.documents_failed,
        "others_byte_identical": True,
    }


def _run_workload(name: str, benchmark=None) -> dict:
    dtd, specs, documents = _workload(name)
    solo = _solo_outputs(dtd, specs, documents)

    single = _run_single_loop(dtd, specs, documents, feeds=True)
    _check_outputs(single["served"], solo)

    scaling = {}
    for workers in WORKER_COUNTS:
        if benchmark is not None and workers == 4:
            holder = {}

            def target():
                holder["run"] = _run_pool(dtd, specs, documents, 4, feeds=True)
                return holder["run"]

            benchmark.pedantic(target, rounds=1, iterations=1)
            run = holder["run"]
        else:
            run = _run_pool(dtd, specs, documents, workers, feeds=True)
        _check_outputs(run["served"], solo)
        scaling[workers] = run

    # The CPU-bound footnote: same stream, no delivery latency.
    cpu_single = _run_single_loop(dtd, specs, documents, feeds=False)
    _check_outputs(cpu_single["served"], solo)
    cpu_pool4 = _run_pool(dtd, specs, documents, 4, feeds=False)
    _check_outputs(cpu_pool4["served"], solo)

    speedup_4 = scaling[4]["docs_per_second"] / single["docs_per_second"]
    entry = {
        "documents": len(documents),
        "queries": len(specs),
        "document_bytes_total": sum(len(doc) for doc in documents),
        "feed": {
            "chunks_per_document": FEED_CHUNKS,
            "chunk_latency_seconds": CHUNK_LATENCY_SECONDS,
            "delivery_seconds_per_document": FEED_CHUNKS * CHUNK_LATENCY_SECONDS,
        },
        "single_loop": {
            "elapsed_seconds": single["elapsed_seconds"],
            "docs_per_second": single["docs_per_second"],
        },
        "pool_scaling": {
            str(workers): {
                "elapsed_seconds": run["elapsed_seconds"],
                "docs_per_second": run["docs_per_second"],
                "speedup_vs_single": run["docs_per_second"] / single["docs_per_second"],
                "plan_cache": run["plan_cache"],
            }
            for workers, run in scaling.items()
        },
        "cpu_bound": {
            "single_docs_per_second": cpu_single["docs_per_second"],
            "pool4_docs_per_second": cpu_pool4["docs_per_second"],
            "pool4_speedup_vs_single": (
                cpu_pool4["docs_per_second"] / cpu_single["docs_per_second"]
            ),
        },
        "fault_isolation": _fault_isolation(dtd, specs, documents, solo),
    }

    # The acceptance bar: 4 workers at least double the single loop's
    # throughput on the serving (feed) workload.
    assert speedup_4 >= 2.0, (
        f"{name}: pool(4) speedup {speedup_4:.2f}x < 2x acceptance bar"
    )
    return entry


def test_s4_pool_scaling_bib(benchmark):
    _REPORT["bib"] = _run_workload("bib", benchmark=benchmark)


def test_s4_pool_scaling_xmark(benchmark):
    _REPORT["xmark"] = _run_workload("xmark", benchmark=benchmark)


@pytest.fixture(scope="module", autouse=True)
def report_s4():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s4_pool_scaling.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S4: fault-isolated service pool — documents/second sharding a stream"
        " of chunked feeds (15 ms/chunk delivery latency) across 1-8 workers"
        " sharing one plan cache, vs a single QueryService.serve() loop",
        "",
    ]
    for workload in sorted(_REPORT):
        entry = _REPORT[workload]
        feed = entry["feed"]
        lines.append(
            f"{workload}: {entry['documents']} documents x {entry['queries']}"
            f" queries ({entry['document_bytes_total']} bytes total,"
            f" {feed['delivery_seconds_per_document'] * 1000:.0f} ms delivery"
            f" per document)"
        )
        lines.append(
            f"{'mode':<14}{'elapsed s':>11}{'docs/s':>9}{'speedup':>9}"
            f"{'misses':>8}{'coalesced':>11}"
        )
        single = entry["single_loop"]
        lines.append(
            f"{'serve(1 svc)':<14}{single['elapsed_seconds']:>11.2f}"
            f"{single['docs_per_second']:>9.2f}{'1.00x':>9}{'-':>8}{'-':>11}"
        )
        for workers in WORKER_COUNTS:
            run = entry["pool_scaling"][str(workers)]
            cache = run["plan_cache"]
            lines.append(
                f"{'pool(' + str(workers) + ')':<14}"
                f"{run['elapsed_seconds']:>11.2f}"
                f"{run['docs_per_second']:>9.2f}"
                f"{run['speedup_vs_single']:>8.2f}x"
                f"{cache['misses']:>8}{cache['coalesced']:>11}"
            )
        cpu = entry["cpu_bound"]
        lines.append(
            f"cpu-bound (no delivery latency): pool(4) is"
            f" {cpu['pool4_speedup_vs_single']:.2f}x the single loop — the"
            f" GIL serializes evaluation; the pool buys ingestion overlap,"
            f" not CPU parallelism"
        )
        fault = entry["fault_isolation"]
        lines.append(
            f"fault isolation: document {fault['bad_index']} injected broken ->"
            f" 1 error-tagged ServedDocument ({fault['error']} on worker"
            f" {fault['failed_worker']}), {fault['documents_ok']} others served"
            f" byte-identical to solo runs"
        )
        lines.append("")
    content = write_report("s4_pool_scaling.txt", "\n".join(lines))
    print("\n" + content)
