"""Experiment S1 — multi-query throughput: shared pass vs. independent runs.

The service claim: N registered queries cost *one* parse of the XML stream,
not N.  This experiment registers every bibliography query (and, in a second
configuration, every auction query) with the :class:`repro.service.QueryService`
and compares one shared pass against N independent ``FluxEngine`` runs on

* total parser events (the shared scan parses once; independent runs parse
  the document once per query),
* events actually delivered to the per-query runtimes (the shared
  projection index prunes events irrelevant to every query),
* wall-clock time and queries/second.

Besides the usual text table, the numbers are written to
``benchmarks/results/s1_multiquery.json`` so the headline comparison —
``shared.parser_events < independent.parser_events`` with at least five
registered queries — is machine-checkable.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.service import QueryService
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.xmlstream.parser import parse_events

from conftest import RESULTS_DIR, write_report

_CONFIGS = {
    "bib": BIB_DTD_STRONG,
    "auction": AUCTION_DTD,
}

_REPORT: Dict[str, dict] = {}


def _run_independent(dtd, specs, document) -> dict:
    engine = FluxEngine(dtd)
    for spec in specs:  # compile outside the measured region (as in T2)
        engine.compile(spec.xquery)
    # Raw parser events per scan, measured the same way the shared pass
    # counts them (stats.events_processed would also include the XSAX
    # reader's synthesized on-first events and bias the comparison).
    events_per_parse = sum(1 for _ in parse_events(document))
    started = time.perf_counter()
    outputs = {}
    runtime_events = 0
    for spec in specs:
        result = engine.execute(spec.xquery, document)
        outputs[spec.key] = result.output
        runtime_events += result.stats.events_processed
    elapsed = time.perf_counter() - started
    return {
        "parser_events": events_per_parse * len(specs),
        "runtime_events": runtime_events,
        "elapsed_seconds": elapsed,
        "outputs": outputs,
    }


def _run_shared(dtd, specs, document) -> dict:
    service = QueryService(dtd)
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    started = time.perf_counter()
    results = service.run_pass(document)
    elapsed = time.perf_counter() - started
    metrics = service.metrics.last_pass
    return {
        "parser_events": metrics.parser_events,
        "events_forwarded": metrics.events_forwarded,
        "events_pruned": metrics.events_pruned,
        "text_events_dropped": metrics.text_events_dropped,
        "runtime_events": sum(r.stats.events_processed for r in results.values()),
        "elapsed_seconds": elapsed,
        "outputs": {key: result.output for key, result in results.items()},
    }


@pytest.mark.parametrize("workload", sorted(_CONFIGS))
def test_s1_shared_pass_beats_independent_runs(
    benchmark, workload, bib_document, auction_document
):
    dtd = _CONFIGS[workload]
    document = bib_document if workload == "bib" else auction_document
    specs = queries_for_workload(workload)

    independent = _run_independent(dtd, specs, document)
    holder = {}

    def target():
        holder["shared"] = _run_shared(dtd, specs, document)
        return holder["shared"]

    benchmark.pedantic(target, rounds=1, iterations=1)
    shared = holder["shared"]

    # Correctness first: the shared pass must agree byte-for-byte.
    assert shared["outputs"] == independent["outputs"]

    queries = len(specs)
    entry = {
        "workload": workload,
        "queries": queries,
        "document_bytes": len(document),
        "shared": {k: v for k, v in shared.items() if k != "outputs"},
        "independent": {k: v for k, v in independent.items() if k != "outputs"},
        "parser_event_ratio": shared["parser_events"] / independent["parser_events"],
        "queries_per_second_shared": queries / shared["elapsed_seconds"],
        "queries_per_second_independent": queries / independent["elapsed_seconds"],
    }
    _REPORT[workload] = entry
    benchmark.extra_info.update(
        {k: v for k, v in entry.items() if not isinstance(v, dict)}
    )

    # The acceptance bar: >= 5 registered queries, fewer total parser events.
    if workload == "bib":
        assert queries >= 5
    assert shared["parser_events"] < independent["parser_events"]


@pytest.fixture(scope="module", autouse=True)
def report_s1():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s1_multiquery.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S1: multi-query throughput — one shared pass vs. N independent runs",
        "",
        f"{'workload':<10}{'queries':>8}{'shared ev':>12}{'indep ev':>12}"
        f"{'ratio':>8}{'q/s shared':>12}{'q/s indep':>12}",
    ]
    for workload in sorted(_REPORT):
        entry = _REPORT[workload]
        lines.append(
            f"{workload:<10}{entry['queries']:>8}"
            f"{entry['shared']['parser_events']:>12}"
            f"{entry['independent']['parser_events']:>12}"
            f"{entry['parser_event_ratio']:>8.2f}"
            f"{entry['queries_per_second_shared']:>12.1f}"
            f"{entry['queries_per_second_independent']:>12.1f}"
        )
    content = write_report("s1_multiquery.txt", "\n".join(lines))
    print("\n" + content)
