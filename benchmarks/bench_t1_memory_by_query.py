"""Experiment T1 — peak buffer memory per engine per bibliography query.

Paper claim (Conclusions / companion-paper evaluation): "FluXQuery consumes
both far less memory and runtime than other XQuery systems.  The difference
is particularly clear for main memory consumption."

This benchmark runs the six catalogued bibliography queries on a strong-DTD
bibliography document with every engine and reports the peak buffered bytes.
Expected shape: FluX ≪ projection ≪ DOM; streaming queries (Q3, Q4, Q6)
buffer nothing at all in FluX.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import format_table
from repro.workloads.queries import queries_for_workload

from conftest import run_and_record, write_report

_MEASUREMENTS: List[Measurement] = []
_QUERIES = queries_for_workload("bib")
_ENGINE_NAMES = ["flux", "projection", "dom"]


@pytest.mark.parametrize("query_key", [spec.key for spec in _QUERIES])
@pytest.mark.parametrize("engine_name", _ENGINE_NAMES)
def test_t1_memory(benchmark, engine_name, query_key, bib_engines, bib_document):
    spec = next(s for s in _QUERIES if s.key == query_key)
    engine = bib_engines[engine_name]
    result = run_and_record(
        benchmark,
        engine,
        engine_name,
        spec.xquery,
        spec.key,
        bib_document,
        "bib-strong",
        _MEASUREMENTS,
    )
    assert result.output


@pytest.fixture(scope="module", autouse=True)
def report_t1():
    yield
    if not _MEASUREMENTS:
        return
    table = format_table(
        _MEASUREMENTS,
        metric="peak_buffer_bytes",
        title="T1: peak buffer memory per query (strong bibliography DTD)",
    )
    fractions = format_table(
        _MEASUREMENTS,
        metric="document_bytes",
        title="(document size per row, for reference)",
    )
    content = write_report("t1_memory_by_query.txt", table, fractions)
    print("\n" + content)
