"""Experiment F7 — auction (XMark-style) workload across all engines.

The companion paper's evaluation also uses XMark auction data.  This
benchmark runs the four catalogued auction queries on the generated auction
site and reports per-engine memory and runtime.  Expected shape: the
streaming and bounded queries behave as on the bibliography workload (FluX
buffers nothing / a bounded amount); the value join AUC-A3 is the case where
document sections must be held in memory — the ``flux-no-reroot`` column
shows the conservative fallback (whole common ancestor) when the
absolute-to-relative path rewrite is disabled.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import format_table
from repro.engines.flux_engine import FluxEngine
from repro.workloads.dtds import AUCTION_DTD
from repro.workloads.queries import queries_for_workload

from conftest import run_and_record, write_report

_MEASUREMENTS: List[Measurement] = []
_QUERIES = queries_for_workload("auction")
_ENGINE_NAMES = ["flux", "flux-no-reroot", "projection", "dom"]


@pytest.mark.parametrize("query_key", [spec.key for spec in _QUERIES])
@pytest.mark.parametrize("engine_name", _ENGINE_NAMES)
def test_f7_auction(benchmark, engine_name, query_key, auction_engines, auction_document):
    spec = next(s for s in _QUERIES if s.key == query_key)
    if engine_name == "flux-no-reroot":
        engine = FluxEngine(AUCTION_DTD, enable_path_relativization=False)
    else:
        engine = auction_engines[engine_name]
    result = run_and_record(
        benchmark,
        engine,
        engine_name,
        spec.xquery,
        spec.key,
        auction_document,
        "auction-1.0",
        _MEASUREMENTS,
    )
    assert result.output


@pytest.fixture(scope="module", autouse=True)
def report_f7():
    yield
    if not _MEASUREMENTS:
        return
    memory = format_table(
        _MEASUREMENTS,
        metric="peak_buffer_bytes",
        title="F7: auction workload — peak buffer memory",
    )
    runtime = format_table(
        _MEASUREMENTS,
        metric="elapsed_seconds",
        title="F7: auction workload — evaluation runtime",
    )
    content = write_report("f7_xmark_suite.txt", memory, runtime)
    print("\n" + content)
