"""Experiment T5 — the effect of DTD strength (Section 2 of the paper).

Section 2 is built around this comparison: with the weak DTD
``book (title|author|...)*`` the authors of one book must be buffered until
the book closes; with the strong DTD of Figure 1 (titles precede authors) the
same query runs fully on the fly.  This benchmark runs XMP Q3 over documents
of *identical content*, once ordered (valid for the strong DTD) and once
interleaved (valid only for the weak DTD), and reports the FluX engine's peak
buffering under each schema, alongside the baselines (whose memory use does
not benefit from the schema at all).
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import format_table
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.engines.projection_engine import ProjectionEngine
from repro.workloads.dtds import BIB_DTD_STRONG, BIB_DTD_WEAK
from repro.workloads.queries import get_query

from conftest import run_and_record, write_report

_MEASUREMENTS: List[Measurement] = []
_SPEC = get_query("BIB-Q3")

_CONFIGURATIONS = {
    "flux-strong-dtd": lambda: FluxEngine(BIB_DTD_STRONG),
    "flux-weak-dtd": lambda: FluxEngine(BIB_DTD_WEAK),
    "projection": lambda: ProjectionEngine(BIB_DTD_WEAK),
    "dom": lambda: DomEngine(),
}


@pytest.mark.parametrize("configuration", list(_CONFIGURATIONS))
def test_t5_dtd_strength(benchmark, configuration, bib_document, weak_bib_document):
    engine = _CONFIGURATIONS[configuration]()
    # The strong-DTD engine gets the ordered document; every other
    # configuration gets the interleaved document (same content, weak DTD).
    document = bib_document if configuration == "flux-strong-dtd" else weak_bib_document
    document_name = "bib-ordered" if configuration == "flux-strong-dtd" else "bib-interleaved"
    result = run_and_record(
        benchmark,
        engine,
        configuration,
        _SPEC.xquery,
        _SPEC.key,
        document,
        document_name,
        _MEASUREMENTS,
    )
    assert result.output.count("<result>") == result.output.count("</result>")


@pytest.fixture(scope="module", autouse=True)
def report_t5():
    yield
    if not _MEASUREMENTS:
        return
    table = format_table(
        _MEASUREMENTS,
        metric="peak_buffer_bytes",
        row_key="engine",
        column_key="query",
        title="T5: effect of DTD strength on buffering (BIB-Q3)",
    )
    notes = (
        "flux-strong-dtd: order constraint title<author makes the query fully streaming.\n"
        "flux-weak-dtd:   only the authors of the current book are buffered "
        "(bounded by the largest book).\n"
        "projection/dom:  schema strength does not change their buffering."
    )
    content = write_report("t5_dtd_strength.txt", table, notes)
    print("\n" + content)
