"""Experiment T6 — optimizer ablation (the Section 3.1 rewrite rules).

Each FluX optimizer feature is switched off in turn to quantify its
contribution on the micro-queries the paper uses to motivate it:

* **order-constraint scheduling** (the core of the FluX translation) —
  measured on XMP Q3: without it, every non-first sub-expression is buffered;
* **cardinality-based loop merging** — measured on the double
  ``$book/publisher`` loop of Section 3.1;
* **co-occurrence-based conditional elimination** — measured on the
  ``author = "Goedel" and editor = "Goedel"`` conditional of Section 3.1.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import format_table
from repro.engines.flux_engine import FluxEngine
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query

from conftest import run_and_record, write_report

_MEASUREMENTS: List[Measurement] = []

_MERGE_QUERY = """
<out>{ for $book in $ROOT/bib/book return
  <entry>
    { for $x in $book/publisher return <a>{ $x }</a> }
    { for $x in $book/publisher return <b>{ $x }</b> }
  </entry> }</out>
"""

_UNSAT_QUERY = """
<out>{ for $book in $ROOT/bib/book return
  if ($book/author/last = "Goedel" and $book/editor/last = "Goedel")
  then <hit>{ $book/title }</hit> else () }</out>
"""

_CASES = {
    "q3/full-optimizer": (get_query("BIB-Q3").xquery, {}),
    "q3/no-order-constraints": (get_query("BIB-Q3").xquery, {"use_order_constraints": False}),
    "merge/full-optimizer": (_MERGE_QUERY, {}),
    "merge/no-loop-merging": (_MERGE_QUERY, {"enable_loop_merging": False}),
    "unsat/full-optimizer": (_UNSAT_QUERY, {}),
    "unsat/no-conditional-elimination": (
        _UNSAT_QUERY,
        {"enable_conditional_elimination": False},
    ),
}


@pytest.mark.parametrize("case", list(_CASES))
def test_t6_ablation(benchmark, case, bib_document):
    query, flags = _CASES[case]
    engine = FluxEngine(BIB_DTD_STRONG, **flags)
    group, variant = case.split("/")
    result = run_and_record(
        benchmark,
        engine,
        variant,
        query,
        group,
        bib_document,
        "bib-strong",
        _MEASUREMENTS,
    )
    assert result.output


@pytest.fixture(scope="module", autouse=True)
def report_t6():
    yield
    if not _MEASUREMENTS:
        return
    memory = format_table(
        _MEASUREMENTS,
        metric="peak_buffer_bytes",
        row_key="query",
        column_key="engine",
        title="T6: optimizer ablation — peak buffer memory",
    )
    runtime = format_table(
        _MEASUREMENTS,
        metric="elapsed_seconds",
        row_key="query",
        column_key="engine",
        title="T6: optimizer ablation — evaluation runtime",
    )
    content = write_report("t6_optimizer_ablation.txt", memory, runtime)
    print("\n" + content)
