"""Experiment S6 — observability overhead: what watching the service costs.

The observability layer (``src/repro/obs``) promises a near-zero-cost
disabled path: with ``obs=None`` every hook collapses to an attribute
check per *pass*, never per event, and the per-event hot loop
(``SharedProjectionIndex.route``) is untouched.  This experiment prices
that promise, and the enabled tiers above it, in events/second on the
same serve loops the S-series measures:

* **baseline** — ``obs=None``, the default code path;
* **disabled** — an :class:`~repro.obs.Observability` hub attached but
  with every component off (each hook fires, finds nothing to do);
* **metrics** — a live :class:`~repro.obs.MetricsRegistry` (pass
  counters, per-stage latency histograms);
* **metrics+tracing** — metrics plus a :class:`~repro.obs.Tracer`
  recording pass/stage spans (buffered in a
  :class:`~repro.obs.MemorySink`; file serialization is the CLI's
  concern, span construction is the layer's).

Each tier runs on the bib and XMark workloads, for the inline
``QueryService`` and the ``ProcessServicePool`` backends.  Measuring a
3% bar honestly took three methodology decisions, each forced by a
control experiment on a shared single-core host:

1. **CPU seconds, not wall clock.**  An A/A control (two identical
   uninstrumented services) measured 3% apart in wall time with ±25%
   round swings — neighbours steal the core.  Each timed run records
   ``time.process_time()`` of the driving process plus, for the process
   pool, the workers' utime+stime deltas from ``/proc/<pid>/stat``.
2. **One instance, attachments swapped (inline).**  Two separately
   constructed but identical services differ by up to ±17% in CPU time
   — allocator/layout luck is instance-constant, so no amount of
   averaging removes it.  ``QueryService`` reads ``self.obs`` at
   ``open_pass()`` time, so the inline comparison uses *one* service
   and swaps the hub between timed runs: instance bias cancels exactly,
   and the 3% bar is enforced here.
3. **A measured noise floor (processes).**  Pool workers are spawned
   with their instrumentation, so tiers need separate pool instances
   and inherit their instance bias.  A fifth A/A **control** pool
   (``obs=None``, identical to baseline) is measured in the same
   interleaved rounds; its apparent overhead is pure noise, printed as
   the session's noise floor, and the disabled-tier gate widens by a
   robust estimate of that floor.  The worker-side disabled path is the
   same per-pass hook code the inline gate already holds to 3%.

Every measurement is an **adjacent pair**: a baseline serve and a tier
serve timed back-to-back (inner order alternating), because host noise
bursts live at second scale — a rotated round-robin that separates the
two by a few serves already reads ±4% where adjacent pairing reads
±1%.  Overhead is the median across rounds of the per-pair CPU ratio;
negatives (timer noise) are kept honest rather than clamped.
Throughput is reported as best-of-rounds events/second, events counted
from the server's own ``parser_events_total``.

Results land in ``benchmarks/results/s6_obs_overhead.{json,txt}``.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from typing import Dict, List, Optional

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.obs import MemorySink, MetricsRegistry, Observability, Tracer
from repro.service import ProcessServicePool, QueryService
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.workloads.xmark import generate_auction_site

from conftest import RESULTS_DIR, write_report

#: Documents per measured serve (sizes vary like real traffic).
STREAM_DOCUMENTS = 8

#: Timed rounds per backend; every round measures each tier as one
#: adjacent (baseline, tier) pair, and per-tier medians of the pair
#: ratios are taken across rounds.
INLINE_ROUNDS = 12
POOL_ROUNDS = 10

#: Process-pool width.  Fleet spawn/ship/warm-up stays outside the
#: measured region (the pool is a long-lived server; S5 measures the
#: same way), so the fork start method only shortens the bench itself.
WORKERS = 2

#: Acceptance bar: disabled-path overhead budget, percent vs baseline.
DISABLED_BUDGET_PCT = 3.0

#: Instrumentation tiers, in the order they appear in the report.
MODES = ["baseline", "disabled", "metrics", "metrics+tracing"]

_REPORT: Dict[str, dict] = {}

try:
    _CLK_TCK = float(os.sysconf("SC_CLK_TCK"))
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _CLK_TCK = 100.0


def _workload(name: str):
    if name == "bib":
        dtd = BIB_DTD_STRONG
        documents = [
            generate_bibliography(num_books=books, seed=2006 + i)
            for i, books in enumerate([80, 120, 100, 140] * 2)
        ][:STREAM_DOCUMENTS]
    else:  # xmark
        dtd = AUCTION_DTD
        documents = [
            generate_auction_site(scale=scale, seed=2006 + i)
            for i, scale in enumerate([0.3, 0.4, 0.35, 0.45] * 2)
        ][:STREAM_DOCUMENTS]
    specs = queries_for_workload("bib" if name == "bib" else "auction")
    return dtd, specs, documents


def _solo_outputs(dtd, specs, documents) -> List[Dict[str, str]]:
    engine = FluxEngine(dtd)
    return [
        {spec.key: engine.execute(spec.xquery, document).output for spec in specs}
        for document in documents
    ]


def _make_obs(mode: str) -> Optional[Observability]:
    if mode == "baseline":
        return None
    if mode == "disabled":
        return Observability()
    if mode == "metrics":
        return Observability(metrics=MetricsRegistry())
    return Observability(metrics=MetricsRegistry(), tracer=Tracer(MemorySink()))


def _cpu_seconds(server) -> float:
    """CPU seconds charged to this workload: driver plus worker processes.

    Worker CPU comes from ``/proc/<pid>/stat`` (fields 14/15, utime+stime
    in clock ticks); unreadable entries are skipped, which degrades the
    pool comparison to driver-side CPU only on non-Linux hosts.
    """
    total = time.process_time()
    pids = getattr(server, "worker_pids", dict)()
    for pid in pids.values():
        if pid is None:
            continue
        try:
            with open("/proc/%d/stat" % pid, "rb") as handle:
                fields = handle.read().rsplit(b") ", 1)[1].split()
            total += (int(fields[11]) + int(fields[12])) / _CLK_TCK
        except (OSError, IndexError, ValueError):  # pragma: no cover
            pass
    return total


def _timed_serve(server, documents, solo, check_outputs: bool) -> dict:
    """One timed serve of the full stream; returns elapsed/CPU/events."""
    gc.collect()  # a collection landing inside one tier's window is bias
    events_before = server.metrics.parser_events_total
    cpu_before = _cpu_seconds(server)
    started = time.perf_counter()
    served = list(server.serve(documents))
    elapsed = time.perf_counter() - started
    cpu = _cpu_seconds(server) - cpu_before

    for outcome in served:
        assert outcome.ok, outcome.error
        if check_outputs:
            produced = {
                key: result.output for key, result in outcome.results.items()
            }
            assert produced == solo[outcome.index], (
                "instrumentation changed query output for document %d"
                % outcome.index
            )
    events = server.metrics.parser_events_total - events_before
    return {
        "elapsed_seconds": elapsed,
        "cpu_seconds": cpu,
        "events": events,
        "events_per_second": events / elapsed,
    }


def _drain_tracer(obs: Optional[Observability]) -> int:
    if obs is not None and obs.tracer is not None:
        return len(obs.tracer.sink.drain())
    return 0


def _assert_tier_live(mode: str, obs: Optional[Observability],
                      spans_recorded: int, passes_expected: int) -> None:
    """A silently-dead hook must not pose as a fast one."""
    if obs is not None and obs.tracer is not None:
        assert spans_recorded > 0, f"{mode}: tracing tier recorded no spans"
    if obs is not None and obs.metrics is not None:
        snap = obs.metrics.snapshot()
        passes = snap["repro_passes_total"]["values"][0]["value"]
        assert passes >= passes_expected, (
            f"{mode}: metrics tier counted no passes: registry is not wired"
        )


def _paired_rounds(serve_tier, tier_modes: List[str], rounds: int):
    """Measure each tier as adjacent (baseline, tier) pairs, per round.

    ``serve_tier(mode)`` runs one timed serve for ``mode``.  The inner
    order of each pair alternates so neither side systematically goes
    first.  Returns ``(runs_by_mode, pair_ratios)`` where
    ``pair_ratios[mode]`` holds one CPU ratio per round.
    """
    runs_by_mode: Dict[str, List[dict]] = {
        mode: [] for mode in ["baseline"] + tier_modes
    }
    pair_ratios: Dict[str, List[float]] = {mode: [] for mode in tier_modes}
    for round_no in range(rounds):
        start = round_no % len(tier_modes)
        for index, mode in enumerate(tier_modes[start:] + tier_modes[:start]):
            if (round_no + index) % 2 == 0:
                base_run = serve_tier("baseline")
                tier_run = serve_tier(mode)
            else:
                tier_run = serve_tier(mode)
                base_run = serve_tier("baseline")
            runs_by_mode["baseline"].append(base_run)
            runs_by_mode[mode].append(tier_run)
            pair_ratios[mode].append(
                tier_run["cpu_seconds"] / base_run["cpu_seconds"]
            )
    return runs_by_mode, pair_ratios


def _summarize(runs_by_mode: Dict[str, List[dict]],
               pair_ratios: Dict[str, List[float]]) -> dict:
    tiers = {}
    for mode, runs in runs_by_mode.items():
        ratios = pair_ratios.get(mode, [])
        best = max(runs, key=lambda run: run["events_per_second"])
        tiers[mode] = {
            "rounds": len(runs),
            "events_per_run": best["events"],
            "best_elapsed_seconds": best["elapsed_seconds"],
            "events_per_second": best["events_per_second"],
            "median_cpu_seconds": statistics.median(
                run["cpu_seconds"] for run in runs
            ),
            "overhead_pct": (
                (statistics.median(ratios) - 1.0) * 100.0 if ratios else 0.0
            ),
            "cpu_ratios": [round(ratio, 4) for ratio in ratios],
        }
    return tiers


def _run_inline(name: str, dtd, specs, documents, solo) -> dict:
    """All tiers on ONE service instance, hub swapped per timed run."""
    service = QueryService(dtd, execution="inline")
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    hubs = {mode: _make_obs(mode) for mode in MODES}
    # Warm-up: steady state is the measured quantity.
    for _ in range(2):
        assert all(o.ok for o in service.serve(documents))

    spans_recorded = {mode: 0 for mode in MODES}
    checked = {"done": False}

    def serve_tier(mode: str) -> dict:
        service.obs = hubs[mode]
        run = _timed_serve(service, documents, solo, not checked["done"])
        checked["done"] = True
        spans_recorded[mode] += _drain_tracer(hubs[mode])
        service.obs = None
        return run

    runs_by_mode, pair_ratios = _paired_rounds(
        serve_tier, MODES[1:], INLINE_ROUNDS
    )

    for mode in MODES[1:]:
        _assert_tier_live(f"{name}/{mode}", hubs[mode], spans_recorded[mode],
                          INLINE_ROUNDS * len(documents))
    tiers = _summarize(runs_by_mode, pair_ratios)
    disabled = tiers["disabled"]["overhead_pct"]
    assert disabled <= DISABLED_BUDGET_PCT, (
        f"{name}: disabled observability path costs {disabled:.2f}% CPU "
        f"(budget {DISABLED_BUDGET_PCT}%) — a hook leaked into the hot path"
    )
    tiers["method"] = (
        "one service instance, obs hub swapped per run; bar enforced at "
        f"{DISABLED_BUDGET_PCT}% on the median adjacent-pair CPU ratio"
    )
    return tiers


def _run_processes(name: str, dtd, specs, documents, solo) -> dict:
    """One pool per tier plus an A/A control pool measuring the noise.

    Worker instrumentation is fixed at spawn, so tiers cannot share a
    pool instance; the control pool (identical to baseline) prices the
    instance bias + residual noise the gate must tolerate.
    """
    tier_modes = MODES[1:] + ["control"]
    pools: Dict[str, ProcessServicePool] = {}
    hubs: Dict[str, Optional[Observability]] = {}
    spans_recorded = {mode: 0 for mode in tier_modes}
    checked = {"done": False}
    try:
        for mode in ["baseline"] + tier_modes:
            hubs[mode] = _make_obs("baseline" if mode == "control" else mode)
            pool = ProcessServicePool(
                dtd, workers=WORKERS, start_method="fork", obs=hubs[mode]
            )
            for spec in specs:
                pool.register(spec.xquery, key=spec.key)
            assert all(o.ok for o in pool.serve(documents))  # warm the fleet
            pools[mode] = pool

        def serve_tier(mode: str) -> dict:
            run = _timed_serve(pools[mode], documents, solo, not checked["done"])
            checked["done"] = True
            if mode in spans_recorded:
                spans_recorded[mode] += _drain_tracer(hubs[mode])
            return run

        runs_by_mode, pair_ratios = _paired_rounds(
            serve_tier, tier_modes, POOL_ROUNDS
        )
    finally:
        for pool in pools.values():
            pool.close()

    for mode in MODES[1:]:
        _assert_tier_live(f"{name}/{mode}", hubs[mode], spans_recorded[mode],
                          POOL_ROUNDS * len(documents))
    tiers = _summarize(runs_by_mode, pair_ratios)

    # Noise floor: the control pool is byte-for-byte the baseline, so its
    # measured "overhead" and the spread of its per-round ratios are pure
    # measurement noise.  The gate widens by twice the robust standard
    # error of the median — on a quiet host this collapses toward the
    # bare budget.
    control_ratios = tiers["control"]["cpu_ratios"]
    mad = statistics.median(
        abs(ratio - statistics.median(control_ratios)) for ratio in control_ratios
    )
    noise_floor_pct = (
        2.0 * 1.25 * 1.4826 * mad / (len(control_ratios) ** 0.5) * 100.0
    )
    allowance = DISABLED_BUDGET_PCT + noise_floor_pct
    disabled = tiers["disabled"]["overhead_pct"]
    assert disabled <= allowance, (
        f"{name}: disabled observability path costs {disabled:.2f}% CPU, "
        f"over budget {DISABLED_BUDGET_PCT}% + measured noise floor "
        f"{noise_floor_pct:.2f}% — a hook leaked into the pool path"
    )
    tiers["method"] = (
        "one pool per tier (worker instrumentation is spawn-bound) plus an "
        "A/A control pool; bar enforced at budget + noise floor"
    )
    tiers["noise_floor_pct"] = noise_floor_pct
    tiers["gate_pct"] = allowance
    return tiers


def _run_workload(name: str, benchmark=None) -> dict:
    dtd, specs, documents = _workload(name)
    solo = _solo_outputs(dtd, specs, documents)

    if benchmark is not None:
        holder = {}

        def target():
            holder["tiers"] = _run_inline(
                f"{name}/inline", dtd, specs, documents, solo
            )
            return holder["tiers"]

        benchmark.pedantic(target, rounds=1, iterations=1)
        inline_tiers = holder["tiers"]
    else:
        inline_tiers = _run_inline(f"{name}/inline", dtd, specs, documents, solo)
    process_tiers = _run_processes(
        f"{name}/processes", dtd, specs, documents, solo
    )

    return {
        "documents": len(documents),
        "queries": len(specs),
        "document_bytes_total": sum(len(doc) for doc in documents),
        "disabled_budget_pct": DISABLED_BUDGET_PCT,
        "backends": {
            "inline": inline_tiers,
            f"processes({WORKERS})": process_tiers,
        },
    }


def test_s6_obs_overhead_bib(benchmark):
    _REPORT["bib"] = _run_workload("bib", benchmark=benchmark)


def test_s6_obs_overhead_xmark(benchmark):
    _REPORT["xmark"] = _run_workload("xmark", benchmark=benchmark)


@pytest.fixture(scope="module", autouse=True)
def report_s6():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s6_obs_overhead.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S6: observability overhead — events/second by instrumentation tier.",
        "QueryService (inline) and ProcessServicePool serve loops on the bib"
        " and XMark streams.  Overhead is the median per-round CPU-time"
        " ratio vs the obs=None baseline (driver + worker processes, tiers"
        " timed back-to-back each round); wall clock cannot resolve 3% on a"
        " shared host.  Inline swaps one service's obs hub between runs"
        " (instance bias cancels exactly); the pool adds an A/A control"
        " pool whose apparent overhead prices the measurement noise.",
        "Bar: the disabled path (hub attached, every component off) must"
        " stay within %.0f%% of baseline CPU (inline: exact; processes:"
        " + the control-measured noise floor)." % DISABLED_BUDGET_PCT,
        "",
    ]
    for workload in sorted(_REPORT):
        entry = _REPORT[workload]
        lines.append(
            f"{workload}: {entry['documents']} documents x {entry['queries']}"
            f" queries ({entry['document_bytes_total']} bytes total)"
        )
        for backend, tiers in entry["backends"].items():
            modes = MODES + (["control"] if "control" in tiers else [])
            lines.append(f"  {backend}:")
            lines.append(
                f"  {'tier':<18}{'events/s':>12}{'elapsed s':>11}"
                f"{'cpu s':>9}{'overhead':>10}"
            )
            for mode in modes:
                tier = tiers[mode]
                lines.append(
                    f"  {mode:<18}{tier['events_per_second']:>12.0f}"
                    f"{tier['best_elapsed_seconds']:>11.3f}"
                    f"{tier['median_cpu_seconds']:>9.3f}"
                    f"{tier['overhead_pct']:>9.2f}%"
                )
            if "gate_pct" in tiers:
                lines.append(
                    f"  bar: disabled <= {entry['disabled_budget_pct']:.0f}%"
                    f" + noise floor {tiers['noise_floor_pct']:.2f}%"
                    f" (measured {tiers['disabled']['overhead_pct']:.2f}%)"
                )
            else:
                lines.append(
                    f"  bar: disabled <= {entry['disabled_budget_pct']:.0f}%"
                    f" (measured {tiers['disabled']['overhead_pct']:.2f}%)"
                )
        lines.append("")
    content = write_report("s6_obs_overhead.txt", "\n".join(lines))
    print("\n" + content)
