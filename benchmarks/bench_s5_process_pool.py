"""Experiment S5 — multi-process pool: plan shipping vs the GIL cap.

S4 ended on an honest footnote: the thread pool's workers interleave under
CPython's GIL, so on *CPU-bound* streams (documents already in memory,
nothing to overlap) the pool measured ~1× a single serve loop no matter
how many workers it had.  :class:`~repro.service.ProcessServicePool` is
the architectural answer — worker processes, compiled plans shipped from
the parent's cache — and this experiment measures what it buys, and what
it costs, in both regimes:

* **CPU-bound regime** (the reason the process pool exists): the same
  in-memory document streams S4 used, served by a single loop, by the
  thread pool at 4 workers (the reproduced ~1× footnote), and by the
  process pool at 1→8 workers.  Plan shipping is verified exactly: one
  parent compilation per distinct query (``misses``), ``workers ×
  queries`` artifacts shipped (``ship_count``), zero optimizer runs
  reported by any worker.  **Hardware note**: process parallelism cannot
  exceed the machine — the acceptance bar (pool(4) ≥ 2× the single loop)
  is enforced whenever ≥2 CPU cores are usable, scaled to
  ``min(cores, 4) / 2``; on a single-core container the run still
  verifies shipping, byte-identity, and bounded IPC overhead (≥ 0.45×),
  and records the constraint in the committed results instead of
  pretending a number the hardware cannot produce.
* **latency-bound regime** (the thread pool's home turf): chunked feeds
  with 15 ms/chunk delivery latency.  The thread pool reads feeds in its
  workers; the process pool ships
  :class:`~repro.bench.feeds.LatencyFeedSource` recipes so its *workers*
  pay the delivery, keeping it overlapped.  The bar here — pool(4) ≥ 2×
  the single loop — holds on any hardware (sleeping needs no cores) and
  is always enforced, for both backends.
* **crash isolation** (beyond S4): a worker process killed mid-document
  (injected via the pool's fault marker) must surface as one error-tagged
  ``ServedDocument`` carrying ``WorkerCrashError``, respawn the slot, and
  leave every other document byte-identical to solo runs.

Results land in ``benchmarks/results/s5_process_pool.{json,txt}``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import pytest

from repro.bench.feeds import LatencyFeed, LatencyFeedSource
from repro.engines.flux_engine import FluxEngine
from repro.errors import WorkerCrashError
from repro.service import ProcessServicePool, QueryService, ServicePool
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.workloads.xmark import generate_auction_site

from conftest import RESULTS_DIR, write_report

#: Documents per stream (sizes vary like real traffic; same as S4).
STREAM_DOCUMENTS = 12

#: Chunks per document feed and delivery latency per chunk (same as S4):
#: 10 × 15 ms = 150 ms of transport per document.
FEED_CHUNKS = 10
CHUNK_LATENCY_SECONDS = 0.015

#: Pool sizes for the CPU-bound scaling curve.
WORKER_COUNTS = [1, 2, 4, 8]

#: Fault-injection marker for the crash scenario.
CRASH_MARKER = "S5-CRASH-INJECTION"

#: CPU cores this container may actually use — the ceiling on process
#: parallelism, and therefore on what the CPU-bound bar may honestly demand.
try:
    USABLE_CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    USABLE_CORES = os.cpu_count() or 1

_REPORT: Dict[str, dict] = {}


def _workload(name: str):
    if name == "bib":
        dtd = BIB_DTD_STRONG
        documents = [
            generate_bibliography(num_books=books, seed=2004 + i)
            for i, books in enumerate([60, 120, 90, 150, 75, 105] * 2)
        ][:STREAM_DOCUMENTS]
    else:  # xmark
        dtd = AUCTION_DTD
        documents = [
            generate_auction_site(scale=scale, seed=2004 + i)
            for i, scale in enumerate([0.3, 0.5, 0.4, 0.6, 0.35, 0.45] * 2)
        ][:STREAM_DOCUMENTS]
    specs = queries_for_workload("bib" if name == "bib" else "auction")
    return dtd, specs, documents


def _solo_outputs(dtd, specs, documents) -> List[Dict[str, str]]:
    engine = FluxEngine(dtd)
    return [
        {spec.key: engine.execute(spec.xquery, document).output for spec in specs}
        for document in documents
    ]


def _check_outputs(served, solo) -> None:
    for outcome in served:
        assert outcome.ok, outcome.error
        produced = {key: result.output for key, result in outcome.results.items()}
        assert produced == solo[outcome.index]


def _timed_serve(pool_or_service, stream) -> dict:
    started = time.perf_counter()
    served = list(pool_or_service.serve(stream))
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "served": served,
        "docs_per_second": len(served) / elapsed,
    }


def _run_single_loop(dtd, specs, documents, feeds: bool) -> dict:
    service = QueryService(dtd, execution="inline")
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    stream = [
        LatencyFeed(doc, FEED_CHUNKS, CHUNK_LATENCY_SECONDS) if feeds else doc
        for doc in documents
    ]
    return _timed_serve(service, stream)


def _run_thread_pool(dtd, specs, documents, workers: int, feeds: bool) -> dict:
    pool = ServicePool(dtd, workers=workers, execution="inline")
    for spec in specs:
        pool.register(spec.xquery, key=spec.key)
    stream = [
        LatencyFeed(doc, FEED_CHUNKS, CHUNK_LATENCY_SECONDS) if feeds else doc
        for doc in documents
    ]
    return _timed_serve(pool, stream)


def _run_process_pool(dtd, specs, documents, workers: int, feeds: bool) -> dict:
    """One process-pool run, with plan shipping verified exactly.

    The fleet is spawned and warmed before the clock starts (one tiny
    warm-up document): the pool is a long-lived server, so steady-state
    throughput — not Python interpreter start-up — is the measured
    quantity; S4's thread pool numbers likewise exclude pool construction.
    """
    with ProcessServicePool(dtd, workers=workers) as pool:
        for spec in specs:
            pool.register(spec.xquery, key=spec.key)
        # Spawn + ship + first-pass warm-up, outside the measured region.
        warmup = list(pool.serve([documents[0]]))
        assert all(outcome.ok for outcome in warmup)

        # Compile-once, verified on both sides of the process boundary:
        # the parent paid one optimizer run per distinct query and shipped
        # workers × queries artifacts; no worker compiled anything.
        stats = pool.plan_cache.stats
        assert stats.misses == len(specs), (
            f"expected one parent compilation per query, got {stats.misses}"
        )
        metrics = pool.metrics
        assert metrics.ship_count == workers * len(specs), (
            f"expected {workers * len(specs)} shipped artifacts, "
            f"got {metrics.ship_count}"
        )
        assert all(
            count == 0 for count in pool.worker_compilations().values()
        ), "a worker process ran the optimizer: plan shipping is broken"

        stream = [
            LatencyFeedSource(doc, FEED_CHUNKS, CHUNK_LATENCY_SECONDS)
            if feeds
            else doc
            for doc in documents
        ]
        run = _timed_serve(pool, stream)
        run["ship_count"] = metrics.ship_count
        run["ship_bytes"] = metrics.ship_bytes
        run["parent_compilations"] = stats.misses
        run["worker_compilations"] = sum(pool.worker_compilations().values())
        return run


def _crash_isolation(dtd, specs, documents, solo) -> dict:
    """Kill a worker process mid-document; the stream must keep serving."""
    bad_index = len(documents) // 2
    stream = list(documents)
    root_close = stream[bad_index].rstrip()[-6:]  # "</bib>" / "</site>"
    stream[bad_index] = stream[bad_index].replace(
        root_close, f"<!--{CRASH_MARKER}-->{root_close}"
    )
    with ProcessServicePool(
        dtd, workers=4, _crash_marker=CRASH_MARKER
    ) as pool:
        for spec in specs:
            pool.register(spec.xquery, key=spec.key)
        served = list(pool.serve(stream))
        assert sorted(o.index for o in served) == list(range(len(stream)))
        failures = [o for o in served if not o.ok]
        assert len(failures) == 1 and failures[0].index == bad_index
        assert isinstance(failures[0].error, WorkerCrashError)
        assert failures[0].results == {}
        assert pool.worker_respawns == 1
        for outcome in served:
            if outcome.index == bad_index:
                continue
            produced = {
                key: result.output for key, result in outcome.results.items()
            }
            assert produced == solo[outcome.index], (
                "crash isolation broke byte-identity for document %d"
                % outcome.index
            )
        metrics = pool.metrics
        assert metrics.documents_failed == 1
        assert metrics.documents_ok == len(stream) - 1
        return {
            "bad_index": bad_index,
            "error": type(failures[0].error).__name__,
            "exitcode": failures[0].error.exitcode,
            "failed_worker": failures[0].worker,
            "worker_respawns": pool.worker_respawns,
            "documents_ok": metrics.documents_ok,
            "documents_failed": metrics.documents_failed,
            "others_byte_identical": True,
        }


def _run_workload(name: str, benchmark=None) -> dict:
    dtd, specs, documents = _workload(name)
    solo = _solo_outputs(dtd, specs, documents)

    # ---- CPU-bound regime: in-memory strings, nothing to overlap.
    cpu_single = _run_single_loop(dtd, specs, documents, feeds=False)
    _check_outputs(cpu_single["served"], solo)
    cpu_threads4 = _run_thread_pool(dtd, specs, documents, 4, feeds=False)
    _check_outputs(cpu_threads4["served"], solo)

    cpu_scaling = {}
    for workers in WORKER_COUNTS:
        if benchmark is not None and workers == 4:
            holder = {}

            def target():
                holder["run"] = _run_process_pool(
                    dtd, specs, documents, 4, feeds=False
                )
                return holder["run"]

            benchmark.pedantic(target, rounds=1, iterations=1)
            run = holder["run"]
        else:
            run = _run_process_pool(dtd, specs, documents, workers, feeds=False)
        _check_outputs(run["served"], solo)
        cpu_scaling[workers] = run

    # ---- Latency-bound regime: 150 ms delivery per document.
    lat_single = _run_single_loop(dtd, specs, documents, feeds=True)
    _check_outputs(lat_single["served"], solo)
    lat_threads4 = _run_thread_pool(dtd, specs, documents, 4, feeds=True)
    _check_outputs(lat_threads4["served"], solo)
    lat_processes4 = _run_process_pool(dtd, specs, documents, 4, feeds=True)
    _check_outputs(lat_processes4["served"], solo)

    cpu_speedup_4 = (
        cpu_scaling[4]["docs_per_second"] / cpu_single["docs_per_second"]
    )
    lat_speedup_4 = (
        lat_processes4["docs_per_second"] / lat_single["docs_per_second"]
    )

    # The CPU-bound bar scales with what the hardware can express: 2× at
    # ≥4 usable cores, cores/2 at 2-3, and on a single core only the
    # IPC-overhead sanity bound (the regime the footnote documents).
    if USABLE_CORES >= 2:
        cpu_bar = min(USABLE_CORES, 4) / 2.0
        assert cpu_speedup_4 >= cpu_bar, (
            f"{name}: process pool(4) CPU-bound speedup {cpu_speedup_4:.2f}x "
            f"< {cpu_bar:.1f}x bar on {USABLE_CORES} cores"
        )
        cpu_bar_note = f"enforced >= {cpu_bar:.1f}x on {USABLE_CORES} cores"
    else:
        assert cpu_speedup_4 >= 0.45, (
            f"{name}: process pool(4) lost {cpu_speedup_4:.2f}x to IPC on one "
            "core — overhead out of bounds"
        )
        cpu_bar_note = (
            "single usable core: hardware cannot express process "
            "parallelism; bar >= 0.45x (IPC overhead bound) enforced, "
            "2x bar armed for >= 2 cores"
        )

    # The latency bar holds on any hardware and is always enforced.
    assert lat_speedup_4 >= 2.0, (
        f"{name}: process pool(4) latency-bound speedup {lat_speedup_4:.2f}x "
        "< 2x bar"
    )

    def _summary(run, baseline) -> dict:
        entry = {
            "elapsed_seconds": run["elapsed_seconds"],
            "docs_per_second": run["docs_per_second"],
            "speedup_vs_single": run["docs_per_second"] / baseline["docs_per_second"],
        }
        for key in ("ship_count", "ship_bytes", "parent_compilations",
                    "worker_compilations"):
            if key in run:
                entry[key] = run[key]
        return entry

    return {
        "documents": len(documents),
        "queries": len(specs),
        "document_bytes_total": sum(len(doc) for doc in documents),
        "usable_cores": USABLE_CORES,
        "cpu_bound": {
            "single_loop": _summary(cpu_single, cpu_single),
            "thread_pool_4": _summary(cpu_threads4, cpu_single),
            "process_pool": {
                str(workers): _summary(run, cpu_single)
                for workers, run in cpu_scaling.items()
            },
            "bar": cpu_bar_note,
        },
        "latency_bound": {
            "feed": {
                "chunks_per_document": FEED_CHUNKS,
                "chunk_latency_seconds": CHUNK_LATENCY_SECONDS,
                "delivery_seconds_per_document": FEED_CHUNKS * CHUNK_LATENCY_SECONDS,
            },
            "single_loop": _summary(lat_single, lat_single),
            "thread_pool_4": _summary(lat_threads4, lat_single),
            "process_pool_4": _summary(lat_processes4, lat_single),
            "bar": "enforced >= 2x (delivery overlap needs no extra cores)",
        },
        "crash_isolation": _crash_isolation(dtd, specs, documents, solo),
    }


def test_s5_process_pool_bib(benchmark):
    _REPORT["bib"] = _run_workload("bib", benchmark=benchmark)


def test_s5_process_pool_xmark(benchmark):
    _REPORT["xmark"] = _run_workload("xmark", benchmark=benchmark)


@pytest.fixture(scope="module", autouse=True)
def report_s5():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s5_process_pool.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S5: multi-process service pool — plan shipping vs the GIL cap.",
        "Single QueryService.serve() loop vs thread pool vs process pool"
        " (plans compiled once in the parent, shipped pickled to workers),"
        " on CPU-bound streams (in-memory documents) and latency-bound"
        " streams (chunked feeds, 15 ms/chunk).",
        "",
    ]
    for workload in sorted(_REPORT):
        entry = _REPORT[workload]
        lines.append(
            f"{workload}: {entry['documents']} documents x {entry['queries']}"
            f" queries ({entry['document_bytes_total']} bytes total),"
            f" {entry['usable_cores']} usable core(s)"
        )
        cpu = entry["cpu_bound"]
        lines.append("  CPU-bound (in-memory documents):")
        lines.append(
            f"  {'mode':<16}{'elapsed s':>11}{'docs/s':>9}{'speedup':>9}"
            f"{'shipped':>9}{'compiled':>20}"
        )
        rows = [
            ("serve(1 svc)", cpu["single_loop"], False),
            ("threads(4)", cpu["thread_pool_4"], False),
        ] + [
            (f"processes({workers})", cpu["process_pool"][str(workers)], True)
            for workers in WORKER_COUNTS
        ]
        for label, run, shipped in rows:
            ship = str(run.get("ship_count", "-"))
            compiled = (
                f"{run['parent_compilations']} parent / "
                f"{run['worker_compilations']} worker"
                if shipped
                else "-"
            )
            lines.append(
                f"  {label:<16}{run['elapsed_seconds']:>11.2f}"
                f"{run['docs_per_second']:>9.2f}"
                f"{run['speedup_vs_single']:>8.2f}x"
                f"{ship:>9}{compiled:>20}"
            )
        lines.append(f"  bar: {cpu['bar']}")
        lat = entry["latency_bound"]
        delivery_ms = lat["feed"]["delivery_seconds_per_document"] * 1000
        lines.append(
            f"  latency-bound (chunked feeds, {delivery_ms:.0f} ms delivery"
            " per document):"
        )
        for label, run in [
            ("serve(1 svc)", lat["single_loop"]),
            ("threads(4)", lat["thread_pool_4"]),
            ("processes(4)", lat["process_pool_4"]),
        ]:
            lines.append(
                f"  {label:<16}{run['elapsed_seconds']:>11.2f}"
                f"{run['docs_per_second']:>9.2f}"
                f"{run['speedup_vs_single']:>8.2f}x"
            )
        lines.append(f"  bar: {lat['bar']}")
        crash = entry["crash_isolation"]
        lines.append(
            f"  crash isolation: worker {crash['failed_worker']} killed"
            f" (exit {crash['exitcode']}) mid-document {crash['bad_index']} ->"
            f" 1 {crash['error']} outcome, slot respawned"
            f" ({crash['worker_respawns']}), {crash['documents_ok']} other"
            " documents byte-identical to solo runs"
        )
        lines.append("")
    content = write_report("s5_process_pool.txt", "\n".join(lines))
    print("\n" + content)
