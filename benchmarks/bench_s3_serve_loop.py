"""Experiment S3 — the long-lived serving loop over a document stream.

PR 1/2 made one document cheap for N queries; this experiment measures what
*staying alive* across documents is worth.  A fleet of M standing queries
serves a stream of N documents four ways:

* **recreate** (the baseline this PR removes): a fresh ``QueryService`` —
  fresh plan cache, fresh compilations — per document, the way a one-shot
  process would be scripted;
* **serve/inline** and **serve/threads**: one long-lived service,
  :meth:`~repro.service.QueryService.serve` looping over the stream —
  plans compile once at registration and only the per-query runtimes are
  fresh per document;
* **serve/async**: the same loop driven by the asyncio front end
  (:class:`~repro.service.AsyncQueryService`) on a real event loop.

Reported per mode: wall-clock for the whole stream, optimizer compilations
paid (plan-cache misses), and parser events.  The acceptance bar: the serve
loop compiles each query exactly once however many documents arrive (the
recreate baseline pays M compilations per document), and every mode's
output for every (document, query) pair is byte-identical to a solo
``FluxEngine`` run.  Results land in
``benchmarks/results/s3_serve_loop.{json,txt}``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Dict, List

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.service import AsyncQueryService, QueryService
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload

from conftest import RESULTS_DIR, write_report

#: Book counts of the served document stream (sizes vary like real traffic).
STREAM_BOOKS = [60, 120, 90, 150, 75, 105]

_REPORT: Dict[str, dict] = {}


@pytest.fixture(scope="module")
def document_stream() -> List[str]:
    return [
        generate_bibliography(num_books=books, seed=2004 + i)
        for i, books in enumerate(STREAM_BOOKS)
    ]


def _solo_outputs(specs, documents) -> List[Dict[str, str]]:
    engine = FluxEngine(BIB_DTD_STRONG)
    return [
        {spec.key: engine.execute(spec.xquery, document).output for spec in specs}
        for document in documents
    ]


def _run_recreate(specs, documents) -> dict:
    outputs, events, misses = [], 0, 0
    started = time.perf_counter()
    for document in documents:
        service = QueryService(BIB_DTD_STRONG, execution="inline")
        for spec in specs:
            service.register(spec.xquery, key=spec.key)
        results = service.run_pass(document)
        outputs.append({key: result.output for key, result in results.items()})
        events += service.metrics.parser_events_total
        misses += service.plan_cache.stats.misses
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "plan_compilations": misses,
        "parser_events": events,
        "outputs": outputs,
    }


def _run_serve(specs, documents, execution: str) -> dict:
    service = QueryService(BIB_DTD_STRONG, execution=execution)
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    outputs = []
    started = time.perf_counter()
    for outcome in service.serve(documents):
        outputs.append(
            {key: result.output for key, result in outcome.results.items()}
        )
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "plan_compilations": service.plan_cache.stats.misses,
        "parser_events": service.metrics.parser_events_total,
        "outputs": outputs,
    }


def _run_serve_async(specs, documents) -> dict:
    service = AsyncQueryService(BIB_DTD_STRONG)
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    outputs = []

    async def drive():
        async for outcome in service.serve(documents):
            outputs.append(
                {key: result.output for key, result in outcome.results.items()}
            )

    started = time.perf_counter()
    asyncio.run(drive())
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "plan_compilations": service.plan_cache.stats.misses,
        "parser_events": service.metrics.parser_events_total,
        "outputs": outputs,
    }


def test_s3_serve_loop_vs_recreation(benchmark, document_stream):
    specs = queries_for_workload("bib")
    solo = _solo_outputs(specs, document_stream)

    holder = {}

    def target():
        holder["serve_inline"] = _run_serve(specs, document_stream, "inline")
        return holder["serve_inline"]

    benchmark.pedantic(target, rounds=1, iterations=1)
    modes = {
        "recreate": _run_recreate(specs, document_stream),
        "serve_inline": holder["serve_inline"],
        "serve_threads": _run_serve(specs, document_stream, "threads"),
        "serve_async": _run_serve_async(specs, document_stream),
    }

    # Correctness first: every mode, every document, every query — solo bytes.
    for mode, run in modes.items():
        assert run["outputs"] == solo, mode

    # The point of the loop: one compilation per query, not per (query, doc).
    assert modes["recreate"]["plan_compilations"] == len(specs) * len(document_stream)
    for mode in ("serve_inline", "serve_threads", "serve_async"):
        assert modes[mode]["plan_compilations"] == len(specs), mode

    entry = {
        "documents": len(document_stream),
        "queries": len(specs),
        "document_bytes_total": sum(len(doc) for doc in document_stream),
        "modes": {
            mode: {k: v for k, v in run.items() if k != "outputs"}
            for mode, run in modes.items()
        },
        "serve_speedup_vs_recreate": (
            modes["recreate"]["elapsed_seconds"]
            / modes["serve_inline"]["elapsed_seconds"]
        ),
        "async_vs_inline": (
            modes["serve_async"]["elapsed_seconds"]
            / modes["serve_inline"]["elapsed_seconds"]
        ),
    }
    _REPORT["bib"] = entry
    benchmark.extra_info.update(
        {k: v for k, v in entry.items() if not isinstance(v, (dict, list))}
    )


@pytest.fixture(scope="module", autouse=True)
def report_s3():
    yield
    if not _REPORT:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "s3_serve_loop.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
    lines = [
        "S3: long-lived serving loop — one service over a document stream vs"
        " per-document service re-creation; async vs inline drivers",
        "",
    ]
    for workload in sorted(_REPORT):
        entry = _REPORT[workload]
        lines.append(
            f"{workload}: {entry['documents']} documents x {entry['queries']}"
            f" queries ({entry['document_bytes_total']} bytes total)"
        )
        lines.append(
            f"{'mode':<16}{'elapsed ms':>12}{'compilations':>14}{'parser events':>15}"
        )
        for mode in ("recreate", "serve_threads", "serve_inline", "serve_async"):
            run = entry["modes"][mode]
            lines.append(
                f"{mode:<16}{run['elapsed_seconds'] * 1000:>12.1f}"
                f"{run['plan_compilations']:>14}{run['parser_events']:>15}"
            )
        lines.append(
            f"serve(inline) is {entry['serve_speedup_vs_recreate']:.2f}x the"
            f" recreate baseline; async costs"
            f" {entry['async_vs_inline']:.2f}x inline"
        )
        lines.append("")
    content = write_report("s3_serve_loop.txt", "\n".join(lines))
    print("\n" + content)
