"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description="FluXQuery reproduction: an optimizing XQuery processor for streaming XML data",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "fluxrepro = repro.cli:main",
        ],
    },
)
