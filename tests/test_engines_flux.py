"""Unit tests for the FluxEngine facade."""

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query


class TestFluxEngine:
    def test_execute_returns_result_object(self, paper_dtd, paper_document, paper_q3):
        engine = FluxEngine(paper_dtd)
        result = engine.execute(paper_q3, paper_document)
        assert result.engine == "flux"
        assert result.output.startswith("<results>")
        assert result.peak_buffer_bytes == 0
        assert result.elapsed_seconds >= 0
        assert "peak buffer" in result.summary()

    def test_engine_accepts_dtd_text(self, paper_document, paper_q3):
        engine = FluxEngine(
            "<!ELEMENT bib (book)*>"
            "<!ELEMENT book (title,(author+|editor+),publisher,price)>"
            "<!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>"
            "<!ELEMENT editor (#PCDATA)><!ELEMENT publisher (#PCDATA)>"
            "<!ELEMENT price (#PCDATA)>"
        )
        result = engine.execute(paper_q3, paper_document)
        assert "<title>TCP/IP Illustrated</title>" in result.output

    def test_compile_exposes_flux_and_bdf(self, paper_dtd, paper_q3):
        engine = FluxEngine(paper_dtd)
        compiled = engine.compile(paper_q3)
        assert "process-stream" in compiled.flux_syntax
        assert compiled.buffer_description
        assert compiled.plan.operator_count() > 0

    def test_compile_is_cached(self, paper_dtd, paper_q3):
        # The engine compiles through the shared runtime PlanCache: the
        # second compile is a cache hit on the same plan entry (the wrapper
        # object is a cheap per-call view).
        engine = FluxEngine(paper_dtd)
        assert engine.compile(paper_q3).entry is engine.compile(paper_q3).entry
        assert engine.plan_cache.stats.misses == 1
        assert engine.plan_cache.stats.hits == 1

    def test_engine_and_service_share_one_cache(self, paper_dtd, paper_q3):
        # The tentpole invariant: no private engine-side plan dict — a query
        # registered with the service is a cache hit for the solo engine.
        from repro.runtime.plan_cache import PlanCache
        from repro.service import QueryService

        cache = PlanCache()
        service = QueryService(paper_dtd, plan_cache=cache)
        service.register(paper_q3, key="q3")
        engine = FluxEngine(paper_dtd, plan_cache=cache)
        compiled = engine.compile(paper_q3)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert compiled.entry is service.registrations["q3"].entry
        assert not hasattr(engine, "_plan_cache")

    def test_compiled_query_is_reusable(self, paper_dtd, paper_document, paper_q3):
        engine = FluxEngine(paper_dtd)
        compiled = engine.compile(paper_q3)
        first = compiled.execute(paper_document)
        second = compiled.execute(paper_document)
        assert first.output == second.output

    def test_file_like_document_input(self, paper_dtd, paper_document, paper_q3):
        import io

        engine = FluxEngine(paper_dtd)
        result = engine.execute(paper_q3, io.StringIO(paper_document))
        assert result.output.startswith("<results>")

    def test_engine_without_dtd_still_correct(self, paper_document, paper_q3):
        with_dtd = FluxEngine(
            dtd=None
        ).execute(paper_q3, paper_document)
        assert "<title>TCP/IP Illustrated</title>" in with_dtd.output

    def test_catalog_query_on_generated_workload(self, small_bibliography):
        engine = FluxEngine(BIB_DTD_STRONG)
        spec = get_query("BIB-Q3")
        result = engine.execute(spec.xquery, small_bibliography)
        assert result.peak_buffer_bytes == 0
        assert result.output.count("<result>") == 20

    def test_ablation_flags_change_memory_not_output(self, small_bibliography):
        spec = get_query("BIB-Q3")
        default = FluxEngine(BIB_DTD_STRONG).execute(spec.xquery, small_bibliography)
        ablated = FluxEngine(BIB_DTD_STRONG, use_order_constraints=False).execute(
            spec.xquery, small_bibliography
        )
        assert default.output == ablated.output
        assert default.peak_buffer_bytes < ablated.peak_buffer_bytes
