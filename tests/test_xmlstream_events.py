"""Unit tests for the event model."""

from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
    element_events,
    events_depth_ok,
)


class TestEventValues:
    def test_events_are_hashable_and_comparable(self):
        assert StartElement("a") == StartElement("a")
        assert StartElement("a") != StartElement("b")
        assert len({StartElement("a"), StartElement("a"), EndElement("a")}) == 2

    def test_attributes_dict_view(self):
        event = StartElement("a", (("x", "1"), ("y", "2")))
        assert event.attributes == {"x": "1", "y": "2"}

    def test_attributes_default_empty(self):
        assert StartElement("a").attributes == {}

    def test_size_estimates(self):
        assert Text("hello").size_estimate() == 5
        assert StartElement("abc").size_estimate() >= len("abc")
        assert StartElement("a", (("k", "vvv"),)).size_estimate() > StartElement("a").size_estimate()
        assert EndElement("abc").size_estimate() >= len("abc")
        assert StartDocument().size_estimate() > 0
        assert EndDocument().size_estimate() > 0


class TestHelpers:
    def test_element_events_wraps_body(self):
        events = list(element_events("a", {"x": "1"}, [Text("hi")]))
        assert events[0] == StartElement("a", (("x", "1"),))
        assert events[-1] == EndElement("a")
        assert events[1] == Text("hi")

    def test_events_depth_ok_balanced(self):
        events = [StartElement("a"), StartElement("b"), EndElement("b"), EndElement("a")]
        assert events_depth_ok(events)

    def test_events_depth_ok_detects_mismatch(self):
        assert not events_depth_ok([StartElement("a"), EndElement("b")])
        assert not events_depth_ok([StartElement("a")])
        assert not events_depth_ok([EndElement("a")])
