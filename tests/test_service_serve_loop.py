"""The long-lived serving loop: many documents, registration churn, one pass
at a time.

The acceptance bar of the serve loop: a service living across >= 3 documents
— with queries registered, unregistered, and replaced *between* passes —
produces, for every (document, query) pair it served, output byte-identical
to a fresh solo ``FluxEngine.execute`` of that query over that document, and
its metrics (per-pass and cumulative) stay consistent throughout.
"""

import io

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.errors import PassInProgressError
from repro.service import QueryService, ServedDocument
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query

from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3

TITLES_QUERY = "<titles>{ for $b in $ROOT/bib/book return $b/title }</titles>"


@pytest.fixture(scope="module")
def documents():
    return [
        generate_bibliography(num_books=books, seed=seed)
        for books, seed in [(8, 1), (13, 2), (21, 3), (5, 4)]
    ]


def solo(query: str, document: str) -> str:
    return FluxEngine(BIB_DTD_STRONG).execute(query, document).output


class TestServeLoop:
    @pytest.mark.parametrize("execution", ["threads", "inline"])
    def test_serve_matches_solo_per_document(self, documents, execution):
        q1 = get_query("BIB-Q1").xquery
        q3 = get_query("BIB-Q3").xquery
        service = QueryService(BIB_DTD_STRONG, execution=execution)
        service.register(q1, key="q1")
        service.register(q3, key="q3")
        served = list(service.serve(documents))
        assert [outcome.index for outcome in served] == [0, 1, 2, 3]
        for outcome, document in zip(served, documents):
            assert isinstance(outcome, ServedDocument)
            assert outcome.results["q1"].output == solo(q1, document)
            assert outcome.results["q3"].output == solo(q3, document)
        assert service.metrics.passes_completed == len(documents)

    def test_serve_accepts_file_like_documents(self, documents):
        service = QueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")
        served = list(service.serve(io.StringIO(doc) for doc in documents[:3]))
        for outcome, document in zip(served, documents):
            assert outcome.results["t"].output == solo(TITLES_QUERY, document)

    def test_cumulative_metrics_accumulate_across_passes(self, documents):
        service = QueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")
        per_pass_events = [
            outcome.metrics.parser_events for outcome in service.serve(documents)
        ]
        assert all(events > 0 for events in per_pass_events)
        assert service.metrics.parser_events_total == sum(per_pass_events)
        assert service.metrics.results_produced == len(documents)
        assert service.metrics.last_pass.parser_events == per_pass_events[-1]

    def test_plans_compile_once_across_the_loop(self, documents):
        service = QueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")
        list(service.serve(documents))
        # One miss at registration; the loop itself never touches the
        # optimizer again (sessions are fresh, plans are reused).
        assert service.plan_cache.stats.misses == 1
        assert service.registrations["t"].passes == len(documents)

    def test_serve_with_empty_service_raises(self, documents):
        service = QueryService(BIB_DTD_STRONG)
        with pytest.raises(ValueError, match="no queries registered"):
            list(service.serve(documents))

    def test_empty_service_error_does_not_consume_a_document(self, documents):
        """Catch the ValueError, register, re-serve the same iterator: no
        document may have been silently lost to the failed attempt."""
        service = QueryService(BIB_DTD_STRONG)
        iterator = iter(documents)
        with pytest.raises(ValueError, match="no queries registered"):
            next(service.serve(iterator))
        service.register(TITLES_QUERY, key="t")
        served = list(service.serve(iterator))
        assert len(served) == len(documents)  # document 0 was not consumed
        for outcome, document in zip(served, documents):
            assert outcome.results["t"].output == solo(TITLES_QUERY, document)

    def test_emptied_service_fails_before_pulling_the_next_document(self, documents):
        service = QueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")
        iterator = iter(documents)
        loop = service.serve(iterator)
        next(loop)
        service.unregister("t")
        with pytest.raises(ValueError, match="document 1"):
            next(loop)
        # The offending document is still on the iterator.
        assert next(iterator) == documents[1]

    def test_failing_document_aborts_and_frees_the_slot(self, documents):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        from repro.errors import XMLSyntaxError

        with pytest.raises(XMLSyntaxError):
            list(service.serve([PAPER_DOCUMENT, "<bib><book>", PAPER_DOCUMENT]))
        assert service.active_pass is None
        # The service survives: a fresh loop serves cleanly.
        assert service.run_pass(PAPER_DOCUMENT)["q3"].output


class TestRegistrationChurn:
    """Register / unregister / replace between passes of one serve loop."""

    def test_register_mid_loop(self, documents):
        q1 = get_query("BIB-Q1").xquery
        service = QueryService(BIB_DTD_STRONG)
        service.register(q1, key="q1")
        loop = service.serve(documents[:3])
        first = next(loop)
        assert set(first.results) == {"q1"}
        service.register(TITLES_QUERY, key="t")
        second = next(loop)
        assert set(second.results) == {"q1", "t"}
        assert second.metrics.queries == 2
        third = next(loop)
        for outcome, document in [(second, documents[1]), (third, documents[2])]:
            assert outcome.results["q1"].output == solo(q1, document)
            assert outcome.results["t"].output == solo(TITLES_QUERY, document)
        assert service.metrics.queries_registered == 2
        assert service.metrics.results_produced == 1 + 2 + 2

    def test_unregister_mid_loop(self, documents):
        q1 = get_query("BIB-Q1").xquery
        service = QueryService(BIB_DTD_STRONG)
        service.register(q1, key="q1")
        service.register(TITLES_QUERY, key="t")
        loop = service.serve(documents[:2])
        first = next(loop)
        assert set(first.results) == {"q1", "t"}
        service.unregister("q1")
        second = next(loop)
        assert set(second.results) == {"t"}
        assert second.metrics.queries == 1
        assert second.results["t"].output == solo(TITLES_QUERY, documents[1])
        # Live-query invariant holds after the churn.
        metrics = service.metrics
        assert (
            metrics.queries_registered
            - metrics.queries_unregistered
            - metrics.queries_replaced
            == len(service)
            == 1
        )

    def test_replace_key_mid_loop(self, documents):
        q1 = get_query("BIB-Q1").xquery
        q4 = get_query("BIB-Q4").xquery
        service = QueryService(BIB_DTD_STRONG)
        service.register(q1, key="q")
        loop = service.serve(documents[:2])
        first = next(loop)
        assert first.results["q"].output == solo(q1, documents[0])
        service.register(q4, key="q")  # replace under the same key
        second = next(loop)
        assert second.results["q"].output == solo(q4, documents[1])
        metrics = service.metrics
        assert metrics.queries_replaced == 1
        assert (
            metrics.queries_registered
            - metrics.queries_unregistered
            - metrics.queries_replaced
            == len(service)
            == 1
        )

    def test_churn_does_not_affect_open_pass_snapshot(self, documents):
        # A pass snapshots registrations when opened; churn while it runs
        # applies from the next pass on.
        service = QueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")
        shared_pass = service.open_pass()
        service.register(get_query("BIB-Q1").xquery, key="late")
        shared_pass.feed(documents[0])
        results = shared_pass.finish()
        assert set(results) == {"t"}
        assert set(service.run_pass(documents[0])) == {"t", "late"}


class TestOnePassAtATime:
    def test_open_pass_while_in_flight_raises(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()
        assert service.active_pass is shared_pass
        with pytest.raises(PassInProgressError):
            service.open_pass()
        with pytest.raises(PassInProgressError):
            service.run_pass(PAPER_DOCUMENT)
        shared_pass.feed(PAPER_DOCUMENT)
        shared_pass.finish()
        assert service.active_pass is None
        assert service.run_pass(PAPER_DOCUMENT)["q3"].output

    def test_abort_frees_the_slot(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()
        shared_pass.abort()
        assert service.active_pass is None
        assert service.run_pass(PAPER_DOCUMENT)["q3"].output

    def test_context_manager_frees_the_slot(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        with service.open_pass() as shared_pass:
            shared_pass.feed(PAPER_DOCUMENT)
        assert service.active_pass is None

    def test_abandoned_pass_frees_the_slot_via_gc(self):
        import gc

        service = QueryService(PAPER_FIGURE1_DTD, execution="inline")
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()
        shared_pass.feed("<bib>")
        del shared_pass
        gc.collect()
        assert service.active_pass is None
        assert service.run_pass(PAPER_DOCUMENT)["q3"].output

    def test_error_message_names_the_remedy(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()  # held: a dropped pass frees its slot
        with pytest.raises(PassInProgressError, match="finish\\(\\) or abort\\(\\)"):
            service.open_pass()
        shared_pass.abort()
