"""Unit tests for the content-model (Glushkov) automata."""

import pytest

from repro.dtd.automaton import (
    axis_max_count,
    build_automaton,
    recursive_elements,
    subtree_growth_degree,
)
from repro.dtd.model import INFINITY
from repro.dtd.parser import parse_dtd, parse_element_decl


def automaton_for(model):
    return build_automaton(parse_element_decl("x", model))


class TestAcceptance:
    @pytest.mark.parametrize(
        "model,word,accepted",
        [
            ("(a,b)", ["a", "b"], True),
            ("(a,b)", ["b", "a"], False),
            ("(a,b)", ["a"], False),
            ("(a,b)", [], False),
            ("(a|b)", ["a"], True),
            ("(a|b)", ["b"], True),
            ("(a|b)", ["a", "b"], False),
            ("(a)*", [], True),
            ("(a)*", ["a", "a", "a"], True),
            ("(a)*", ["a", "b"], False),
            ("(a)+", [], False),
            ("(a)+", ["a", "a"], True),
            ("(a?)", [], True),
            ("(a?)", ["a"], True),
            ("(a?)", ["a", "a"], False),
            ("(a,(b|c)*,d)", ["a", "d"], True),
            ("(a,(b|c)*,d)", ["a", "b", "c", "b", "d"], True),
            ("(a,(b|c)*,d)", ["a", "b"], False),
            ("((a,b)+)", ["a", "b", "a", "b"], True),
            ("((a,b)+)", ["a", "b", "a"], False),
        ],
    )
    def test_word_acceptance(self, model, word, accepted):
        assert automaton_for(model).accepts(word) is accepted

    def test_figure1_book_model(self):
        automaton = automaton_for("(title,(author+|editor+),publisher,price)")
        assert automaton.accepts(["title", "author", "publisher", "price"])
        assert automaton.accepts(["title", "author", "author", "publisher", "price"])
        assert automaton.accepts(["title", "editor", "publisher", "price"])
        assert not automaton.accepts(["title", "author", "editor", "publisher", "price"])
        assert not automaton.accepts(["author", "title", "publisher", "price"])
        assert not automaton.accepts(["title", "publisher", "price"])

    def test_empty_content_model(self):
        automaton = automaton_for("EMPTY")
        assert automaton.accepts([])
        assert not automaton.accepts(["a"])

    def test_pcdata_model_has_no_element_children(self):
        automaton = automaton_for("(#PCDATA)")
        assert automaton.accepts([])
        assert not automaton.accepts(["a"])

    def test_any_model_accepts_everything(self):
        automaton = automaton_for("ANY")
        assert automaton.allows_any
        assert automaton.accepts([])
        assert automaton.accepts(["x", "y", "z"])


class TestReachableLabels:
    def test_initial_state_reachability(self):
        automaton = automaton_for("(a,(b|c)*,d)")
        assert automaton.reachable_labels(automaton.start_state) == {"a", "b", "c", "d"}

    def test_reachability_shrinks_as_input_is_consumed(self):
        automaton = automaton_for("(a,b,c)")
        state = automaton.start_state
        state = automaton.step(state, "a")
        assert automaton.reachable_labels(state) == {"b", "c"}
        state = automaton.step(state, "b")
        assert automaton.reachable_labels(state) == {"c"}
        state = automaton.step(state, "c")
        assert automaton.reachable_labels(state) == frozenset()

    def test_can_still_occur(self):
        automaton = automaton_for("(title,(author+|editor+),publisher,price)")
        state = automaton.start_state
        state = automaton.step(state, "title")
        assert automaton.can_still_occur(state, frozenset({"author"}))
        state = automaton.step(state, "author")
        # More authors may come, but no editor anymore.
        assert automaton.can_still_occur(state, frozenset({"author"}))
        assert not automaton.can_still_occur(state, frozenset({"editor"}))
        state = automaton.step(state, "publisher")
        assert not automaton.can_still_occur(state, frozenset({"author", "title"}))
        assert automaton.can_still_occur(state, frozenset({"price"}))

    def test_invalid_step_returns_none(self):
        automaton = automaton_for("(a,b)")
        assert automaton.step(automaton.start_state, "z") is None

    def test_weak_dtd_labels_always_reachable(self):
        automaton = automaton_for("(title|author)*")
        state = automaton.start_state
        for label in ["author", "title", "author"]:
            state = automaton.step(state, label)
            assert automaton.reachable_labels(state) == {"title", "author"}


class TestOccurrenceBounds:
    @pytest.mark.parametrize(
        "model,label,bounds",
        [
            ("(title,(author+|editor+),publisher,price)", "title", (1.0, 1.0)),
            ("(title,(author+|editor+),publisher,price)", "author", (0.0, INFINITY)),
            ("(title,(author+|editor+),publisher,price)", "publisher", (1.0, 1.0)),
            ("(a,(b|c)*,d)", "a", (1.0, 1.0)),
            ("(a,(b|c)*,d)", "b", (0.0, INFINITY)),
            ("(a,(b|c)*,d)", "d", (1.0, 1.0)),
            ("(a?)", "a", (0.0, 1.0)),
            ("((a,b)+)", "a", (1.0, INFINITY)),
        ],
    )
    def test_bounds_match_model(self, model, label, bounds):
        assert automaton_for(model).occurrence_bounds()[label] == bounds

    def test_any_model_has_no_enumerable_bounds(self):
        assert automaton_for("ANY").occurrence_bounds() == {}

    def test_mixed_content_children_are_unbounded(self):
        # (#PCDATA | em | code)* — mixed content repeats every child label.
        bounds = automaton_for("(#PCDATA|em|code)*").occurrence_bounds()
        assert bounds["em"] == (0.0, INFINITY)
        assert bounds["code"] == (0.0, INFINITY)


RECURSIVE_DTD = """
<!ELEMENT doc (part+)>
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
"""

MIXED_DTD = """
<!ELEMENT doc (para+)>
<!ELEMENT para (#PCDATA | em | code)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT code (#PCDATA)>
"""


class TestDtdLevelAnalyses:
    def test_recursive_elements_found(self):
        dtd = parse_dtd(RECURSIVE_DTD)
        assert recursive_elements(dtd) == frozenset({"part"})

    def test_any_content_is_conservatively_recursive(self):
        dtd = parse_dtd("<!ELEMENT doc (a*)>\n<!ELEMENT a ANY>")
        assert "a" in recursive_elements(dtd)

    def test_non_recursive_dtd_is_empty(self):
        dtd = parse_dtd(MIXED_DTD)
        assert recursive_elements(dtd) == frozenset()

    def test_axis_max_count(self):
        dtd = parse_dtd(RECURSIVE_DTD)
        assert axis_max_count(dtd, "part", "name") == 1.0
        assert axis_max_count(dtd, "doc", "part") == INFINITY
        assert axis_max_count(dtd, "part", "price") == 0.0
        assert axis_max_count(dtd, "#document", "doc") == 1.0
        # Undeclared parents behave like ANY: no bound.
        assert axis_max_count(dtd, "mystery", "name") == INFINITY

    def test_subtree_growth_degree_recursive_is_unbounded(self):
        dtd = parse_dtd(RECURSIVE_DTD)
        assert subtree_growth_degree(dtd, "part") == INFINITY
        assert subtree_growth_degree(dtd, "doc") == INFINITY
        assert subtree_growth_degree(dtd, "name") == 0.0

    def test_subtree_growth_degree_counts_nested_stars(self):
        dtd = parse_dtd(
            "<!ELEMENT bib (book*)>\n"
            "<!ELEMENT book (title, author*)>\n"
            "<!ELEMENT title (#PCDATA)>\n"
            "<!ELEMENT author (#PCDATA)>"
        )
        assert subtree_growth_degree(dtd, "author") == 0.0
        assert subtree_growth_degree(dtd, "book") == 1.0
        assert subtree_growth_degree(dtd, "bib") == 2.0
        assert subtree_growth_degree(dtd, "#document") == 2.0

    def test_mixed_content_subtree_is_one_level_unbounded(self):
        dtd = parse_dtd(MIXED_DTD)
        assert subtree_growth_degree(dtd, "para") == 1.0
