"""Unit tests for the content-model (Glushkov) automata."""

import pytest

from repro.dtd.automaton import build_automaton
from repro.dtd.parser import parse_element_decl


def automaton_for(model):
    return build_automaton(parse_element_decl("x", model))


class TestAcceptance:
    @pytest.mark.parametrize(
        "model,word,accepted",
        [
            ("(a,b)", ["a", "b"], True),
            ("(a,b)", ["b", "a"], False),
            ("(a,b)", ["a"], False),
            ("(a,b)", [], False),
            ("(a|b)", ["a"], True),
            ("(a|b)", ["b"], True),
            ("(a|b)", ["a", "b"], False),
            ("(a)*", [], True),
            ("(a)*", ["a", "a", "a"], True),
            ("(a)*", ["a", "b"], False),
            ("(a)+", [], False),
            ("(a)+", ["a", "a"], True),
            ("(a?)", [], True),
            ("(a?)", ["a"], True),
            ("(a?)", ["a", "a"], False),
            ("(a,(b|c)*,d)", ["a", "d"], True),
            ("(a,(b|c)*,d)", ["a", "b", "c", "b", "d"], True),
            ("(a,(b|c)*,d)", ["a", "b"], False),
            ("((a,b)+)", ["a", "b", "a", "b"], True),
            ("((a,b)+)", ["a", "b", "a"], False),
        ],
    )
    def test_word_acceptance(self, model, word, accepted):
        assert automaton_for(model).accepts(word) is accepted

    def test_figure1_book_model(self):
        automaton = automaton_for("(title,(author+|editor+),publisher,price)")
        assert automaton.accepts(["title", "author", "publisher", "price"])
        assert automaton.accepts(["title", "author", "author", "publisher", "price"])
        assert automaton.accepts(["title", "editor", "publisher", "price"])
        assert not automaton.accepts(["title", "author", "editor", "publisher", "price"])
        assert not automaton.accepts(["author", "title", "publisher", "price"])
        assert not automaton.accepts(["title", "publisher", "price"])

    def test_empty_content_model(self):
        automaton = automaton_for("EMPTY")
        assert automaton.accepts([])
        assert not automaton.accepts(["a"])

    def test_pcdata_model_has_no_element_children(self):
        automaton = automaton_for("(#PCDATA)")
        assert automaton.accepts([])
        assert not automaton.accepts(["a"])

    def test_any_model_accepts_everything(self):
        automaton = automaton_for("ANY")
        assert automaton.allows_any
        assert automaton.accepts([])
        assert automaton.accepts(["x", "y", "z"])


class TestReachableLabels:
    def test_initial_state_reachability(self):
        automaton = automaton_for("(a,(b|c)*,d)")
        assert automaton.reachable_labels(automaton.start_state) == {"a", "b", "c", "d"}

    def test_reachability_shrinks_as_input_is_consumed(self):
        automaton = automaton_for("(a,b,c)")
        state = automaton.start_state
        state = automaton.step(state, "a")
        assert automaton.reachable_labels(state) == {"b", "c"}
        state = automaton.step(state, "b")
        assert automaton.reachable_labels(state) == {"c"}
        state = automaton.step(state, "c")
        assert automaton.reachable_labels(state) == frozenset()

    def test_can_still_occur(self):
        automaton = automaton_for("(title,(author+|editor+),publisher,price)")
        state = automaton.start_state
        state = automaton.step(state, "title")
        assert automaton.can_still_occur(state, frozenset({"author"}))
        state = automaton.step(state, "author")
        # More authors may come, but no editor anymore.
        assert automaton.can_still_occur(state, frozenset({"author"}))
        assert not automaton.can_still_occur(state, frozenset({"editor"}))
        state = automaton.step(state, "publisher")
        assert not automaton.can_still_occur(state, frozenset({"author", "title"}))
        assert automaton.can_still_occur(state, frozenset({"price"}))

    def test_invalid_step_returns_none(self):
        automaton = automaton_for("(a,b)")
        assert automaton.step(automaton.start_state, "z") is None

    def test_weak_dtd_labels_always_reachable(self):
        automaton = automaton_for("(title|author)*")
        state = automaton.start_state
        for label in ["author", "title", "author"]:
            state = automaton.step(state, label)
            assert automaton.reachable_labels(state) == {"title", "author"}
