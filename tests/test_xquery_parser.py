"""Unit tests for the XQuery parser."""

import pytest

from repro.errors import UnsupportedFeatureError, XQuerySyntaxError
from repro.xquery.ast import (
    AndExpr,
    AttributeStep,
    ChildStep,
    Comparison,
    DescendantStep,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    Literal,
    NotExpr,
    OrExpr,
    PathExpr,
    SequenceExpr,
    TextStep,
    VarRef,
)
from repro.xquery.parser import parse_xquery


class TestPaths:
    def test_simple_variable(self):
        assert parse_xquery("$x") == VarRef("x")

    def test_child_path(self):
        expr = parse_xquery("$b/title")
        assert expr == PathExpr("b", (ChildStep("title"),))

    def test_multi_step_path(self):
        expr = parse_xquery("$ROOT/bib/book/title")
        assert [s.name for s in expr.steps] == ["bib", "book", "title"]

    def test_attribute_step(self):
        expr = parse_xquery("$b/@year")
        assert expr.steps == (AttributeStep("year"),)

    def test_text_step(self):
        expr = parse_xquery("$b/title/text()")
        assert expr.steps[-1] == TextStep()

    def test_descendant_step(self):
        expr = parse_xquery("$b//author")
        assert expr.steps == (DescendantStep("author"),)

    def test_wildcard_step(self):
        expr = parse_xquery("$b/*")
        assert expr.steps == (ChildStep("*"),)

    def test_absolute_path_uses_document_variable(self):
        expr = parse_xquery("/bib/book")
        assert expr.var == "ROOT"
        assert [s.name for s in expr.steps] == ["bib", "book"]

    def test_doc_function_is_document_variable(self):
        expr = parse_xquery('doc("bib.xml")/bib')
        assert isinstance(expr, PathExpr)
        assert expr.var == "ROOT"


class TestFLWR:
    def test_simple_for(self):
        expr = parse_xquery("for $b in $ROOT/bib/book return $b/title")
        assert isinstance(expr, ForExpr)
        assert expr.var == "b"
        assert expr.where is None
        assert isinstance(expr.body, PathExpr)

    def test_for_with_where(self):
        expr = parse_xquery("for $b in $ROOT/bib/book where $b/price > 50 return $b/title")
        assert isinstance(expr.where, Comparison)
        assert expr.where.op == ">"

    def test_multiple_for_bindings_nest(self):
        expr = parse_xquery("for $a in $x/p, $b in $a/q return $b")
        assert isinstance(expr, ForExpr)
        assert isinstance(expr.body, ForExpr)
        assert expr.var == "a"
        assert expr.body.var == "b"

    def test_where_attaches_to_innermost_binding(self):
        expr = parse_xquery("for $a in $x/p, $b in $a/q where $b = $a return $b")
        assert expr.where is None
        assert expr.body.where is not None

    def test_let_binding(self):
        expr = parse_xquery("let $t := $b/title return <x>{ $t }</x>")
        assert isinstance(expr, LetExpr)
        assert expr.var == "t"

    def test_nested_for_in_return(self):
        expr = parse_xquery(
            "for $b in $x/book return for $a in $b/author return $a"
        )
        assert isinstance(expr.body, ForExpr)


class TestConditionsAndOperators:
    def test_if_then_else(self):
        expr = parse_xquery('if ($x/a = "1") then $x/b else ()')
        assert isinstance(expr, IfExpr)
        assert isinstance(expr.else_branch, EmptySequence)

    def test_and_or_precedence(self):
        expr = parse_xquery("$x/a = 1 and $x/b = 2 or $x/c = 3")
        assert isinstance(expr, OrExpr)
        assert isinstance(expr.operands[0], AndExpr)

    @pytest.mark.parametrize(
        "query,op",
        [
            ("$x/a = 1", "="),
            ("$x/a != 1", "!="),
            ("$x/a < 1", "<"),
            ("$x/a <= 1", "<="),
            ("$x/a > 1", ">"),
            ("$x/a >= 1", ">="),
            ("$x/a eq 1", "="),
            ("$x/a lt 1", "<"),
            ("$x/a ge 1", ">="),
        ],
    )
    def test_comparison_operators(self, query, op):
        expr = parse_xquery(query)
        assert isinstance(expr, Comparison)
        assert expr.op == op

    def test_not_function(self):
        expr = parse_xquery("not($x/a)")
        assert isinstance(expr, NotExpr)

    def test_exists_function(self):
        expr = parse_xquery("exists($x/editor)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "exists"

    def test_string_literals_with_escaped_quote(self):
        expr = parse_xquery('"say ""hi"""')
        assert expr == Literal('say "hi"')

    def test_numeric_literals(self):
        assert parse_xquery("1991") == Literal(1991)
        assert parse_xquery("3.14") == Literal(3.14)

    def test_comments_are_skipped(self):
        expr = parse_xquery("(: comment :) $x (: another :)")
        assert expr == VarRef("x")


class TestConstructors:
    def test_empty_element(self):
        expr = parse_xquery("<a/>")
        assert expr == ElementConstructor("a", (), EmptySequence())

    def test_element_with_literal_attributes(self):
        expr = parse_xquery('<a x="1" y="two"/>')
        assert expr.attributes == (("x", "1"), ("y", "two"))

    def test_element_with_text_content(self):
        expr = parse_xquery("<a>hello</a>")
        assert expr.content == Literal("hello")

    def test_element_with_enclosed_expression(self):
        expr = parse_xquery("<a>{ $x/b }</a>")
        assert isinstance(expr.content, PathExpr)

    def test_nested_constructors(self):
        expr = parse_xquery("<a><b>{ $x }</b><c/></a>")
        assert isinstance(expr.content, SequenceExpr)
        assert all(isinstance(item, ElementConstructor) for item in expr.content.items)

    def test_mixed_text_and_expressions(self):
        expr = parse_xquery("<a>count: { $x/n } items</a>")
        items = expr.content.items
        assert isinstance(items[0], Literal)
        assert isinstance(items[1], PathExpr)
        assert isinstance(items[2], Literal)

    def test_paper_q3_parses(self, paper_q3):
        expr = parse_xquery(paper_q3)
        assert isinstance(expr, ElementConstructor)
        assert expr.name == "results"
        assert isinstance(expr.content, ForExpr)

    def test_mismatched_closing_tag_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("<a>text</b>")

    def test_computed_attribute_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_xquery('<a x="{ $y }"/>')


class TestSequencesAndErrors:
    def test_parenthesized_sequence(self):
        expr = parse_xquery("($x, $y, $z)")
        assert isinstance(expr, SequenceExpr)
        assert len(expr.items) == 3

    def test_empty_sequence(self):
        assert parse_xquery("()") == EmptySequence()

    def test_braced_expression_tolerated(self):
        assert parse_xquery("{ $x }") == VarRef("x")

    def test_aggregation_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_xquery("count($x/book)")

    def test_unknown_function_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_xquery("frobnicate($x)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("$x extra")

    def test_bare_name_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("title")

    def test_unterminated_string_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery('"unterminated')

    def test_error_reports_position(self):
        try:
            parse_xquery("for $x in $y return @@")
        except XQuerySyntaxError as error:
            assert error.position > 0
        else:  # pragma: no cover
            pytest.fail("expected XQuerySyntaxError")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "query",
        [
            "for $b in $ROOT/bib/book return <result>{ $b/title }</result>",
            'if ($x/a = "v") then <y/> else ()',
            "for $a in $x/p return for $b in $a/q return ($a, $b)",
            "<out>{ for $i in $ROOT/site/regions/item return <item>{ $i/name }</item> }</out>",
        ],
    )
    def test_to_xquery_reparses_to_equal_ast(self, query):
        first = parse_xquery(query)
        second = parse_xquery(first.to_xquery())
        assert first == second
