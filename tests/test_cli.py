"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import main
from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3


@pytest.fixture
def files(tmp_path):
    query = tmp_path / "query.xq"
    query.write_text(PAPER_Q3)
    document = tmp_path / "document.xml"
    document.write_text(PAPER_DOCUMENT)
    dtd = tmp_path / "schema.dtd"
    dtd.write_text(PAPER_FIGURE1_DTD)
    return {"query": str(query), "document": str(document), "dtd": str(dtd), "dir": tmp_path}


class TestRunCommand:
    def test_run_writes_result_to_stdout(self, files, capsys):
        exit_code = main(["run", "--query", files["query"], "--input", files["document"],
                          "--dtd", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.startswith("<results>")
        assert "peak buffer: 0 B" in captured.err

    def test_run_writes_result_to_file(self, files, capsys):
        output = files["dir"] / "out.xml"
        exit_code = main(["run", "-q", files["query"], "-i", files["document"],
                          "-d", files["dtd"], "-o", str(output)])
        assert exit_code == 0
        assert output.read_text().startswith("<results>")

    def test_run_without_dtd(self, files, capsys):
        exit_code = main(["run", "-q", files["query"], "-i", files["document"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.startswith("<results>")

    def test_run_uses_embedded_doctype(self, files, capsys):
        document = files["dir"] / "with_doctype.xml"
        document.write_text(f"<!DOCTYPE bib [{PAPER_FIGURE1_DTD}]>\n{PAPER_DOCUMENT}")
        exit_code = main(["run", "-q", files["query"], "-i", str(document)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "peak buffer: 0 B" in captured.err


class TestExplainCommand:
    def test_explain_prints_flux_and_bdf(self, files, capsys):
        exit_code = main(["explain", "-q", files["query"], "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "process-stream" in captured.out
        assert "Buffer description forest" in captured.out
        assert "safe" in captured.out


class TestCompareCommand:
    def test_compare_prints_tables(self, files, capsys):
        exit_code = main(["compare", "-q", files["query"], "-i", files["document"],
                          "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "peak buffer memory" in captured.out
        assert "flux" in captured.out and "dom" in captured.out


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_option_errors(self, files):
        with pytest.raises(SystemExit):
            main(["run", "--nope", files["query"]])
