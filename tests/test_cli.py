"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import main
from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3


@pytest.fixture
def files(tmp_path):
    query = tmp_path / "query.xq"
    query.write_text(PAPER_Q3)
    document = tmp_path / "document.xml"
    document.write_text(PAPER_DOCUMENT)
    dtd = tmp_path / "schema.dtd"
    dtd.write_text(PAPER_FIGURE1_DTD)
    return {"query": str(query), "document": str(document), "dtd": str(dtd), "dir": tmp_path}


class TestRunCommand:
    def test_run_writes_result_to_stdout(self, files, capsys):
        exit_code = main(["run", "--query", files["query"], "--input", files["document"],
                          "--dtd", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.startswith("<results>")
        assert "peak buffer: 0 B" in captured.err

    def test_run_writes_result_to_file(self, files, capsys):
        output = files["dir"] / "out.xml"
        exit_code = main(["run", "-q", files["query"], "-i", files["document"],
                          "-d", files["dtd"], "-o", str(output)])
        assert exit_code == 0
        assert output.read_text().startswith("<results>")

    def test_run_without_dtd(self, files, capsys):
        exit_code = main(["run", "-q", files["query"], "-i", files["document"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.startswith("<results>")

    def test_run_uses_embedded_doctype(self, files, capsys):
        document = files["dir"] / "with_doctype.xml"
        document.write_text(f"<!DOCTYPE bib [{PAPER_FIGURE1_DTD}]>\n{PAPER_DOCUMENT}")
        exit_code = main(["run", "-q", files["query"], "-i", str(document)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "peak buffer: 0 B" in captured.err


class TestExplainCommand:
    def test_explain_prints_flux_and_bdf(self, files, capsys):
        exit_code = main(["explain", "-q", files["query"], "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "process-stream" in captured.out
        assert "Buffer description forest" in captured.out
        assert "safe" in captured.out


class TestOutputConsistency:
    def test_file_and_stdout_results_are_identical(self, files, capsys):
        """--output files carry the same trailing newline as stdout."""
        output = files["dir"] / "out.xml"
        main(["run", "-q", files["query"], "-i", files["document"],
              "-d", files["dtd"], "-o", str(output)])
        main(["run", "-q", files["query"], "-i", files["document"],
              "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert output.read_text() == captured.out
        assert captured.out.endswith("\n")


class TestMultiCommand:
    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        (queries / "titles.xq").write_text(
            "<titles>{ for $b in $ROOT/bib/book return $b/title }</titles>"
        )
        (queries / "notes.txt").write_text("not a query")
        return queries

    def test_multi_runs_all_queries_in_one_pass(self, files, query_dir, capsys):
        exit_code = main(["multi", "--queries", str(query_dir),
                          "-i", files["document"], "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "<!-- q3 -->" in captured.out
        assert "<!-- titles -->" in captured.out
        assert "<titles>" in captured.out
        assert "[shared pass] 2 queries" in captured.err
        assert "saved vs. solo runs" in captured.err

    def test_multi_matches_solo_run(self, files, query_dir, capsys):
        outdir = files["dir"] / "results"
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "-O", str(outdir)])
        assert exit_code == 0
        main(["run", "-q", files["query"], "-i", files["document"],
              "-d", files["dtd"]])
        solo_stdout = capsys.readouterr().out
        assert (outdir / "q3.xml").read_text() == solo_stdout

    def test_multi_writes_json_metrics(self, files, query_dir, capsys):
        import json

        json_path = files["dir"] / "metrics.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "-j", str(json_path)])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert payload["last_pass"]["queries"] == 2
        assert payload["plan_cache"]["misses"] == 2
        assert set(payload["results"]) == {"q3", "titles"}

    def test_multi_without_queries_errors(self, files, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        exit_code = main(["multi", "-Q", str(empty), "-i", files["document"]])
        assert exit_code == 2
        assert "no *.xq files" in capsys.readouterr().err

    def test_multi_with_blank_query_file_errors(self, files, query_dir, capsys):
        # A blank *.xq must exit with a clear message naming the file, not
        # open a pass (or dump a parser traceback).
        (query_dir / "blank.xq").write_text("   \n")
        exit_code = main(["multi", "-Q", str(query_dir),
                          "-i", files["document"], "-d", files["dtd"]])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "blank.xq" in err and "empty" in err

    def test_multi_requires_exactly_one_document_source(self, files, query_dir, capsys):
        assert main(["multi", "-Q", str(query_dir)]) == 2
        assert "exactly one of --input or --documents" in capsys.readouterr().err
        assert main(["multi", "-Q", str(query_dir), "-i", files["document"],
                     "-D", files["document"]]) == 2


class TestMultiServeLoop:
    """`multi --documents`: the serving loop in one process."""

    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        return queries

    @pytest.fixture
    def documents(self, files):
        paths = []
        for index in range(3):
            path = files["dir"] / f"doc{index}.xml"
            path.write_text(
                "<bib><book><title>T%d</title><author>A</author>"
                "<publisher>P</publisher><price>%d.00</price></book></bib>"
                % (index, index)
            )
            paths.append(str(path))
        return paths

    @pytest.mark.parametrize("execution", ["threads", "inline", "async"])
    def test_documents_serve_loop_all_modes(
        self, files, query_dir, documents, execution, capsys
    ):
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "--execution", execution])
        captured = capsys.readouterr()
        assert exit_code == 0
        for index in range(3):
            assert f"<!-- doc{index}/q3 -->" in captured.out
            assert f"T{index}" in captured.out
        assert "[serve] 3 documents" in captured.err

    def test_documents_output_dir_is_per_document(self, files, query_dir, documents):
        outdir = files["dir"] / "served"
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-O", str(outdir)])
        assert exit_code == 0
        for index in range(3):
            assert (outdir / f"doc{index}" / "q3.xml").exists()

    def test_documents_json_has_per_pass_metrics(self, files, query_dir, documents):
        import json

        json_path = files["dir"] / "serve.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-x", "async", "-j", str(json_path)])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert payload["execution"] == "async"
        assert payload["passes_completed"] == 3
        assert [entry["label"] for entry in payload["documents"]] == [
            "doc0", "doc1", "doc2"
        ]
        assert set(payload["results"]) == {f"doc{i}/q3" for i in range(3)}

    def test_single_document_loop_keeps_flat_output(self, files, query_dir, capsys):
        # --documents with one path behaves like --input: no label prefixes.
        exit_code = main(["multi", "-Q", str(query_dir),
                          "-D", files["document"], "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "<!-- q3 -->" in captured.out
        assert "[serve]" not in captured.err


class TestMultiPool:
    """`multi --workers N`: the fault-isolated service pool."""

    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        return queries

    @pytest.fixture
    def documents(self, files):
        paths = []
        for index in range(4):
            path = files["dir"] / f"doc{index}.xml"
            path.write_text(
                "<bib><book><title>T%d</title><author>A</author>"
                "<publisher>P</publisher><price>%d.00</price></book></bib>"
                % (index, index)
            )
            paths.append(str(path))
        return paths

    @pytest.mark.parametrize("execution", ["threads", "inline", "async"])
    def test_pool_serves_all_documents(
        self, files, query_dir, documents, execution, capsys
    ):
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "--workers", "2",
                          "--execution", execution])
        captured = capsys.readouterr()
        assert exit_code == 0
        for index in range(4):
            assert f"<!-- doc{index}/q3 -->" in captured.out
            assert f"T{index}" in captured.out
        assert "[pool] 2 workers" in captured.err
        assert "4 documents (0 failed)" in captured.err

    def test_pool_isolates_a_failing_document(
        self, files, query_dir, documents, capsys
    ):
        bad = files["dir"] / "broken.xml"
        bad.write_text("<bib><book>")
        stream = documents[:2] + [str(bad)] + documents[2:]
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *stream,
                          "-d", files["dtd"], "--workers", "2"])
        captured = capsys.readouterr()
        assert exit_code == 1  # a failed document makes the exit nonzero
        for index in range(4):
            assert f"T{index}" in captured.out  # every good document served
        assert "[broken] ERROR: XMLSyntaxError" in captured.err
        assert "(1 failed)" in captured.err

    def test_pool_json_tags_outcome_and_worker(
        self, files, query_dir, documents
    ):
        import json

        bad = files["dir"] / "broken.xml"
        bad.write_text("<bib><book>")
        json_path = files["dir"] / "pool.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-D",
                          documents[0], str(bad), documents[1],
                          "-d", files["dtd"], "--workers", "2",
                          "-j", str(json_path)])
        assert exit_code == 1
        payload = json.loads(json_path.read_text())
        assert payload["workers"] == 2
        assert payload["documents_failed"] == 1
        by_label = {entry["label"]: entry for entry in payload["documents"]}
        assert by_label["broken"]["outcome"] == "error"
        assert by_label["broken"]["error"]  # the exception's message
        assert by_label["doc0"]["outcome"] == "ok"
        assert by_label["doc0"]["error"] is None
        assert by_label["doc0"]["worker"] in (0, 1)
        # Failed documents contribute no results.
        assert set(payload["results"]) == {"doc0/q3", "doc1/q3"}
        # The shared cache compiled the fleet's one query exactly once.
        assert payload["plan_cache"]["misses"] == 1

    def test_explicit_workers_one_is_still_a_pool(
        self, files, query_dir, documents, capsys
    ):
        # --workers 1 buys fault isolation (a pool of one), unlike the
        # default all-or-nothing serve loop.
        bad = files["dir"] / "broken.xml"
        bad.write_text("<bib><book>")
        exit_code = main(["multi", "-Q", str(query_dir), "-D",
                          documents[0], str(bad), documents[1],
                          "-d", files["dtd"], "--workers", "1"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "[broken] ERROR: XMLSyntaxError" in captured.err
        assert "T0" in captured.out and "T1" in captured.out
        assert "[pool] 1 workers" in captured.err

    def test_workers_must_be_positive(self, files, query_dir, capsys):
        exit_code = main(["multi", "-Q", str(query_dir),
                          "-i", files["document"], "--workers", "0"])
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err


class TestMultiProcessBackend:
    """`multi --backend processes`: the multi-process pool from the CLI."""

    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        return queries

    @pytest.fixture
    def documents(self, files):
        paths = []
        for index in range(3):
            path = files["dir"] / f"doc{index}.xml"
            path.write_text(
                "<bib><book><title>T%d</title><author>A</author>"
                "<publisher>P</publisher><price>%d.00</price></book></bib>"
                % (index, index)
            )
            paths.append(str(path))
        return paths

    def test_process_backend_serves_and_reports_shipping(
        self, files, query_dir, documents, capsys
    ):
        import json

        json_path = files["dir"] / "processes.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "--workers", "2",
                          "--backend", "processes", "-j", str(json_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        for index in range(3):
            assert f"<!-- doc{index}/q3 -->" in captured.out
            assert f"T{index}" in captured.out
        assert "[pool] 2 workers (processes)" in captured.err
        assert "plans shipped" in captured.err
        payload = json.loads(json_path.read_text())
        assert payload["backend"] == "processes"
        # Compile-once across the process boundary: one parent miss, one
        # artifact shipped per (worker, query).
        assert payload["plan_cache"]["misses"] == 1
        assert payload["ship_count"] == 2
        assert payload["ship_bytes"] > 0

    def test_process_backend_isolates_a_failing_document(
        self, files, query_dir, documents, capsys
    ):
        bad = files["dir"] / "broken.xml"
        bad.write_text("<bib><book>")
        exit_code = main(["multi", "-Q", str(query_dir), "-D",
                          documents[0], str(bad), documents[1],
                          "-d", files["dtd"], "--workers", "2",
                          "--backend", "processes"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "[broken] ERROR: XMLSyntaxError" in captured.err
        assert "T0" in captured.out and "T1" in captured.out

    def test_process_backend_defaults_to_inline_workers(
        self, files, query_dir, documents
    ):
        import json

        # Unset --execution resolves per backend: "inline" inside process
        # workers (per-query threads there only add handoff cost).
        json_path = files["dir"] / "exec.json"
        assert main(["multi", "-Q", str(query_dir), "-D", *documents,
                     "-d", files["dtd"], "--workers", "2",
                     "--backend", "processes", "-j", str(json_path)]) == 0
        assert json.loads(json_path.read_text())["execution"] == "inline"
        json_path2 = files["dir"] / "exec2.json"
        assert main(["multi", "-Q", str(query_dir), "-D", *documents,
                     "-d", files["dtd"], "-j", str(json_path2)]) == 0
        assert json.loads(json_path2.read_text())["execution"] == "threads"

    def test_process_backend_requires_workers(self, files, query_dir, capsys):
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "--backend", "processes"])
        assert exit_code == 2
        assert "--backend processes requires --workers" in capsys.readouterr().err

    def test_process_backend_rejects_async_execution(
        self, files, query_dir, capsys
    ):
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "--backend", "processes",
                          "--workers", "2", "--execution", "async"])
        assert exit_code == 2
        assert "async" in capsys.readouterr().err


class TestMultiPlanCacheFile:
    """`multi --plan-cache-file`: warm-start persistence."""

    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        return queries

    def test_second_run_compiles_nothing(self, files, query_dir, capsys):
        import json

        cache_file = files["dir"] / "plans.bin"
        json_path = files["dir"] / "first.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"],
                          "--plan-cache-file", str(cache_file),
                          "-j", str(json_path)])
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "snapshot saved: 1 plans" in err
        assert json.loads(json_path.read_text())["plan_cache"]["misses"] == 1
        assert cache_file.exists()

        json_path2 = files["dir"] / "second.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"],
                          "--plan-cache-file", str(cache_file),
                          "-j", str(json_path2)])
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "warm start: 1 plans loaded" in err
        payload = json.loads(json_path2.read_text())
        assert payload["plan_cache"]["misses"] == 0
        assert payload["plan_cache"]["preloaded"] == 1
        assert payload["plan_cache"]["hits"] == 1

    def test_warm_start_works_with_the_process_backend(
        self, files, query_dir, capsys
    ):
        import json

        cache_file = files["dir"] / "plans.bin"
        assert main(["multi", "-Q", str(query_dir), "-i", files["document"],
                     "-d", files["dtd"],
                     "--plan-cache-file", str(cache_file)]) == 0
        capsys.readouterr()
        json_path = files["dir"] / "processes.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "--workers", "2",
                          "--backend", "processes",
                          "--plan-cache-file", str(cache_file),
                          "-j", str(json_path)])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        # The process pool compiled nothing: its plans came from the
        # snapshot and were shipped to the workers from there.
        assert payload["plan_cache"]["misses"] == 0
        assert payload["ship_count"] == 2

    def test_corrupt_cache_file_is_a_clean_error(self, files, query_dir, capsys):
        cache_file = files["dir"] / "plans.bin"
        cache_file.write_bytes(b"garbage")
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"],
                          "--plan-cache-file", str(cache_file)])
        assert exit_code == 2
        assert "snapshot" in capsys.readouterr().err


class TestObservabilityFlags:
    """`multi --metrics-out/--trace-out/--log-json/--profile` and `stats`."""

    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        return queries

    @pytest.fixture
    def documents(self, files):
        paths = []
        for index in range(2):
            path = files["dir"] / f"doc{index}.xml"
            path.write_text(
                "<bib><book><title>T%d</title><author>A</author>"
                "<publisher>P</publisher><price>%d.00</price></book></bib>"
                % (index, index)
            )
            paths.append(str(path))
        return paths

    def test_metrics_out_writes_json_and_prometheus(
        self, files, query_dir, documents, capsys
    ):
        import json as json_module

        from repro.obs.validate import validate_prometheus_text

        metrics = files["dir"] / "metrics.json"
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-O", str(files["dir"] / "out"),
                          "--metrics-out", str(metrics)])
        assert exit_code == 0
        snapshot = json_module.loads(metrics.read_text())
        assert snapshot["repro_passes_total"]["values"][0]["value"] == 2
        assert "repro_stage_duration_seconds" in snapshot
        assert "repro_plan_cache_misses" in snapshot
        assert "repro_service_passes_completed" in snapshot
        prom = (files["dir"] / "metrics.json.prom").read_text()
        assert validate_prometheus_text(prom) == []
        assert "# TYPE repro_passes_total counter" in prom

    def test_trace_out_writes_one_trace_per_document(
        self, files, query_dir, documents, capsys
    ):
        import json as json_module

        from repro.obs.validate import TRACE_KEYS, validate_json_lines

        trace = files["dir"] / "trace.jsonl"
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-O", str(files["dir"] / "out"),
                          "--trace-out", str(trace)])
        assert exit_code == 0
        lines = trace.read_text().splitlines()
        assert validate_json_lines(lines, TRACE_KEYS) == []
        spans = [json_module.loads(line) for line in lines]
        assert len({span["trace_id"] for span in spans}) == 2
        assert {span["name"] for span in spans} >= {"pass", "pass.route"}

    def test_log_json_file_and_stderr(self, files, query_dir, documents, capsys):
        from repro.obs.validate import LOG_KEYS, validate_json_lines

        events = files["dir"] / "events.jsonl"
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-O", str(files["dir"] / "out"),
                          "--log-json", str(events)])
        assert exit_code == 0
        lines = events.read_text().splitlines()
        assert validate_json_lines(lines, LOG_KEYS) == []
        capsys.readouterr()
        # Bare --log-json goes to stderr instead.
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-O", str(files["dir"] / "out"),
                          "--log-json"])
        assert exit_code == 0
        assert '"event": "pass.finish"' in capsys.readouterr().err

    def test_profile_prints_per_stage_report(
        self, files, query_dir, documents, capsys
    ):
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-O", str(files["dir"] / "out"),
                          "--profile"])
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "per-stage profile (2 pass(es) profiled)" in err
        assert "parse" in err

    def test_obs_flags_work_with_the_pool_backends(
        self, files, query_dir, documents, capsys
    ):
        import json as json_module

        metrics = files["dir"] / "pool_metrics.json"
        trace = files["dir"] / "pool_trace.jsonl"
        exit_code = main(["multi", "-Q", str(query_dir), "-D", *documents,
                          "-d", files["dtd"], "-O", str(files["dir"] / "out"),
                          "-w", "2", "--metrics-out", str(metrics),
                          "--trace-out", str(trace)])
        assert exit_code == 0
        snapshot = json_module.loads(metrics.read_text())
        assert "repro_pool_documents_served" in snapshot
        spans = [json_module.loads(l) for l in trace.read_text().splitlines()]
        assert "pool.shard" in {span["name"] for span in spans}

    def test_stats_pretty_prints_a_snapshot(
        self, files, query_dir, documents, capsys
    ):
        metrics = files["dir"] / "metrics.json"
        main(["multi", "-Q", str(query_dir), "-D", *documents,
              "-d", files["dtd"], "-O", str(files["dir"] / "out"),
              "--metrics-out", str(metrics)])
        capsys.readouterr()
        exit_code = main(["stats", str(metrics)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "repro_passes_total (counter)" in captured.out
        assert "p50=" in captured.out

    def test_stats_rejects_non_snapshot_files(self, files, capsys):
        bogus = files["dir"] / "bogus.json"
        bogus.write_text("not json at all")
        assert main(["stats", str(bogus)]) == 2
        assert "not a metrics snapshot" in capsys.readouterr().err

    def test_explain_prints_optimizer_timings(self, files, capsys):
        exit_code = main(["explain", "-q", files["query"], "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "== Optimizer timings ==" in captured.out
        for stage in ("parse", "normalize", "optimize", "schedule", "safety", "total"):
            assert stage in captured.out


class TestCompareCommand:
    def test_compare_prints_tables(self, files, capsys):
        exit_code = main(["compare", "-q", files["query"], "-i", files["document"],
                          "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "peak buffer memory" in captured.out
        assert "flux" in captured.out and "dom" in captured.out


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_option_errors(self, files):
        with pytest.raises(SystemExit):
            main(["run", "--nope", files["query"]])


class TestExplainAnalyzer:
    """The static-analyzer sections of the rewritten explain report."""

    def test_explain_prints_analyzer_sections(self, files, capsys):
        exit_code = main(["explain", "-q", files["query"], "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 0
        for section in ("== Plan DAG ==", "== Buffer bounds ==", "== Static cost ==",
                        "== Execution mode =="):
            assert section in captured.out
        assert "predicted score" in captured.out
        assert "chosen: execution=" in captured.out
        # Timings close the report so the analysis reads first.
        assert captured.out.rstrip().rindex("== Optimizer timings ==") > captured.out.index(
            "== Execution mode =="
        )

    def test_explain_prints_buffer_class_for_buffered_handlers(self, files, capsys):
        from tests.conftest import PAPER_WEAK_DTD

        weak = files["dir"] / "weak.dtd"
        weak.write_text(PAPER_WEAK_DTD)
        exit_code = main(["explain", "-q", files["query"], "-d", str(weak)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "FANOUT" in captured.out
        assert "on-first past(" in captured.out
        assert "== Buffering decisions ==" in captured.out

    def test_explain_missing_query_file_is_exit_2(self, files, capsys):
        exit_code = main(["explain", "-q", str(files["dir"] / "missing.xq"),
                          "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("explain: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert captured.out == ""

    def test_explain_parse_failure_is_exit_2(self, files, capsys):
        bad = files["dir"] / "bad.xq"
        bad.write_text("for $x in ((( return")
        exit_code = main(["explain", "-q", str(bad), "-d", files["dtd"]])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("explain: ")
        assert len(captured.err.strip().splitlines()) == 1

    def test_explain_reads_observations_from_plan_cache_file(self, files, query_dir, capsys):
        cache_file = files["dir"] / "plans.bin"
        assert main(["multi", "-Q", str(query_dir), "-i", files["document"],
                     "-d", files["dtd"], "-p", str(cache_file)]) == 0
        capsys.readouterr()
        exit_code = main(["explain", "-q", files["query"], "-d", files["dtd"],
                          "-p", str(cache_file)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "calibrated from 1 observed pass(es)" in captured.out

    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        return queries


class TestMultiAutoMode:
    @pytest.fixture
    def query_dir(self, files):
        queries = files["dir"] / "queries"
        queries.mkdir()
        (queries / "q3.xq").write_text(PAPER_Q3)
        return queries

    def test_execution_auto_resolves_and_reports(self, files, query_dir, capsys):
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "--execution", "auto",
                          "--backend", "auto"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[auto] execution=" in captured.err
        assert "[auto]   - " in captured.err
        assert "<!-- q3 -->" in captured.out

    def test_auto_single_document_stays_unpooled(self, files, query_dir, capsys):
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "-x", "auto", "-b", "auto"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "workers=none" in captured.err
        assert "[shared pass]" in captured.err

    def test_explicit_workers_survive_auto(self, files, query_dir, capsys):
        exit_code = main(["multi", "-Q", str(query_dir), "-i", files["document"],
                          "-d", files["dtd"], "-x", "auto", "-w", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[auto]" in captured.err

    def test_auto_output_matches_manual(self, files, query_dir, capsys):
        assert main(["multi", "-Q", str(query_dir), "-i", files["document"],
                     "-d", files["dtd"], "-x", "auto", "-b", "auto"]) == 0
        auto_out = capsys.readouterr().out
        assert main(["multi", "-Q", str(query_dir), "-i", files["document"],
                     "-d", files["dtd"]]) == 0
        assert capsys.readouterr().out == auto_out


class TestLintSarifAndBaseline:
    def test_sarif_format_is_valid_sarif(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        exit_code = main(["lint", "--format", "sarif", str(target)])
        captured = capsys.readouterr()
        assert exit_code == 0
        import json

        payload = json.loads(captured.out)
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"]

    def test_sarif_reports_findings_with_fingerprints(self, tmp_path, capsys):
        import json

        target = tmp_path / "dirty.py"
        target.write_text(
            "# hot-loop\ndef f(xs):\n    return [x for x in xs]\n"
        )
        exit_code = main(["lint", "--format", "sarif", str(target)])
        captured = capsys.readouterr()
        assert exit_code == 1
        (run,) = json.loads(captured.out)["runs"]
        assert run["results"]
        for finding in run["results"]:
            assert finding["ruleId"]
            assert finding["partialFingerprints"]["reproLint/v1"]

    def test_check_baseline_fails_on_stale_suppressions(self, tmp_path, capsys):
        import json

        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "findings": [{"code": "LD001", "path": "gone.py", "message": "ghost"}],
        }))
        exit_code = main(["lint", "--baseline", str(baseline), "--check-baseline",
                          str(target)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "stale baseline suppression" in captured.err

    def test_stale_suppressions_pass_without_check(self, tmp_path, capsys):
        import json

        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "findings": [{"code": "LD001", "path": "gone.py", "message": "ghost"}],
        }))
        assert main(["lint", "--baseline", str(baseline), str(target)]) == 0

    def test_check_baseline_requires_baseline(self, tmp_path, capsys):
        exit_code = main(["lint", "--check-baseline", str(tmp_path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--check-baseline requires --baseline" in captured.err

    def test_check_baseline_passes_when_all_fire(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "# hot-loop\ndef f(xs):\n    return [x for x in xs]\n"
        )
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", str(baseline), str(target)]) == 0
        capsys.readouterr()
        assert main(["lint", "--baseline", str(baseline), "--check-baseline",
                     str(target)]) == 0
