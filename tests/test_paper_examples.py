"""End-to-end tests that follow the paper's running examples literally.

Section 2 of the paper walks through XMP Q3 under a weak and a strong DTD and
shows the FluX queries the optimizer should produce; Section 3.1 gives the
algebraic optimization examples.  These tests assert that the reproduction
exhibits exactly those behaviours.
"""

import pytest

from repro.core.optimizer import compile_xquery
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from tests.conftest import PAPER_FIGURE1_DTD, PAPER_WEAK_DTD


class TestSection2FluxQueries:
    """The two FluX translations of XMP Q3 shown in Section 2."""

    def test_weak_dtd_translation_matches_paper(self, paper_q3):
        result = compile_xquery(paper_q3, PAPER_WEAK_DTD)
        flux = result.flux.to_flux_syntax()
        # process-stream $ROOT: on bib ...
        assert "process-stream $ROOT" in flux
        assert "on bib as" in flux
        # nested process-stream over the book with a streaming title handler
        assert "on title as" in flux
        # ... and the buffered author loop guarded by on-first past(title,author)
        assert "on-first past(author,title)" in flux
        assert "for" in flux and "/author return" in flux

    def test_strong_dtd_translation_matches_paper(self, paper_q3):
        result = compile_xquery(paper_q3, PAPER_FIGURE1_DTD)
        flux = result.flux.to_flux_syntax()
        assert "on title as" in flux
        assert "on author as" in flux
        assert "on-first" not in flux

    def test_weak_dtd_buffers_only_authors_of_one_book(self, paper_q3, paper_weak_document):
        engine = FluxEngine(PAPER_WEAK_DTD)
        result = engine.execute(paper_q3, paper_weak_document)
        compiled = engine.compile(paper_q3)
        assert "author" in compiled.buffer_description
        assert "title" not in compiled.buffer_description
        # Peak is bounded by one book's authors, far below the document size.
        assert 0 < result.peak_buffer_bytes < len(paper_weak_document) / 2

    def test_strong_dtd_requires_no_buffering_at_all(self, paper_q3, paper_document):
        result = FluxEngine(PAPER_FIGURE1_DTD).execute(paper_q3, paper_document)
        assert result.peak_buffer_bytes == 0

    def test_flux_output_equals_conventional_engine(self, paper_q3, paper_document):
        flux = FluxEngine(PAPER_FIGURE1_DTD).execute(paper_q3, paper_document)
        dom = DomEngine().execute(paper_q3, paper_document)
        assert flux.output == dom.output

    def test_xquery_semantics_titles_before_authors(self, paper_q3, paper_weak_document):
        """XQuery requires titles before authors in every result, even when
        the stream interleaves them (the paper's motivating observation)."""
        result = FluxEngine(PAPER_WEAK_DTD).execute(paper_q3, paper_weak_document)
        for chunk in result.output.split("<result>")[1:]:
            body = chunk.split("</result>")[0]
            if "<author>" in body and "<title>" in body:
                assert body.index("<title>") < body.index("<author>")


class TestSection31AlgebraicOptimizations:
    """The cardinality and language constraint examples of Section 3.1."""

    MERGE_QUERY = """
    <out>{ for $book in $ROOT/bib/book return
      <entry>
        { for $x in $book/publisher return <a>{ $x }</a> }
        { for $x in $book/publisher return <b>{ $x }</b> }
      </entry> }</out>
    """

    UNSAT_QUERY = """
    <out>{ for $book in $ROOT/bib/book return
      if ($book/author = "Goedel" and $book/editor = "Goedel")
      then <hit>{ $book/title }</hit> else () }</out>
    """

    def test_publisher_loops_merged_under_figure1(self):
        result = compile_xquery(self.MERGE_QUERY, PAPER_FIGURE1_DTD)
        assert result.algebra_report.merged_loops == 1

    def test_author_editor_conditional_eliminated_under_figure1(self):
        result = compile_xquery(self.UNSAT_QUERY, PAPER_FIGURE1_DTD)
        assert result.algebra_report.eliminated_conditionals == 1

    def test_eliminated_query_runs_with_zero_buffers(self, paper_document):
        result = FluxEngine(PAPER_FIGURE1_DTD).execute(self.UNSAT_QUERY, paper_document)
        assert result.output == "<out></out>"
        assert result.peak_buffer_bytes == 0

    def test_without_elimination_the_query_buffers(self, paper_document):
        engine = FluxEngine(PAPER_FIGURE1_DTD, enable_conditional_elimination=False)
        result = engine.execute(self.UNSAT_QUERY, paper_document)
        assert result.output == "<out></out>"
        assert result.peak_buffer_bytes > 0


class TestConclusionsClaims:
    """"FluXQuery consumes both far less memory and runtime than other
    XQuery systems. The difference is particularly clear for main memory
    consumption." — checked on a generated workload."""

    def test_memory_far_less_than_dom(self, small_bibliography, paper_q3):
        from repro.workloads.dtds import BIB_DTD_STRONG

        flux = FluxEngine(BIB_DTD_STRONG)
        dom = DomEngine()
        flux_result = flux.execute(paper_q3, small_bibliography)
        dom_result = dom.execute(paper_q3, small_bibliography)
        assert flux_result.output == dom_result.output
        assert flux_result.peak_buffer_bytes * 10 < dom_result.peak_buffer_bytes
