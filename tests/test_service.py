"""QueryService: shared-pass correctness, pruning safety, metrics, life cycle.

The central property (the PR's acceptance bar): for every catalogued query,
the output produced inside a shared multi-query pass is byte-identical to a
solo ``FluxEngine.execute`` of the same query over the same document — no
matter how the document is chunked into the push-based ingestion.
"""

import io

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.errors import XMLSyntaxError, XMLValidationError
from repro.service import QueryService, SHARED_ENGINE_NAME
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG, BIB_DTD_WEAK
from repro.workloads.queries import get_query, queries_for_workload
from repro.workloads.xmark import generate_auction_site

from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3


@pytest.fixture(scope="module")
def bib_document():
    return generate_bibliography(num_books=40, seed=2004)


@pytest.fixture(scope="module")
def auction_document():
    return generate_auction_site(scale=0.4, seed=2004)


def solo_outputs(dtd, specs, document):
    engine = FluxEngine(dtd)
    return {spec.key: engine.execute(spec.xquery, document) for spec in specs}


class TestSharedPassAgreement:
    """Property-style: shared output == solo output for the whole catalogue."""

    @pytest.mark.parametrize(
        "workload,dtd_name",
        [("bib", "strong"), ("bib", "weak"), ("auction", "auction")],
    )
    def test_all_catalogued_queries_agree(
        self, workload, dtd_name, bib_document, auction_document
    ):
        dtd = {"strong": BIB_DTD_STRONG, "weak": BIB_DTD_WEAK, "auction": AUCTION_DTD}[
            dtd_name
        ]
        document = bib_document if workload == "bib" else auction_document
        specs = queries_for_workload(workload)
        service = QueryService(dtd)
        for spec in specs:
            service.register(spec.xquery, key=spec.key)
        results = service.run_pass(document)
        solo = solo_outputs(dtd, specs, document)
        for spec in specs:
            assert results[spec.key].output == solo[spec.key].output, spec.key
            assert results[spec.key].engine == SHARED_ENGINE_NAME

    @pytest.mark.parametrize("chunk", [1, 57, 4096])
    def test_agreement_is_chunking_independent(self, bib_document, chunk):
        specs = queries_for_workload("bib")
        service = QueryService(BIB_DTD_STRONG)
        for spec in specs:
            service.register(spec.xquery, key=spec.key)
        shared_pass = service.open_pass()
        for start in range(0, len(bib_document), chunk):
            shared_pass.feed(bib_document[start : start + chunk])
        results = shared_pass.finish()
        solo = solo_outputs(BIB_DTD_STRONG, specs, bib_document)
        for spec in specs:
            assert results[spec.key].output == solo[spec.key].output, spec.key

    def test_agreement_without_dtd(self):
        # No schema: no order constraints, no early on-first events, maximal
        # buffering — the shared pass must still match solo exactly.
        service = QueryService(None)
        service.register(PAPER_Q3, key="q3")
        results = service.run_pass(PAPER_DOCUMENT)
        solo = FluxEngine(None).execute(PAPER_Q3, PAPER_DOCUMENT)
        assert results["q3"].output == solo.output

    def test_file_like_document(self, bib_document):
        service = QueryService(BIB_DTD_STRONG)
        service.register(get_query("BIB-Q1").xquery, key="q1")
        results = service.run_pass(io.StringIO(bib_document))
        solo = FluxEngine(BIB_DTD_STRONG).execute(get_query("BIB-Q1").xquery, bib_document)
        assert results["q1"].output == solo.output

    def test_repeated_passes_reuse_registrations(self, bib_document):
        service = QueryService(BIB_DTD_STRONG)
        service.register(get_query("BIB-Q1").xquery, key="q1")
        first = service.run_pass(bib_document)
        second = service.run_pass(bib_document)
        assert first["q1"].output == second["q1"].output
        assert service.metrics.passes_completed == 2


class TestSharedScanEconomy:
    def test_one_parse_serves_all_queries(self, bib_document):
        specs = queries_for_workload("bib")
        service = QueryService(BIB_DTD_STRONG)
        for spec in specs:
            service.register(spec.xquery, key=spec.key)
        service.run_pass(bib_document)
        metrics = service.metrics.last_pass
        assert metrics.queries == len(specs) >= 5
        # N independent runs parse the document N times; the shared pass
        # parses it once, so total parser events are cut by (N-1)x.
        independent_events = len(specs) * metrics.parser_events
        assert metrics.parser_events < independent_events
        assert metrics.events_saved_vs_solo == independent_events - metrics.parser_events

    def test_projection_filter_skips_irrelevant_events(self, auction_document):
        # A single sparse query over the auction site: whole sections are
        # irrelevant and must be pruned once, before fan-out.
        service = QueryService(AUCTION_DTD)
        service.register(get_query("AUC-A1").xquery, key="a1")
        results = service.run_pass(auction_document)
        metrics = service.metrics.last_pass
        assert metrics.events_pruned > 0
        assert metrics.events_forwarded < metrics.parser_events
        solo = FluxEngine(AUCTION_DTD).execute(get_query("AUC-A1").xquery, auction_document)
        assert results["a1"].output == solo.output
        # The per-query runtime really processed fewer events than solo.
        assert results["a1"].stats.events_processed < solo.stats.events_processed


class TestServiceLifecycle:
    def test_register_returns_cache_provenance(self):
        service = QueryService(BIB_DTD_STRONG)
        first = service.register(PAPER_Q3)
        again = service.register(PAPER_Q3)
        assert not first.from_cache
        assert again.from_cache
        assert service.plan_cache.stats.hits == 1

    def test_default_keys_and_unregister(self):
        service = QueryService(BIB_DTD_STRONG)
        registration = service.register(PAPER_Q3)
        assert registration.key == "q1"
        assert len(service) == 1
        service.unregister("q1")
        assert len(service) == 0
        with pytest.raises(KeyError):
            service.unregister("q1")

    def test_shared_cache_across_services(self):
        from repro.service import PlanCache

        cache = PlanCache()
        QueryService(BIB_DTD_STRONG, plan_cache=cache).register(PAPER_Q3)
        QueryService(BIB_DTD_STRONG, plan_cache=cache).register(PAPER_Q3)
        assert cache.stats.hits == 1

    def test_pass_without_registrations_rejected(self):
        with pytest.raises(ValueError):
            QueryService(BIB_DTD_STRONG).open_pass()

    def test_push_driven_pass_records_metrics(self, bib_document):
        # open_pass()/feed()/finish() must account exactly like run_pass(),
        # and an idempotent double finish() must record only once.
        service = QueryService(BIB_DTD_STRONG)
        service.register(PAPER_Q3)
        shared_pass = service.open_pass()
        shared_pass.feed(bib_document)
        shared_pass.finish()
        shared_pass.finish()
        assert service.metrics.passes_completed == 1
        assert service.metrics.last_pass.parser_events > 0

    def test_stats_summary_merges_cache_stats(self, bib_document):
        service = QueryService(BIB_DTD_STRONG)
        service.register(PAPER_Q3)
        service.run_pass(bib_document)
        summary = service.stats_summary()
        assert summary["passes_completed"] == 1
        assert summary["plan_cache"]["misses"] == 1
        assert summary["last_pass"]["queries"] == 1


class TestSharedPassErrors:
    def test_malformed_document_raises_and_aborts(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()
        shared_pass.feed("<bib><book>")
        with pytest.raises(XMLSyntaxError):
            shared_pass.finish()

    def test_invalid_document_raises_once_for_all_queries(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        with pytest.raises(XMLValidationError):
            service.run_pass("<bib><bad/></bib>")

    def test_context_manager_finishes_on_clean_exit(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        with service.open_pass() as shared_pass:
            shared_pass.feed(PAPER_DOCUMENT)
        results = shared_pass.finish()  # idempotent: already finished on exit
        assert results["q3"].output
        assert service.metrics.passes_completed == 1

    def test_context_manager_aborts_on_exception(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        with pytest.raises(RuntimeError):
            with service.open_pass() as shared_pass:
                shared_pass.feed("<bib>")
                raise RuntimeError("caller failure")
        # The abort released every worker; a fresh pass still runs.
        assert service.run_pass(PAPER_DOCUMENT)["q3"].output

    def test_abandoned_pass_releases_workers(self):
        import gc
        import threading
        import time

        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        before = threading.active_count()
        shared_pass = service.open_pass()
        shared_pass.feed("<bib>")
        del shared_pass  # dropped without finish()/abort()
        gc.collect()
        for _ in range(100):  # the finalizer joins; workers exit promptly
            if threading.active_count() <= before:
                break
            time.sleep(0.02)
        assert threading.active_count() <= before

    def test_feed_after_finish_rejected(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()
        shared_pass.feed(PAPER_DOCUMENT)
        shared_pass.finish()
        with pytest.raises(ValueError):
            shared_pass.feed("x")


class TestStaticCostAndObservations:
    """The analyzer hooks: priced registrations, observed passes."""

    def test_registered_query_exposes_static_cost(self):
        service = QueryService(BIB_DTD_STRONG)
        registration = service.register(PAPER_Q3, key="q3")
        assert registration.static_cost > 0
        # Memoized on the shared entry, not recomputed per registration.
        assert registration.static_cost == registration.entry.__dict__["_static_cost"]

    def test_run_pass_records_observations(self, bib_document):
        service = QueryService(BIB_DTD_STRONG)
        registration = service.register(PAPER_Q3, key="q3")
        results = service.run_pass(bib_document)
        record = service.plan_cache.observations_for(registration.entry)
        assert record is not None
        assert record.passes == 1
        assert record.events_routed > 0
        assert record.document_bytes == float(len(bib_document))
        assert record.peak_buffer_bytes == results["q3"].peak_buffer_bytes

    def test_observations_accumulate_across_passes(self, bib_document):
        service = QueryService(BIB_DTD_STRONG)
        registration = service.register(PAPER_Q3, key="q3")
        service.run_pass(bib_document)
        service.run_pass(bib_document)
        record = service.plan_cache.observations_for(registration.entry)
        assert record.passes == 2

    def test_duplicate_registrations_observe_once_per_pass(self, bib_document):
        # Two keys, one deduplicated plan: the pass must not double-count.
        service = QueryService(BIB_DTD_STRONG)
        registration = service.register(PAPER_Q3, key="a")
        service.register(PAPER_Q3, key="b")
        service.run_pass(bib_document)
        record = service.plan_cache.observations_for(registration.entry)
        assert record.passes == 1
