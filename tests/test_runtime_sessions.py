"""Push-based plan execution: EvaluatorSession and FluxQuerySession."""

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.errors import EvaluationError, XMLValidationError
from repro.runtime.evaluator import EvaluatorSession, EventChannel
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query
from repro.xmlstream.parser import StreamingXMLParser, parse_events

from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3


@pytest.fixture(scope="module")
def engine():
    return FluxEngine(PAPER_FIGURE1_DTD)


class TestFluxQuerySession:
    def test_single_feed_matches_execute(self, engine):
        compiled = engine.compile(PAPER_Q3)
        solo = compiled.execute(PAPER_DOCUMENT)
        session = compiled.start()
        session.feed(parse_events(PAPER_DOCUMENT))
        result = session.finish()
        assert result.output == solo.output
        assert result.engine == "flux"

    @pytest.mark.parametrize("size", [1, 13, 200])
    def test_chunked_feed_matches_execute(self, engine, size):
        compiled = engine.compile(PAPER_Q3)
        solo = compiled.execute(PAPER_DOCUMENT)
        session = compiled.start()
        parser = StreamingXMLParser.incremental()
        for start in range(0, len(PAPER_DOCUMENT), size):
            session.feed(parser.feed(PAPER_DOCUMENT[start : start + size]))
        session.feed(parser.close())
        assert session.finish().output == solo.output

    def test_finish_is_idempotent(self, engine):
        session = engine.compile(PAPER_Q3).start()
        session.feed(parse_events(PAPER_DOCUMENT))
        first = session.finish()
        assert session.finish().output == first.output

    def test_feed_after_finish_raises(self, engine):
        session = engine.compile(PAPER_Q3).start()
        session.feed(parse_events(PAPER_DOCUMENT))
        session.finish()
        with pytest.raises(EvaluationError):
            session.feed([])

    def test_validation_error_propagates_to_caller(self, engine):
        invalid = "<bib><book><title>t</title></book></bib>"  # missing children
        session = engine.compile(PAPER_Q3).start()
        with pytest.raises(XMLValidationError):
            session.feed(parse_events(invalid))
            session.finish()

    def test_abort_discards_session(self, engine):
        session = engine.compile(PAPER_Q3).start()
        session.feed(parse_events(PAPER_DOCUMENT))
        session.abort()
        # A fresh session still works (sessions are single-use, plans are not).
        solo = engine.execute(PAPER_Q3, PAPER_DOCUMENT)
        assert solo.output

    def test_finish_after_abort_raises_instead_of_truncated_output(self, engine):
        session = engine.compile(PAPER_Q3).start()
        events = list(parse_events(PAPER_DOCUMENT))
        session.feed(events[: len(events) // 2])
        session.abort()
        with pytest.raises(EvaluationError):
            session.finish()
        with pytest.raises(EvaluationError):
            session.feed(events)

    def test_early_terminating_plan_drops_surplus_input(self):
        # BIB-Q6's unsatisfiable conditional finishes after one event; the
        # channel must release the producer instead of deadlocking.
        engine = FluxEngine(BIB_DTD_STRONG)
        document = generate_bibliography(num_books=50, seed=3)
        spec = get_query("BIB-Q6")
        solo = engine.execute(spec.xquery, document)
        session = engine.compile(spec.xquery).start()
        events = list(parse_events(document))
        for start in range(0, len(events), 100):
            session.feed(events[start : start + 100])
        assert session.finish().output == solo.output


class TestEvaluatorSessionLifecycle:
    def test_feed_before_start_raises(self, engine):
        compiled = engine.compile(PAPER_Q3)
        session = EvaluatorSession(compiled.plan, engine.dtd)
        with pytest.raises(EvaluationError):
            session.feed([])
        with pytest.raises(EvaluationError):
            session.finish()

    def test_double_start_raises(self, engine):
        compiled = engine.compile(PAPER_Q3)
        session = EvaluatorSession(compiled.plan, engine.dtd).start()
        with pytest.raises(EvaluationError):
            session.start()
        session.abort()

    def test_channel_releases_producer_when_consumer_stops(self):
        channel = EventChannel(maxsize=1)
        channel.mark_consumer_done()
        assert channel.put([1]) is False

    def test_dropped_sessions_release_their_workers(self, engine):
        import gc
        import threading
        import time

        compiled = engine.compile(PAPER_Q3)
        before = threading.active_count()
        for _ in range(5):
            session = compiled.start()
            session.feed(list(parse_events(PAPER_DOCUMENT))[:3])
        del session  # all five dropped without finish()/abort()
        gc.collect()
        for _ in range(100):  # finalizers join; workers exit promptly
            if threading.active_count() <= before:
                break
            time.sleep(0.02)
        assert threading.active_count() <= before


class TestInlineEvaluatorSession:
    """The threadless execution mode: re-entrant generators, same bytes."""

    def _session(self, engine, **kwargs):
        compiled = engine.compile(PAPER_Q3)
        return EvaluatorSession(
            compiled.plan, engine.dtd, execution="inline", **kwargs
        )

    def test_inline_matches_thread_mode_bytes(self, engine):
        solo = engine.execute(PAPER_Q3, PAPER_DOCUMENT)
        session = self._session(engine).start()
        events = list(parse_events(PAPER_DOCUMENT))
        for start in range(0, len(events), 7):
            session.feed(events[start : start + 7])
        output, stats = session.finish()
        assert output == solo.output
        assert stats.events_processed > 0

    def test_inline_spawns_no_threads(self, engine):
        import threading

        before = threading.active_count()
        session = self._session(engine).start()
        session.feed(parse_events(PAPER_DOCUMENT))
        session.finish()
        assert threading.active_count() == before

    def test_inline_lifecycle_errors(self, engine):
        session = self._session(engine)
        with pytest.raises(EvaluationError):
            session.feed([])
        session.start()
        with pytest.raises(EvaluationError):
            session.start()
        session.abort()
        with pytest.raises(EvaluationError):
            session.feed([])
        with pytest.raises(EvaluationError):
            session.finish()

    def test_inline_validation_error_raises_from_the_triggering_feed(self, engine):
        invalid = list(parse_events("<bib><book><title>t</title></book></bib>"))
        session = self._session(engine).start()
        with pytest.raises(XMLValidationError):
            session.feed(invalid)

    def test_inline_early_terminating_plan_drops_surplus_input(self):
        engine = FluxEngine(BIB_DTD_STRONG)
        document = generate_bibliography(num_books=50, seed=3)
        spec = get_query("BIB-Q6")
        solo = engine.execute(spec.xquery, document)
        compiled = engine.compile(spec.xquery)
        session = EvaluatorSession(compiled.plan, engine.dtd, execution="inline").start()
        events = list(parse_events(document))
        for start in range(0, len(events), 100):
            session.feed(events[start : start + 100])
        output, _ = session.finish()
        assert output == solo.output

    def test_inline_finish_is_idempotent(self, engine):
        session = self._session(engine).start()
        session.feed(parse_events(PAPER_DOCUMENT))
        first = session.finish()
        assert session.finish() == first
