"""Unit tests for streaming DTD validation."""

import pytest

from repro.errors import XMLValidationError
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import StreamingValidator, validate_events, validate_tree
from repro.xmlstream.parser import parse_events
from repro.xmlstream.tree import parse_tree


class TestValidDocuments:
    def test_paper_document_is_valid(self, paper_dtd, paper_document):
        assert validate_events(parse_events(paper_document), paper_dtd) == 18

    def test_weak_document_valid_for_weak_dtd(self, paper_weak_dtd, paper_weak_document):
        assert validate_events(parse_events(paper_weak_document), paper_weak_dtd) > 0

    def test_generated_bibliography_valid(self, bib_dtd_strong, small_bibliography):
        assert validate_events(parse_events(small_bibliography), bib_dtd_strong) > 20

    def test_generated_auction_valid(self, auction_dtd, small_auction_site):
        assert validate_events(parse_events(small_auction_site), auction_dtd) > 20

    def test_validate_tree_api(self, paper_dtd, paper_document):
        assert validate_tree(parse_tree(paper_document), paper_dtd) == 18

    def test_validator_as_filter_passes_events_through(self, paper_dtd, paper_document):
        validator = StreamingValidator(paper_dtd)
        events = list(validator.validate(parse_events(paper_document)))
        assert events == list(parse_events(paper_document))


class TestInvalidDocuments:
    def test_weak_document_invalid_for_strong_dtd(self, paper_dtd, paper_weak_document):
        with pytest.raises(XMLValidationError):
            validate_events(parse_events(paper_weak_document), paper_dtd)

    def test_wrong_root_element(self, paper_dtd):
        with pytest.raises(XMLValidationError, match="root element"):
            validate_events(parse_events("<library/>"), paper_dtd)

    def test_missing_required_child(self, paper_dtd):
        doc = "<bib><book><title>t</title><author>a</author></book></bib>"
        with pytest.raises(XMLValidationError, match="incomplete content"):
            validate_events(parse_events(doc), paper_dtd)

    def test_child_in_wrong_position(self, paper_dtd):
        doc = (
            "<bib><book><author>a</author><title>t</title>"
            "<publisher>p</publisher><price>1</price></book></bib>"
        )
        with pytest.raises(XMLValidationError, match="not allowed here"):
            validate_events(parse_events(doc), paper_dtd)

    def test_both_author_and_editor_rejected(self, paper_dtd):
        doc = (
            "<bib><book><title>t</title><author>a</author><editor>e</editor>"
            "<publisher>p</publisher><price>1</price></book></bib>"
        )
        with pytest.raises(XMLValidationError):
            validate_events(parse_events(doc), paper_dtd)

    def test_unexpected_element_inside_leaf(self, paper_dtd):
        doc = (
            "<bib><book><title><b>bold</b></title><author>a</author>"
            "<publisher>p</publisher><price>1</price></book></bib>"
        )
        with pytest.raises(XMLValidationError):
            validate_events(parse_events(doc), paper_dtd)


class TestStrictMode:
    def test_undeclared_element_allowed_by_default(self):
        dtd = parse_dtd("<!ELEMENT a (b)*>")
        validate_events(parse_events("<a><b><c/></b></a>"), dtd)

    def test_undeclared_element_rejected_in_strict_mode(self):
        dtd = parse_dtd("<!ELEMENT a (b)*>")
        with pytest.raises(XMLValidationError, match="not declared"):
            validate_events(parse_events("<a><b><c/></b></a>"), dtd, strict=True)

    def test_text_in_element_only_content_rejected_in_strict_mode(self, paper_dtd):
        doc = (
            "<bib><book>stray text<title>t</title><author>a</author>"
            "<publisher>p</publisher><price>1</price></book></bib>"
        )
        with pytest.raises(XMLValidationError):
            validate_events(parse_events(doc), paper_dtd, strict=True)
        # Lenient mode tolerates it.
        validate_events(parse_events(doc), paper_dtd, strict=False)

    def test_depth_and_state_introspection(self, paper_dtd):
        validator = StreamingValidator(paper_dtd)
        events = parse_events("<bib><book><title>t</title><author>a</author><publisher>p</publisher><price>1</price></book></bib>")
        seen_depths = set()
        for event in events:
            validator.feed(event)
            seen_depths.add(validator.depth)
        assert max(seen_depths) == 3
        assert validator.depth == 0
        assert validator.current_state() is None
