"""Plan cache: hits, misses, DTD-fingerprint invalidation, eviction, stats.

The cache lives in ``repro.runtime`` and is shared by the FluxEngine and the
multi-query service; ``repro.service.plan_cache`` re-exports it."""

import pytest

from repro.bench.fleets import alias_query
from repro.core.optimizer import OptimizerPipeline
from repro.dtd.parser import parse_dtd
from repro.runtime.plan_cache import NO_DTD_FINGERPRINT, PlanCache, cache_key, dtd_fingerprint
from repro.workloads.queries import get_query

from tests.conftest import PAPER_FIGURE1_DTD, PAPER_WEAK_DTD, PAPER_Q3


@pytest.fixture
def strong_pipeline():
    return OptimizerPipeline(parse_dtd(PAPER_FIGURE1_DTD))


@pytest.fixture
def weak_pipeline():
    return OptimizerPipeline(parse_dtd(PAPER_WEAK_DTD))


class TestDtdFingerprint:
    def test_equal_dtds_share_a_fingerprint(self):
        assert dtd_fingerprint(parse_dtd(PAPER_FIGURE1_DTD)) == dtd_fingerprint(
            parse_dtd(PAPER_FIGURE1_DTD)
        )

    def test_different_dtds_differ(self):
        assert dtd_fingerprint(parse_dtd(PAPER_FIGURE1_DTD)) != dtd_fingerprint(
            parse_dtd(PAPER_WEAK_DTD)
        )

    def test_declaration_order_is_irrelevant(self):
        reordered = "\n".join(reversed(PAPER_FIGURE1_DTD.strip().splitlines()))
        # Same declarations, same root (explicitly the unique non-child).
        assert dtd_fingerprint(parse_dtd(PAPER_FIGURE1_DTD)) == dtd_fingerprint(
            parse_dtd(reordered)
        )

    def test_no_dtd_sentinel(self):
        from repro.runtime.plan_cache import DEFAULT_PIPELINE_CONFIG

        assert dtd_fingerprint(None) == NO_DTD_FINGERPRINT
        assert cache_key("q", None) == ("q", NO_DTD_FINGERPRINT, DEFAULT_PIPELINE_CONFIG)
        assert cache_key("q", None, "10101") == ("q", NO_DTD_FINGERPRINT, "10101")


class TestPlanCache:
    def test_hit_on_identical_query_and_dtd(self, strong_pipeline):
        cache = PlanCache()
        first, first_cached = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        second, second_cached = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        assert second is first
        assert (first_cached, second_cached) == (False, True)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_miss_on_different_dtd(self, strong_pipeline, weak_pipeline):
        cache = PlanCache()
        strong_plan, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        weak_plan, _ = cache.get_or_compile(PAPER_Q3, weak_pipeline)
        assert weak_plan is not strong_plan
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert len(cache) == 2
        # Both schema variants stay resident side by side.
        assert cache.get(PAPER_Q3, strong_pipeline.dtd) is strong_plan
        assert cache.get(PAPER_Q3, weak_pipeline.dtd) is weak_plan

    def test_miss_on_different_pipeline_config(self, strong_pipeline):
        # An ablation pipeline must never be served a plan compiled with
        # the full optimizer (the plans produce different FluX queries).
        cache = PlanCache()
        ablated = OptimizerPipeline(
            strong_pipeline.dtd,
            enable_loop_merging=False,
            use_order_constraints=False,
        )
        full_plan, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        ablated_plan, _ = cache.get_or_compile(PAPER_Q3, ablated)
        assert ablated_plan is not full_plan
        assert cache.stats.misses == 2
        assert len(cache) == 2
        assert cache.get_or_compile(PAPER_Q3, ablated) == (ablated_plan, True)

    def test_miss_on_different_query(self, strong_pipeline):
        cache = PlanCache()
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.get_or_compile(get_query("BIB-Q1").xquery, strong_pipeline)
        assert cache.stats.misses == 2

    def test_lru_eviction(self, strong_pipeline):
        cache = PlanCache(capacity=2)
        q1 = get_query("BIB-Q1").xquery
        q2 = get_query("BIB-Q2").xquery
        q3 = get_query("BIB-Q4").xquery
        cache.get_or_compile(q1, strong_pipeline)
        cache.get_or_compile(q2, strong_pipeline)
        cache.get_or_compile(q1, strong_pipeline)  # refresh q1
        cache.get_or_compile(q3, strong_pipeline)  # evicts q2 (LRU)
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        assert cache.get(q2, strong_pipeline.dtd) is None  # counted as a miss
        assert cache.get(q1, strong_pipeline.dtd) is not None

    def test_stats_counters_and_hit_rate(self, strong_pipeline):
        cache = PlanCache()
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        stats = cache.stats.as_dict()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_clear_keeps_stats(self, strong_pipeline):
        cache = PlanCache()
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_contains_and_len_reflect_entries(self, strong_pipeline):
        cache = PlanCache()
        key = cache_key(PAPER_Q3, strong_pipeline.dtd, strong_pipeline.config_fingerprint())
        assert key not in cache
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        assert key in cache
        assert len(cache) == 1


class TestPlanCacheConcurrency:
    """Concurrent misses on one key must compile exactly once."""

    def _patched(self, monkeypatch, behaviour):
        import repro.runtime.plan_cache as plan_cache_module

        monkeypatch.setattr(plan_cache_module, "compile_query", behaviour)

    def test_single_flight_compilation(self, strong_pipeline, monkeypatch):
        import threading
        import time

        import repro.runtime.plan_cache as plan_cache_module

        real_compile = plan_cache_module.compile_query
        compiles = []

        def slow_compile(query, pipeline=None):
            compiles.append(query)
            time.sleep(0.05)  # widen the race window
            return real_compile(query, pipeline=pipeline)

        self._patched(monkeypatch, slow_compile)
        cache = PlanCache()
        results = []

        def worker():
            results.append(cache.get_or_compile(PAPER_Q3, strong_pipeline))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(compiles) == 1
        assert len({id(entry) for entry, _ in results}) == 1
        # Exactly the leader reports a fresh compilation.
        assert sum(1 for _, from_cache in results if not from_cache) == 1
        # One compilation paid (the leader's miss); everyone else either
        # coalesced onto the flight or hit the freshly-inserted entry.
        assert cache.stats.misses == 1
        assert cache.stats.coalesced + cache.stats.hits == 7
        # hit_rate reflects that 7 of 8 callers never compiled.
        assert cache.stats.hit_rate == pytest.approx(7 / 8)
        entry, from_cache = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        assert from_cache and cache.stats.hits >= 1

    def test_follower_receives_leader_error(self, strong_pipeline):
        from repro.runtime.plan_cache import _Flight

        cache = PlanCache()
        key = cache_key(
            PAPER_Q3, strong_pipeline.dtd, strong_pipeline.config_fingerprint()
        )
        flight = _Flight()
        flight.error = RuntimeError("injected compile failure")
        flight.done.set()
        cache._inflight[key] = flight
        with pytest.raises(RuntimeError, match="injected compile failure") as excinfo:
            cache.get_or_compile(PAPER_Q3, strong_pipeline)
        # The follower raised its own copy, chained to the leader's original.
        assert excinfo.value is not flight.error
        assert excinfo.value.__cause__ is flight.error

    def test_concurrent_followers_get_distinct_errors_with_intact_tracebacks(
        self, strong_pipeline, monkeypatch
    ):
        """Each follower's re-raise must not stomp the other followers'.

        With one shared exception instance, every follower's ``raise``
        splices frames onto the same ``__traceback__``; here each follower
        must observe exactly its own raise site.
        """
        import threading
        import time
        import traceback

        leader_error = ValueError("injected compile failure")

        def failing_compile(query, pipeline=None):
            time.sleep(0.05)  # keep the flight open while followers join
            raise leader_error

        self._patched(monkeypatch, failing_compile)
        cache = PlanCache()
        barrier = threading.Barrier(4)
        caught = []
        caught_lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                cache.get_or_compile(PAPER_Q3, strong_pipeline)
            except ValueError as exc:
                with caught_lock:
                    caught.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(caught) == 4
        # No caller was served: the leader is the one (failed) miss, and
        # followers of a failed flight must not inflate hit_rate.
        assert cache.stats.misses == 1
        assert cache.stats.coalesced == 0
        assert cache.stats.hit_rate == 0.0
        followers = [exc for exc in caught if exc is not leader_error]
        assert len(followers) == 3
        # Distinct instances per follower, all chained to the leader's.
        assert len({id(exc) for exc in followers}) == 3
        for exc in followers:
            assert exc.__cause__ is leader_error
            assert str(exc) == "injected compile failure"
            frames = traceback.extract_tb(exc.__traceback__)
            # Intact: exactly one raise site (get_or_compile), no frames
            # spliced in by the other followers' re-raises.
            assert [f.name for f in frames].count("get_or_compile") == 1
            assert frames[0].name == "worker"

    def test_followers_count_as_coalesced_not_misses(self, strong_pipeline, monkeypatch):
        import threading
        import time

        import repro.runtime.plan_cache as plan_cache_module

        real_compile = plan_cache_module.compile_query
        started = threading.Event()
        release = threading.Event()

        def gated_compile(query, pipeline=None):
            started.set()
            release.wait(5)
            return real_compile(query, pipeline=pipeline)

        self._patched(monkeypatch, gated_compile)
        cache = PlanCache()
        results = []

        def call():
            results.append(cache.get_or_compile(PAPER_Q3, strong_pipeline))

        leader = threading.Thread(target=call)
        leader.start()
        assert started.wait(5)
        followers = [threading.Thread(target=call) for _ in range(3)]
        for thread in followers:
            thread.start()
        # Wait until all three followers joined the flight, then release
        # the leader.
        (flight,) = cache._inflight.values()
        deadline = time.time() + 5
        while flight.followers < 3 and time.time() < deadline:
            time.sleep(0.001)
        release.set()
        leader.join()
        for thread in followers:
            thread.join()
        stats = cache.stats.as_dict()
        assert stats["misses"] == 1
        assert stats["coalesced"] == 3
        assert stats["hits"] == 0
        assert stats["hit_rate"] == pytest.approx(3 / 4)
        # Followers still report from_cache=True: they did not compile.
        assert sum(1 for _, from_cache in results if not from_cache) == 1

    def test_failed_flight_clears_so_later_calls_retry(self, strong_pipeline, monkeypatch):
        import repro.runtime.plan_cache as plan_cache_module

        real_compile = plan_cache_module.compile_query
        attempts = []

        def flaky_compile(query, pipeline=None):
            attempts.append(query)
            if len(attempts) == 1:
                raise RuntimeError("injected compile failure")
            return real_compile(query, pipeline=pipeline)

        self._patched(monkeypatch, flaky_compile)
        cache = PlanCache()
        with pytest.raises(RuntimeError):
            cache.get_or_compile(PAPER_Q3, strong_pipeline)
        assert not cache._inflight  # the failed flight did not linger
        entry, from_cache = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        assert entry is not None and not from_cache
        assert len(attempts) == 2


class TestStructuralInterning:
    """Alias texts (same computation, different spelling) share one plan.

    Interning is keyed by :func:`structure_key` — variables α-renamed
    away — so the cache holds one canonical plan object per distinct
    computation, however many text keys point at it, and eviction of one
    alias never strands (or prematurely drops) the shared object.
    """

    def test_alias_text_interns_to_the_cached_canonical_plan(self, strong_pipeline):
        cache = PlanCache()
        base, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        alias, from_cache = cache.get_or_compile(
            alias_query(PAPER_Q3, 1), strong_pipeline
        )
        # A distinct text is still a compile (miss)...
        assert not from_cache
        assert cache.stats.misses == 2
        # ...but the *stored and returned* plan is the canonical object.
        assert alias is base
        assert cache.stats.interned == 1
        assert len(cache) == 2
        assert cache.structure_count() == 1

    def test_distinct_structures_never_intern(self, strong_pipeline):
        cache = PlanCache()
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.get_or_compile(get_query("BIB-Q1").xquery, strong_pipeline)
        assert cache.stats.interned == 0
        assert cache.structure_count() == 2

    def test_structure_survives_eviction_of_one_alias(self, strong_pipeline):
        cache = PlanCache(capacity=2)
        base, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.get_or_compile(alias_query(PAPER_Q3, 1), strong_pipeline)
        # Evicts the LRU alias entry (the base text), one of the two
        # entries sharing the structure — the canonical plan must survive
        # for the remaining alias.
        cache.get_or_compile(get_query("BIB-Q1").xquery, strong_pipeline)
        assert cache.stats.evictions == 1
        assert cache.structure_count() == 2
        third, _ = cache.get_or_compile(alias_query(PAPER_Q3, 2), strong_pipeline)
        assert third is base  # still interning against the survivor
        assert cache.stats.interned == 2
        # Inserting the third alias evicted the second — the last other
        # holder of the structure — yet the structure table still maps the
        # skey to the shared object the new entry carries.
        assert cache.structure_count() == 2

    def test_structure_is_released_with_its_last_entry(self, strong_pipeline):
        cache = PlanCache(capacity=1)
        old, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.get_or_compile(get_query("BIB-Q1").xquery, strong_pipeline)
        assert cache.stats.evictions == 1
        assert cache.structure_count() == 1  # the old structure is gone
        fresh, from_cache = cache.get_or_compile(
            alias_query(PAPER_Q3, 1), strong_pipeline
        )
        # Nothing left to intern against: a fresh canonical is compiled.
        assert not from_cache
        assert fresh is not old
        assert cache.stats.interned == 0

    def test_clear_drops_structures_too(self, strong_pipeline):
        cache = PlanCache()
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.get_or_compile(alias_query(PAPER_Q3, 1), strong_pipeline)
        cache.clear()
        assert cache.structure_count() == 0
        refetched, from_cache = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        assert not from_cache and refetched is not None


class TestPlanObservations:
    def test_observe_and_read_back(self, strong_pipeline):
        from repro.runtime.plan_cache import PlanObservations

        cache = PlanCache()
        entry, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        assert cache.observations_for(entry) is None
        cache.observe(entry, events_routed=15.0, document_bytes=500.0,
                      elapsed_seconds=0.01, peak_buffer_bytes=128)
        record = cache.observations_for(entry)
        assert isinstance(record, PlanObservations)
        assert record.passes == 1
        assert record.events_routed == 15.0
        assert record.peak_buffer_bytes == 128

    def test_observations_accumulate_and_keep_peak_max(self, strong_pipeline):
        cache = PlanCache()
        entry, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.observe(entry, events_routed=10.0, peak_buffer_bytes=64)
        cache.observe(entry, events_routed=30.0, peak_buffer_bytes=32)
        record = cache.observations_for(entry)
        assert record.passes == 2
        assert record.events_routed == 40.0
        assert record.peak_buffer_bytes == 64

    def test_observations_for_returns_a_copy(self, strong_pipeline):
        cache = PlanCache()
        entry, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.observe(entry, events_routed=5.0)
        copy = cache.observations_for(entry)
        copy.record(events_routed=1000.0, document_bytes=0.0, elapsed_seconds=0.0)
        assert cache.observations_for(entry).passes == 1

    def test_structurally_equal_plans_share_observations(self, strong_pipeline):
        # α-equivalent queries map to one structure key, so observations
        # recorded under one alias calibrate the other.
        cache = PlanCache()
        entry, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        alias, _ = cache.get_or_compile(alias_query(PAPER_Q3, 1), strong_pipeline)
        cache.observe(entry, events_routed=7.0)
        assert cache.observations_for(alias).events_routed == 7.0

    def test_snapshot_roundtrip_carries_observations(self, strong_pipeline, tmp_path):
        path = str(tmp_path / "plans.json")
        cache = PlanCache()
        entry, _ = cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.observe(entry, events_routed=15.0, document_bytes=500.0,
                      elapsed_seconds=0.01, peak_buffer_bytes=128)
        cache.dump(path)

        warmed = PlanCache()
        warmed.load(path)
        reloaded, cached = warmed.get_or_compile(PAPER_Q3, strong_pipeline)
        assert cached is True
        record = warmed.observations_for(reloaded)
        assert record is not None
        assert record.passes == 1
        assert record.events_routed == 15.0
        assert record.peak_buffer_bytes == 128

    def test_load_merges_observations_into_existing(self, strong_pipeline, tmp_path):
        path = str(tmp_path / "plans.json")
        first = PlanCache()
        entry, _ = first.get_or_compile(PAPER_Q3, strong_pipeline)
        first.observe(entry, events_routed=10.0)
        first.dump(path)

        second = PlanCache()
        live, _ = second.get_or_compile(PAPER_Q3, strong_pipeline)
        second.observe(live, events_routed=5.0)
        second.load(path)
        merged = second.observations_for(live)
        assert merged.passes == 2
        assert merged.events_routed == 15.0

    def test_snapshot_without_observations_still_loads(self, strong_pipeline, tmp_path):
        # Snapshots written before the sidecar existed have no
        # "observations" key; loading them must keep working.
        import pickle

        path = str(tmp_path / "plans.bin")
        cache = PlanCache()
        cache.get_or_compile(PAPER_Q3, strong_pipeline)
        cache.dump(path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload.pop("observations", None)
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        warmed = PlanCache()
        assert warmed.load(path) == 1
