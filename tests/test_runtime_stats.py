"""Unit tests for runtime statistics and the errors module."""

import time

import pytest

from repro import errors
from repro.runtime.stats import RuntimeStats


class TestRuntimeStats:
    def test_buffer_peak_tracking(self):
        stats = RuntimeStats()
        stats.buffer_grow(100)
        stats.buffer_grow(200)
        stats.buffer_shrink(250)
        stats.buffer_grow(10)
        assert stats.peak_buffer_bytes == 300
        assert stats.current_buffer_bytes == 60

    def test_shrink_never_goes_negative(self):
        stats = RuntimeStats()
        stats.buffer_shrink(50)
        assert stats.current_buffer_bytes == 0

    def test_timer_accumulates(self):
        stats = RuntimeStats()
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        first = stats.elapsed_seconds
        assert first > 0
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        assert stats.elapsed_seconds > first

    def test_stop_without_start_is_noop(self):
        stats = RuntimeStats()
        stats.stop_timer()
        assert stats.elapsed_seconds == 0

    def test_as_dict_and_summary(self):
        stats = RuntimeStats()
        stats.buffer_grow(42)
        stats.events_processed = 7
        stats.extra["custom"] = 1.5
        data = stats.as_dict()
        assert data["peak_buffer_bytes"] == 42
        assert data["custom"] == 1.5
        assert "peak buffer: 42 B" in stats.summary()


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            errors.XMLSyntaxError,
            errors.XMLValidationError,
            errors.DTDSyntaxError,
            errors.XQuerySyntaxError,
            errors.UnsupportedFeatureError,
            errors.QueryAnalysisError,
            errors.UnsafeFluxQueryError,
            errors.PlanError,
            errors.EvaluationError,
            errors.BufferError_,
            errors.WorkloadError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, errors.ReproError)

    def test_syntax_errors_carry_positions(self):
        assert "offset 12" in str(errors.XMLSyntaxError("bad", 12))
        assert "position 3" in str(errors.XQuerySyntaxError("bad", 3))
        assert errors.XMLSyntaxError("bad").offset == -1
