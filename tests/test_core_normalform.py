"""Unit tests for the normal-form rewriter."""

import pytest

from repro.core.normalform import normalize
from repro.xquery.ast import (
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    LetExpr,
    PathExpr,
    SequenceExpr,
    VarRef,
    walk,
)
from repro.xquery.parser import parse_xquery
from repro.xmlstream.tree import parse_tree
from repro.xquery.evaluator import evaluate_query_on_tree
from repro.xquery.analysis import free_variables


def nodes_of_type(expr, node_type):
    return [node for node in walk(expr) if isinstance(node, node_type)]


class TestLetElimination:
    def test_simple_let_removed(self):
        expr = normalize(parse_xquery("let $t := $b/title return <x>{ $t }</x>"))
        assert not nodes_of_type(expr, LetExpr)
        assert free_variables(expr) == {"b"}

    def test_let_used_as_path_root(self):
        expr = normalize(parse_xquery("let $t := $b/author return $t/last"))
        assert not nodes_of_type(expr, LetExpr)
        paths = nodes_of_type(expr, PathExpr)
        assert any([s.name for s in p.steps] == ["author", "last"] for p in paths)

    def test_nested_lets(self):
        expr = normalize(
            parse_xquery("let $a := $x/p return let $b := $a/q return $b/r")
        )
        assert not nodes_of_type(expr, LetExpr)

    def test_let_of_constructor_kept_when_used_as_root(self):
        expr = normalize(parse_xquery("let $t := <x/> return $t/y"))
        assert nodes_of_type(expr, LetExpr)


class TestWhereElimination:
    def test_where_becomes_conditional(self):
        expr = normalize(
            parse_xquery("for $b in $x/book where $b/price > 50 return $b/title")
        )
        loops = nodes_of_type(expr, ForExpr)
        assert all(loop.where is None for loop in loops)
        conditionals = nodes_of_type(expr, IfExpr)
        assert len(conditionals) == 1
        assert isinstance(conditionals[0].else_branch, EmptySequence)


class TestLoopPathExpansion:
    def test_multi_step_loop_becomes_nested_loops(self):
        expr = normalize(parse_xquery("for $b in $ROOT/bib/book return $b/@year"))
        loops = nodes_of_type(expr, ForExpr)
        # One hop loop over bib plus the original loop over book (the
        # attribute path in output position is also wrapped).
        sources = [loop.source for loop in loops if isinstance(loop.source, PathExpr)]
        assert any(len(source.steps) == 1 and source.steps[0].name == "bib" for source in sources)
        assert all(
            len(source.steps) == 1
            for source in sources
            if source.var != "b"
        )

    def test_single_step_loop_unchanged(self):
        expr = normalize(parse_xquery("for $t in $b/title return $t"))
        loops = nodes_of_type(expr, ForExpr)
        assert len(loops) == 1

    def test_descendant_source_not_expanded(self):
        expr = normalize(parse_xquery("for $a in $ROOT//author return $a"))
        loops = nodes_of_type(expr, ForExpr)
        assert len(loops) == 1


class TestOutputPathWrapping:
    def test_bare_output_path_wrapped_in_loop(self):
        expr = normalize(parse_xquery("<x>{ $b/title }</x>"))
        loops = nodes_of_type(expr, ForExpr)
        assert len(loops) == 1
        assert isinstance(loops[0].body, VarRef)

    def test_condition_paths_not_wrapped(self):
        expr = normalize(parse_xquery('if ($b/price > 3) then "x" else "y"'))
        assert not nodes_of_type(expr, ForExpr)

    def test_comparison_operands_not_wrapped(self):
        expr = normalize(parse_xquery("$b/price > 3"))
        assert not nodes_of_type(expr, ForExpr)


class TestSemanticsPreservation:
    @pytest.mark.parametrize(
        "query",
        [
            "for $b in $ROOT/bib/book where $b/price > 50 return $b/title",
            "let $books := $ROOT/bib/book return <x>{ $books/title }</x>",
            "<results>{ for $b in $ROOT/bib/book return <r>{ $b/title }{ $b/author }</r> }</results>",
            'for $b in $ROOT/bib/book where $b/@year = "2000" return <hit>{ $b/title }</hit>',
        ],
    )
    def test_normalized_query_gives_same_result(self, query, paper_document):
        tree = parse_tree(paper_document)
        original = parse_xquery(query)
        normalized = normalize(original)

        def render(items):
            from repro.xmlstream.serializer import serialize_tree

            return "".join(
                serialize_tree(item) if hasattr(item, "tag") else str(item) for item in items
            )

        assert render(evaluate_query_on_tree(original, tree)) == render(
            evaluate_query_on_tree(normalized, tree)
        )

    def test_normalization_is_idempotent(self, paper_q3):
        once = normalize(parse_xquery(paper_q3))
        twice = normalize(once)
        assert once == twice
