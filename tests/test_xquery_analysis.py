"""Unit tests for static analysis of XQuery ASTs."""

import pytest

from repro.xquery.analysis import (
    DOCUMENT_TYPE,
    WHOLE_SUBTREE,
    child_label_dependencies,
    depends_on_children,
    element_type_children,
    free_variables,
    fresh_variable,
    substitute_variable,
    variable_element_types,
)
from repro.xquery.ast import PathExpr, VarRef
from repro.xquery.parser import parse_xquery


class TestFreeVariables:
    def test_simple_reference(self):
        assert free_variables(parse_xquery("$x/a")) == {"x"}

    def test_loop_binds_its_variable(self):
        expr = parse_xquery("for $b in $x/book return $b/title")
        assert free_variables(expr) == {"x"}

    def test_where_clause_sees_binding(self):
        expr = parse_xquery("for $b in $x/book where $b/price > $y/limit return $b")
        assert free_variables(expr) == {"x", "y"}

    def test_let_binds(self):
        expr = parse_xquery("let $t := $x/title return ($t, $z)")
        assert free_variables(expr) == {"x", "z"}

    def test_constructor_content(self):
        expr = parse_xquery("<a>{ $p }{ $q/r }</a>")
        assert free_variables(expr) == {"p", "q"}

    def test_shadowing(self):
        expr = parse_xquery("for $x in $y/a return for $x in $x/b return $x")
        assert free_variables(expr) == {"y"}


class TestSubstitution:
    def test_substitute_variable_reference(self):
        expr = parse_xquery("($a, $b)")
        result = substitute_variable(expr, "a", VarRef("z"))
        assert free_variables(result) == {"z", "b"}

    def test_substitute_into_path_root(self):
        expr = parse_xquery("$t/last")
        result = substitute_variable(expr, "t", parse_xquery("$b/title"))
        assert result == parse_xquery("$b/title/last")

    def test_substitution_respects_shadowing(self):
        expr = parse_xquery("for $a in $x/p return $a")
        result = substitute_variable(expr, "a", VarRef("z"))
        assert result == expr

    def test_invalid_path_substitution_raises(self):
        expr = parse_xquery("$t/last")
        with pytest.raises(ValueError):
            substitute_variable(expr, "t", parse_xquery("<a/>"))

    def test_fresh_variables_are_unique(self):
        assert fresh_variable() != fresh_variable()


class TestChildLabelDependencies:
    def test_single_child_path(self):
        expr = parse_xquery("for $t in $b/title return $t")
        assert child_label_dependencies(expr, "b") == {"title"}

    def test_multiple_labels(self):
        expr = parse_xquery("($b/title, $b/author/last)")
        assert child_label_dependencies(expr, "b") == {"title", "author"}

    def test_attribute_access_is_free(self):
        expr = parse_xquery('$b/@year = "1994"')
        assert child_label_dependencies(expr, "b") == frozenset()

    def test_bare_variable_needs_whole_subtree(self):
        assert child_label_dependencies(parse_xquery("$b"), "b") == {WHOLE_SUBTREE}

    def test_descendant_step_needs_whole_subtree(self):
        assert child_label_dependencies(parse_xquery("$b//last"), "b") == {WHOLE_SUBTREE}

    def test_other_variables_do_not_contribute(self):
        expr = parse_xquery("($b/title, $c/author)")
        assert child_label_dependencies(expr, "b") == {"title"}
        assert child_label_dependencies(expr, "c") == {"author"}

    def test_shadowed_variable_not_counted(self):
        expr = parse_xquery("for $b in $b/inner return $b/deep")
        # The outer $b is only read through the loop source.
        assert child_label_dependencies(expr, "b") == {"inner"}

    def test_depends_on_children_helper(self):
        assert depends_on_children(parse_xquery("$b/title"), "b")
        assert not depends_on_children(parse_xquery("$b/@year"), "b")
        assert not depends_on_children(parse_xquery('"constant"'), "b")


class TestTypeInference:
    def test_document_variable_type(self):
        types = variable_element_types(parse_xquery("$ROOT/bib"), None)
        assert types["ROOT"] == DOCUMENT_TYPE

    def test_loop_variable_types(self, paper_dtd):
        expr = parse_xquery(
            "for $b in $ROOT/bib/book return for $a in $b/author return $a"
        )
        types = variable_element_types(expr, paper_dtd)
        assert types["b"] == "book"
        assert types["a"] == "author"

    def test_let_variable_type(self, paper_dtd):
        expr = parse_xquery("let $t := $ROOT/bib/book return $t/title")
        types = variable_element_types(expr, paper_dtd)
        assert types["t"] == "book"

    def test_untypable_variable_omitted(self, paper_dtd):
        expr = parse_xquery("for $x in $ROOT//book return $x")
        types = variable_element_types(expr, paper_dtd)
        assert types.get("x") == "book"
        expr2 = parse_xquery("for $x in ($a, $b) return $x")
        assert "x" not in variable_element_types(expr2, paper_dtd)

    def test_element_type_children(self, paper_dtd):
        assert element_type_children(paper_dtd, "book") == {
            "title", "author", "editor", "publisher", "price",
        }
        assert element_type_children(paper_dtd, DOCUMENT_TYPE) == {"bib"}
        assert element_type_children(paper_dtd, "nonexistent") == frozenset()
        assert element_type_children(None, "book") == frozenset()
