"""Unit tests for the absolute-to-relative path rewrite (join optimization)."""

import pytest

from repro.core.algebra import AlgebraicOptimizer
from repro.core.normalform import normalize
from repro.core.optimizer import compile_xquery
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.runtime.bdf import build_bdf
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import get_query
from repro.workloads.xmark import generate_auction_site
from repro.xquery.ast import PathExpr, walk
from repro.xquery.parser import parse_xquery

JOIN_QUERY = get_query("AUC-A3").xquery


def optimize(query, dtd, **flags):
    optimizer = AlgebraicOptimizer(dtd, **flags)
    return optimizer.optimize(normalize(parse_xquery(query))), optimizer.report


class TestRewriteRule:
    def test_join_paths_are_rerooted(self, auction_dtd):
        optimized, report = optimize(JOIN_QUERY, auction_dtd)
        assert report.relativized_paths >= 1
        # No remaining absolute path into closed_auctions: it is now rooted
        # at the loop variable bound to the (unique) site element.
        for node in walk(optimized):
            if isinstance(node, PathExpr) and node.var == "ROOT":
                labels = [getattr(step, "name", None) for step in node.steps]
                assert "closed_auctions" not in labels

    def test_rule_can_be_disabled(self, auction_dtd):
        _, report = optimize(JOIN_QUERY, auction_dtd, enable_path_relativization=False)
        assert report.relativized_paths == 0

    def test_non_unique_prefix_not_used(self, bib_dtd_strong):
        # books are not unique under bib, so a path cannot be re-rooted at a
        # book loop variable of a *different* loop.
        query = """
        <out>{ for $a in $ROOT/bib/book return
            for $t in $ROOT/bib/book/title return <x>{ $t }</x> }</out>
        """
        optimized, report = optimize(query, bib_dtd_strong)
        # The inner absolute path may be re-rooted at the unique bib element
        # (its hop variable) but never at $a (a book, not unique).
        for node in walk(optimized):
            if isinstance(node, PathExpr) and node.var == "a":
                assert [s.name for s in node.steps if hasattr(s, "name")] != ["title"]

    def test_queries_without_absolute_inner_paths_unchanged(self, bib_dtd_strong, paper_q3):
        _, report = optimize(paper_q3, bib_dtd_strong)
        assert report.relativized_paths == 0

    def test_report_summary_mentions_rule(self, auction_dtd):
        _, report = optimize(JOIN_QUERY, auction_dtd)
        assert "relativized paths" in report.summary()
        assert any("re-rooted" in note for note in report.notes)


class TestEndToEndEffect:
    @pytest.fixture(scope="class")
    def auction_document(self):
        return generate_auction_site(scale=0.2, seed=3)

    def test_bdf_buffers_only_joined_sections(self):
        compiled = compile_xquery(JOIN_QUERY, AUCTION_DTD)
        bdf = build_bdf(compiled.flux)
        site_specs = [spec for spec in bdf if spec.element_type == "site"]
        assert len(site_specs) == 1
        assert site_specs[0].labels == {"people", "closed_auctions"}
        assert not site_specs[0].whole_subtree

    def test_join_memory_below_document_size(self, auction_document):
        result = FluxEngine(AUCTION_DTD).execute(JOIN_QUERY, auction_document)
        dom = DomEngine(AUCTION_DTD).execute(JOIN_QUERY, auction_document)
        assert result.output == dom.output
        assert result.peak_buffer_bytes < 0.6 * dom.peak_buffer_bytes

    def test_ablation_costs_memory_but_not_correctness(self, auction_document):
        optimized = FluxEngine(AUCTION_DTD).execute(JOIN_QUERY, auction_document)
        conservative = FluxEngine(
            AUCTION_DTD, enable_path_relativization=False
        ).execute(JOIN_QUERY, auction_document)
        assert optimized.output == conservative.output
        assert optimized.peak_buffer_bytes < conservative.peak_buffer_bytes

    def test_results_match_reference_for_bib_join(self, paper_document):
        query = """
        <pairs>{ for $b in $ROOT/bib/book return
            for $c in $ROOT/bib/book
            where $b/publisher = $c/publisher and $b/@year != $c/@year
            return <pair>{ $b/title }{ $c/title }</pair> }</pairs>
        """
        from tests.conftest import PAPER_FIGURE1_DTD

        flux = FluxEngine(PAPER_FIGURE1_DTD).execute(query, paper_document)
        dom = DomEngine().execute(query, paper_document)
        assert flux.output == dom.output
