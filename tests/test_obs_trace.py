"""Spans, sinks, structured logs, profiling, and the output validators.

Unit coverage of the non-metrics halves of ``repro.obs``: the span
model (context-managed and pre-measured recording, trace/parent
propagation, error tagging), the two sinks, the JSON-lines logger, the
per-stage ``cProfile`` wrapper, and the tiny line validators that both
the tests and the CI smoke job use to judge emitted files.
"""

import json

from repro.obs import (
    JsonLinesSink,
    JsonLogger,
    MemoryLogger,
    MemorySink,
    StageProfiler,
    Tracer,
    new_span_id,
    new_trace_id,
)
from repro.obs.validate import (
    LOG_KEYS,
    TRACE_KEYS,
    validate_json_lines,
)


class TestTracer:
    def test_span_context_manager_emits_on_exit(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("pool.shard", worker=1) as span:
            span.set(index=3)
        (emitted,) = sink.spans
        assert emitted["name"] == "pool.shard"
        assert emitted["worker"] == 1
        assert emitted["index"] == 3
        assert emitted["duration_s"] >= 0
        assert emitted["parent_id"] is None
        assert len(emitted["trace_id"]) == 16

    def test_span_propagates_trace_and_parent_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        trace, parent = new_trace_id(), new_span_id()
        with tracer.span("pass.route", trace_id=trace, parent_id=parent):
            pass
        (emitted,) = sink.spans
        assert emitted["trace_id"] == trace
        assert emitted["parent_id"] == parent

    def test_span_tags_the_exception_type_on_error(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        try:
            with tracer.span("pass"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert sink.spans[0]["error"] == "ValueError"

    def test_record_pins_span_id_and_start(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        trace, pinned = new_trace_id(), new_span_id()
        emitted = tracer.record(
            "pass", trace, 0.25, start=123.0, span_id=pinned, queries=4
        )
        assert emitted["span_id"] == pinned
        assert emitted["start"] == 123.0
        assert emitted["duration_s"] == 0.25
        assert emitted["queries"] == 4
        assert sink.spans == [emitted]

    def test_memory_sink_drain_clears(self):
        sink = MemorySink()
        Tracer(sink).record("pass", new_trace_id(), 0.1)
        assert len(sink.drain()) == 1
        assert sink.drain() == []


class TestJsonLinesSink:
    def test_spans_land_as_valid_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonLinesSink(str(path)))
        trace = new_trace_id()
        with tracer.span("pool.shard", trace_id=trace):
            pass
        tracer.record("pass.route", trace, 0.01)
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert validate_json_lines(lines, TRACE_KEYS) == []
        assert {json.loads(line)["trace_id"] for line in lines} == {trace}

    def test_file_like_sinks_are_not_closed(self, tmp_path):
        import io

        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        Tracer(sink).record("pass", new_trace_id(), 0.1)
        sink.close()
        assert not stream.closed  # the caller owns streams it handed in


class TestJsonLogger:
    def test_events_are_valid_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = JsonLogger(str(path))
        logger.event("pass.start", queries=2)
        logger.event("pool.fault", worker=1, error="ValueError")
        logger.close()
        lines = path.read_text().splitlines()
        assert validate_json_lines(lines, LOG_KEYS) == []
        first = json.loads(lines[0])
        assert first["event"] == "pass.start"
        assert first["queries"] == 2
        assert "ts" in first

    def test_memory_logger_find(self):
        logger = MemoryLogger()
        logger.event("pass.start")
        logger.event("pass.finish", results=3)
        logger.event("pass.start")
        assert len(logger.find("pass.start")) == 2
        assert logger.find("pass.finish")[0]["results"] == 3

    def test_non_json_fields_are_stringified(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = JsonLogger(str(path))
        logger.event("pool.fault", error=ValueError("boom"))
        logger.close()
        assert json.loads(path.read_text())["error"] == "boom"


class TestValidators:
    def test_json_lines_validator_reports_bad_lines(self):
        problems = validate_json_lines(
            ["not json", json.dumps({"event": "x"})], LOG_KEYS
        )
        # Line 1 is unparseable; line 2 misses the "ts" key.
        assert len(problems) == 2
        assert "line 1" in problems[0]

    def test_blank_lines_are_ignored(self):
        line = json.dumps({"ts": 1.0, "event": "pass.start"})
        assert validate_json_lines([line, "", "  "], LOG_KEYS) == []


class TestStageProfiler:
    def test_profile_attributes_parse_stage(self):
        from repro.xmlstream.parser import parse_events

        profiler = StageProfiler()
        with profiler:
            list(parse_events("<bib><book><title>t</title></book></bib>"))
        assert profiler.passes == 1
        table = profiler.stage_table()
        assert table["parse"]["calls"] > 0
        assert table["parse"]["cumulative_s"] >= 0
        report = profiler.report()
        assert "per-stage profile (1 pass(es) profiled)" in report
        assert "parse" in report
        assert "xmlstream/parser" in report

    def test_profiler_accumulates_across_passes(self):
        from repro.xmlstream.parser import parse_events

        profiler = StageProfiler()
        for _ in range(3):
            with profiler:
                list(parse_events("<a><b/></a>"))
        assert profiler.passes == 3
