"""AsyncQueryService: coroutine ingestion over the inline scheduler.

Correctness bar unchanged: whatever the driver — worker threads, the inline
round-robin, or coroutines on an event loop — every query's output is
byte-identical to its solo ``FluxEngine`` run.  These tests drive real
event loops (``asyncio.run``) over chunked feeds, async document sources,
and failure paths.
"""

import asyncio
import io

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.errors import PassInProgressError, XMLSyntaxError
from repro.service import AsyncQueryService, PlanCache, QueryService
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query, queries_for_workload

from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3

TITLES_QUERY = "<titles>{ for $b in $ROOT/bib/book return $b/title }</titles>"


@pytest.fixture(scope="module")
def bib_document():
    return generate_bibliography(num_books=25, seed=2004)


def solo(query: str, document: str) -> str:
    return FluxEngine(BIB_DTD_STRONG).execute(query, document).output


class TestAsyncPass:
    def test_run_pass_matches_solo_for_the_catalogue(self, bib_document):
        specs = queries_for_workload("bib")
        service = AsyncQueryService(BIB_DTD_STRONG)
        for spec in specs:
            service.register(spec.xquery, key=spec.key)
        results = asyncio.run(service.run_pass(bib_document))
        for spec in specs:
            assert results[spec.key].output == solo(spec.xquery, bib_document), spec.key

    @pytest.mark.parametrize("chunk", [1, 57, 4096])
    def test_chunked_coroutine_feed_matches_solo(self, bib_document, chunk):
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")

        async def drive():
            shared_pass = service.open_pass()
            for start in range(0, len(bib_document), chunk):
                await shared_pass.feed(bib_document[start : start + chunk])
            return await shared_pass.finish()

        results = asyncio.run(drive())
        assert results["t"].output == solo(TITLES_QUERY, bib_document)

    def test_feed_yields_to_the_event_loop(self, bib_document):
        # A sibling coroutine must get scheduled between chunk feeds —
        # the whole point of the async front end.
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")
        ticks = []

        async def ticker():
            while True:
                ticks.append(len(ticks))
                await asyncio.sleep(0)

        async def drive():
            tick_task = asyncio.ensure_future(ticker())
            try:
                shared_pass = service.open_pass()
                for start in range(0, len(bib_document), 512):
                    await shared_pass.feed(bib_document[start : start + 512])
                return await shared_pass.finish()
            finally:
                tick_task.cancel()

        results = asyncio.run(drive())
        assert results["t"].output == solo(TITLES_QUERY, bib_document)
        assert len(ticks) >= len(bib_document) // 512

    def test_async_context_manager_finishes_and_aborts(self, bib_document):
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")

        async def clean():
            async with service.open_pass() as shared_pass:
                await shared_pass.feed(bib_document)
            return await shared_pass.finish()  # idempotent

        results = asyncio.run(clean())
        assert results["t"].output == solo(TITLES_QUERY, bib_document)

        async def failing():
            with pytest.raises(RuntimeError):
                async with service.open_pass() as shared_pass:
                    await shared_pass.feed("<bib>")
                    raise RuntimeError("caller failure")
            assert shared_pass.aborted

        asyncio.run(failing())
        assert service.service.active_pass is None

    def test_malformed_document_surfaces_and_frees_the_slot(self):
        service = AsyncQueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")

        async def drive():
            shared_pass = service.open_pass()
            await shared_pass.feed("<bib><book>")
            with pytest.raises(XMLSyntaxError):
                await shared_pass.finish()

        asyncio.run(drive())
        assert service.service.active_pass is None
        assert asyncio.run(service.run_pass(PAPER_DOCUMENT))["q3"].output

    def test_one_pass_at_a_time(self):
        service = AsyncQueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")

        async def drive():
            shared_pass = service.open_pass()
            with pytest.raises(PassInProgressError):
                service.open_pass()
            shared_pass.abort()

        asyncio.run(drive())


class TestAsyncServe:
    def test_serve_over_sync_iterable(self, bib_document):
        documents = [bib_document, generate_bibliography(num_books=7, seed=7)]
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")

        async def drive():
            return [outcome async for outcome in service.serve(documents)]

        served = asyncio.run(drive())
        assert [outcome.index for outcome in served] == [0, 1]
        for outcome, document in zip(served, documents):
            assert outcome.results["t"].output == solo(TITLES_QUERY, document)
        assert service.metrics.passes_completed == 2

    def test_serve_over_async_iterable_with_churn(self, bib_document):
        # Documents arrive through an asyncio queue (upload-style) and a
        # query is registered between passes.
        q1 = get_query("BIB-Q1").xquery
        other = generate_bibliography(num_books=9, seed=9)
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")

        async def sources():
            for document in [bib_document, other]:
                yield io.StringIO(document)

        async def drive():
            served = []
            async for outcome in service.serve(sources()):
                served.append(outcome)
                if outcome.index == 0:
                    service.register(q1, key="q1")
            return served

        served = asyncio.run(drive())
        assert set(served[0].results) == {"t"}
        assert set(served[1].results) == {"t", "q1"}
        assert served[1].results["q1"].output == solo(q1, other)

    def test_serve_empty_service_raises(self, bib_document):
        service = AsyncQueryService(BIB_DTD_STRONG)

        async def drive():
            async for _ in service.serve([bib_document]):
                pass

        with pytest.raises(ValueError, match="no queries registered"):
            asyncio.run(drive())

    def test_empty_service_error_does_not_consume_a_document(self, bib_document):
        # Catch, register, re-serve the same iterator: nothing was lost.
        documents = [bib_document, generate_bibliography(num_books=7, seed=7)]
        service = AsyncQueryService(BIB_DTD_STRONG)
        iterator = iter(documents)

        async def drive():
            served = []
            try:
                async for outcome in service.serve(iterator):
                    served.append(outcome)
            except ValueError:
                service.register(TITLES_QUERY, key="t")
                async for outcome in service.serve(iterator):
                    served.append(outcome)
            return served

        served = asyncio.run(drive())
        assert len(served) == len(documents)
        for outcome, document in zip(served, documents):
            assert outcome.results["t"].output == solo(TITLES_QUERY, document)

    def test_run_pass_over_async_chunk_feed(self, bib_document):
        # A document delivered as an async iterable of chunks (e.g. a
        # connection) feeds with an await point per chunk.
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")

        async def feed():
            for start in range(0, len(bib_document), 1024):
                await asyncio.sleep(0)
                yield bib_document[start : start + 1024]

        results = asyncio.run(service.run_pass(feed()))
        assert results["t"].output == solo(TITLES_QUERY, bib_document)


class TestAsyncPlumbing:
    def test_shares_a_plan_cache_with_sync_services(self):
        cache = PlanCache()
        QueryService(BIB_DTD_STRONG, plan_cache=cache).register(TITLES_QUERY)
        async_service = AsyncQueryService(BIB_DTD_STRONG, plan_cache=cache)
        registration = async_service.register(TITLES_QUERY)
        assert registration.from_cache
        assert cache.stats.hits == 1

    def test_registration_surface_matches_sync(self):
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register_all([TITLES_QUERY])
        assert len(service) == 1
        key = next(iter(service.registrations))
        service.unregister(key)
        assert len(service) == 0
        with pytest.raises(KeyError):
            service.unregister(key)

    def test_stats_summary_is_the_wrapped_services(self, bib_document):
        service = AsyncQueryService(BIB_DTD_STRONG)
        service.register(TITLES_QUERY, key="t")
        asyncio.run(service.run_pass(bib_document))
        summary = service.stats_summary()
        assert summary["passes_completed"] == 1
        assert summary["plan_cache"]["misses"] == 1
