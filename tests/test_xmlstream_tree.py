"""Unit tests for the in-memory XML tree and event/tree conversions."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import EndElement, StartElement, Text
from repro.xmlstream.parser import parse_events
from repro.xmlstream.tree import (
    XMLElement,
    XMLText,
    build_tree,
    parse_tree,
    tree_to_events,
)


@pytest.fixture
def sample_tree():
    return parse_tree(
        '<bib><book year="1994"><title>TCP/IP</title>'
        "<author>Stevens</author><price>65.95</price></book>"
        "<book year=\"2000\"><title>Data</title><author>Abiteboul</author></book></bib>"
    )


class TestTreeConstruction:
    def test_root_tag(self, sample_tree):
        assert sample_tree.tag == "bib"

    def test_child_elements_by_tag(self, sample_tree):
        assert len(sample_tree.child_elements("book")) == 2
        assert sample_tree.child_elements("missing") == []

    def test_child_elements_wildcard(self, sample_tree):
        assert len(sample_tree.child_elements("*")) == 2
        assert len(sample_tree.child_elements()) == 2

    def test_attributes(self, sample_tree):
        first = sample_tree.child_elements("book")[0]
        assert first.get("year") == "1994"
        assert first.get("missing") is None
        assert first.get("missing", "x") == "x"

    def test_string_value_concatenates_descendant_text(self, sample_tree):
        first = sample_tree.child_elements("book")[0]
        assert first.string_value() == "TCP/IPStevens65.95"

    def test_first_child(self, sample_tree):
        book = sample_tree.first_child("book")
        assert book is not None
        assert book.first_child("title").string_value() == "TCP/IP"
        assert book.first_child("nope") is None

    def test_descendants(self, sample_tree):
        titles = list(sample_tree.descendants("title"))
        assert [t.string_value() for t in titles] == ["TCP/IP", "Data"]
        all_elements = list(sample_tree.descendants())
        assert len(all_elements) == 7

    def test_iter_includes_self(self, sample_tree):
        assert next(iter(sample_tree.iter())) is sample_tree

    def test_node_count(self, sample_tree):
        assert sample_tree.node_count() == 8

    def test_parent_pointers(self, sample_tree):
        book = sample_tree.child_elements("book")[0]
        assert book.parent is sample_tree
        assert book.child_elements("title")[0].parent is book


class TestTreeMutation:
    def test_append_text_merges_adjacent(self):
        element = XMLElement("a")
        element.append_text("one")
        element.append_text(" two")
        assert len(element.children) == 1
        assert element.string_value() == "one two"

    def test_deep_equal(self):
        first = parse_tree("<a x='1'><b>t</b></a>")
        second = parse_tree('<a x="1"><b>t</b></a>')
        third = parse_tree('<a x="2"><b>t</b></a>')
        assert first.deep_equal(second)
        assert not first.deep_equal(third)

    def test_size_estimate_grows_with_content(self):
        small = parse_tree("<a>x</a>")
        large = parse_tree("<a>" + "x" * 1000 + "</a>")
        assert large.size_estimate() > small.size_estimate() + 900


class TestEventConversion:
    def test_round_trip_through_events(self, sample_tree):
        rebuilt = build_tree(tree_to_events(sample_tree, document=True))
        assert rebuilt.deep_equal(sample_tree)

    def test_tree_to_events_without_document_wrapper(self, sample_tree):
        events = list(tree_to_events(sample_tree))
        assert isinstance(events[0], StartElement)
        assert isinstance(events[-1], EndElement)

    def test_build_tree_rejects_unbalanced_stream(self):
        with pytest.raises(XMLSyntaxError):
            build_tree([StartElement("a"), EndElement("b")])

    def test_build_tree_rejects_missing_root(self):
        with pytest.raises(XMLSyntaxError):
            build_tree([Text("only text")])

    def test_build_tree_rejects_unclosed(self):
        with pytest.raises(XMLSyntaxError):
            build_tree([StartElement("a")])

    def test_text_node_equality(self):
        assert XMLText("a") == XMLText("a")
        assert XMLText("a") != XMLText("b")
