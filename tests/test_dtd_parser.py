"""Unit tests for the DTD parser and content-model AST."""

import pytest

from repro.errors import DTDSyntaxError
from repro.dtd.model import (
    ANY,
    EMPTY,
    INFINITY,
    PCDATA,
    Choice,
    Name,
    OneOrMore,
    Optional_,
    Sequence,
    ZeroOrMore,
)
from repro.dtd.parser import parse_dtd, parse_element_decl


class TestContentModelParsing:
    def test_sequence_model(self):
        decl = parse_element_decl("book", "(title,author,price)")
        assert isinstance(decl.content, Sequence)
        assert decl.child_labels() == {"title", "author", "price"}

    def test_choice_model(self):
        decl = parse_element_decl("book", "(title|author)")
        assert isinstance(decl.content, Choice)

    def test_repetition_suffixes(self):
        star = parse_element_decl("bib", "(book)*").content
        plus = parse_element_decl("bib", "(book)+").content
        optional = parse_element_decl("bib", "(book)?").content
        assert isinstance(star, ZeroOrMore)
        assert isinstance(plus, OneOrMore)
        assert isinstance(optional, Optional_)

    def test_figure1_model(self):
        decl = parse_element_decl("book", "(title,(author+|editor+),publisher,price)")
        assert decl.child_labels() == {"title", "author", "editor", "publisher", "price"}
        assert not decl.mixed

    def test_pcdata_only(self):
        decl = parse_element_decl("title", "(#PCDATA)")
        assert decl.content is PCDATA
        assert decl.allows_text()
        assert decl.child_labels() == frozenset()

    def test_mixed_content(self):
        decl = parse_element_decl("para", "(#PCDATA|em|strong)*")
        assert decl.mixed
        assert decl.allows_text()
        assert decl.child_labels() == {"em", "strong"}

    def test_empty_and_any(self):
        assert parse_element_decl("br", "EMPTY").content is EMPTY
        assert parse_element_decl("x", "ANY").content is ANY

    def test_nested_groups(self):
        decl = parse_element_decl("a", "((b,c)|(d,e))*")
        assert decl.child_labels() == {"b", "c", "d", "e"}

    def test_mixing_separators_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_element_decl("a", "(b,c|d)")

    def test_pcdata_in_wrong_position_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_element_decl("a", "(b,#PCDATA)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_element_decl("a", "(b) junk")


class TestOccurrenceAnalysis:
    def test_max_count_sequence(self):
        decl = parse_element_decl("a", "(b,c,b)")
        assert decl.content.max_count("b") == 2
        assert decl.content.max_count("c") == 1
        assert decl.content.max_count("z") == 0

    def test_max_count_choice(self):
        decl = parse_element_decl("a", "(b|c)")
        assert decl.content.max_count("b") == 1
        assert decl.content.min_count("b") == 0

    def test_max_count_star_is_infinite(self):
        decl = parse_element_decl("a", "(b)*")
        assert decl.content.max_count("b") == INFINITY
        assert decl.content.min_count("b") == 0

    def test_plus_min_count(self):
        decl = parse_element_decl("a", "(b)+")
        assert decl.content.min_count("b") == 1

    def test_optional_counts(self):
        decl = parse_element_decl("a", "(b?)")
        assert decl.content.max_count("b") == 1
        assert decl.content.min_count("b") == 0

    def test_nullable(self):
        assert parse_element_decl("a", "(b*)").content.nullable()
        assert not parse_element_decl("a", "(b)").content.nullable()
        assert parse_element_decl("a", "(b?,c*)").content.nullable()
        assert not parse_element_decl("a", "(b?,c)").content.nullable()


class TestDTDDocument:
    def test_parse_full_dtd(self, bib_dtd_strong):
        assert bib_dtd_strong.root == "bib"
        assert set(bib_dtd_strong.element_names) >= {"bib", "book", "title", "author", "price"}

    def test_root_inference_prefers_never_child(self):
        dtd = parse_dtd("<!ELEMENT b (c)><!ELEMENT a (b)*><!ELEMENT c (#PCDATA)>")
        assert dtd.root == "a"

    def test_explicit_root_override(self):
        dtd = parse_dtd("<!ELEMENT a (b)*><!ELEMENT b (#PCDATA)>", root="a")
        assert dtd.root == "a"

    def test_unknown_root_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a (b)*><!ELEMENT b (#PCDATA)>", root="zzz")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a (b)><!ELEMENT a (c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")

    def test_empty_dtd_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!-- nothing here -->")

    def test_attlist_declarations_recorded(self, bib_dtd_strong):
        attributes = {(a.element, a.name) for a in bib_dtd_strong.attributes}
        assert ("book", "year") in attributes

    def test_comments_inside_dtd_ignored(self):
        dtd = parse_dtd("<!-- a --><!ELEMENT a (b)*><!-- b --><!ELEMENT b (#PCDATA)>")
        assert dtd.root == "a"

    def test_undeclared_children_reported(self):
        dtd = parse_dtd("<!ELEMENT a (b,c)*><!ELEMENT b (#PCDATA)>")
        assert dtd.undeclared_children() == {"c"}

    def test_reachable_elements(self, bib_dtd_strong):
        assert "author" in bib_dtd_strong.reachable_elements()

    def test_unknown_element_lookup_raises(self, bib_dtd_strong):
        with pytest.raises(DTDSyntaxError):
            bib_dtd_strong.element("nope")

    def test_to_dtd_syntax_round_trips(self, bib_dtd_strong):
        text = bib_dtd_strong.to_dtd_syntax()
        reparsed = parse_dtd(text)
        assert reparsed.root == bib_dtd_strong.root
        assert set(reparsed.element_names) == set(bib_dtd_strong.element_names)
