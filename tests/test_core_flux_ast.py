"""Unit tests for the FluX AST and its pretty-printer."""

import pytest

from repro.core.flux import (
    FBufferedExpr,
    FConstructor,
    FCopyVar,
    FIf,
    FluxQuery,
    FProcessStream,
    FSequence,
    FText,
    OnFirstHandler,
    OnHandler,
    flux_sequence,
    walk_flux,
)
from repro.xquery.parser import parse_xquery


@pytest.fixture
def example_stream():
    return FProcessStream(
        "book",
        "book",
        (
            OnHandler("title", "t", FCopyVar("t")),
            OnFirstHandler(
                frozenset({"title", "author"}),
                FBufferedExpr(parse_xquery("for $a in $book/author return $a")),
            ),
        ),
    )


class TestStructure:
    def test_handler_accessors(self, example_stream):
        assert len(example_stream.on_handlers()) == 1
        assert len(example_stream.on_first_handlers()) == 1
        assert example_stream.on_handlers()[0].label == "title"

    def test_walk_visits_all_nodes(self, example_stream):
        body = FConstructor("result", (), example_stream)
        nodes = list(walk_flux(body))
        assert any(isinstance(node, FProcessStream) for node in nodes)
        assert any(isinstance(node, FCopyVar) for node in nodes)
        assert any(isinstance(node, FBufferedExpr) for node in nodes)

    def test_flux_sequence_flattens(self):
        sequence = flux_sequence([FText("a"), FSequence((FText("b"), FText("c")))])
        assert isinstance(sequence, FSequence)
        assert len(sequence.items) == 3

    def test_flux_sequence_unwraps_singleton(self):
        assert flux_sequence([FText("only")]) == FText("only")

    def test_process_streams_listing(self, example_stream):
        query = FluxQuery(FConstructor("r", (), example_stream))
        assert query.process_streams() == [example_stream]


class TestPrettyPrinter:
    def test_paper_like_rendering(self, example_stream):
        query = FluxQuery(FConstructor("result", (("kind", "demo"),), example_stream))
        text = query.to_flux_syntax()
        assert '<result kind="demo"> {' in text
        assert "process-stream $book:" in text
        assert "on title as $t return {" in text
        assert "on-first past(author,title) return {" in text
        assert "{ $t }" in text

    def test_if_and_text_rendering(self):
        body = FIf(
            parse_xquery('$b/@year > 1991'),
            FText("recent"),
            FSequence(()),
        )
        text = FluxQuery(body).to_flux_syntax()
        assert "if ($b/@year > 1991)" in text
        assert "text 'recent'" in text

    def test_empty_sequence_renders(self):
        assert "()" in FluxQuery(FSequence(())).to_flux_syntax()
