"""Unit tests for the end-to-end optimizer pipeline."""

import pytest

from repro.core.optimizer import OptimizerPipeline, compile_xquery
from repro.errors import XQuerySyntaxError


class TestPipeline:
    def test_compile_returns_all_stages(self, paper_dtd, paper_q3):
        result = compile_xquery(paper_q3, paper_dtd)
        assert result.parsed is not None
        assert result.normalized is not None
        assert result.optimized is not None
        assert result.flux is not None
        assert result.is_safe
        assert result.optimize_seconds >= 0

    def test_compile_records_per_stage_timings(self, paper_dtd, paper_q3):
        result = compile_xquery(paper_q3, paper_dtd)
        assert set(result.stage_seconds) == {
            "parse", "normalize", "optimize", "schedule", "safety"
        }
        assert all(seconds >= 0 for seconds in result.stage_seconds.values())
        # The stages partition compile(): their sum cannot exceed the total.
        assert sum(result.stage_seconds.values()) <= result.optimize_seconds

    def test_compile_accepts_dtd_text(self, paper_q3):
        from tests.conftest import PAPER_FIGURE1_DTD

        result = compile_xquery(paper_q3, PAPER_FIGURE1_DTD)
        assert result.dtd is not None
        assert result.dtd.root == "bib"

    def test_compile_accepts_parsed_ast(self, paper_dtd, paper_q3):
        from repro.xquery.parser import parse_xquery

        result = compile_xquery(parse_xquery(paper_q3), paper_dtd)
        assert result.is_safe

    def test_compile_without_dtd(self, paper_q3):
        result = compile_xquery(paper_q3, None)
        assert result.is_safe
        assert result.scheduling_report.buffered_handlers >= 1

    def test_describe_contains_stages(self, paper_dtd, paper_q3):
        description = compile_xquery(paper_q3, paper_dtd).describe()
        assert "XQuery (normalized)" in description
        assert "FluX" in description
        assert "process-stream" in description

    def test_syntax_errors_propagate(self, paper_dtd):
        with pytest.raises(XQuerySyntaxError):
            compile_xquery("for $b in return", paper_dtd)

    def test_strong_vs_weak_dtd_changes_schedule(self, paper_dtd, paper_weak_dtd, paper_q3):
        strong = compile_xquery(paper_q3, paper_dtd)
        weak = compile_xquery(paper_q3, paper_weak_dtd)
        assert strong.scheduling_report.buffered_handlers == 0
        assert weak.scheduling_report.buffered_handlers == 1

    def test_flux_syntax_matches_paper_shape_weak(self, paper_weak_dtd, paper_q3):
        text = compile_xquery(paper_q3, paper_weak_dtd).flux.to_flux_syntax()
        assert "on-first past(author,title)" in text
        assert "on title as" in text

    def test_flux_syntax_matches_paper_shape_strong(self, paper_dtd, paper_q3):
        text = compile_xquery(paper_q3, paper_dtd).flux.to_flux_syntax()
        assert "on-first" not in text
        assert "on author as" in text


class TestAblationFlags:
    def test_disable_order_constraints(self, paper_dtd, paper_q3):
        pipeline = OptimizerPipeline(paper_dtd, use_order_constraints=False)
        result = pipeline.compile(paper_q3)
        assert result.scheduling_report.buffered_handlers >= 1

    def test_disable_loop_merging(self, paper_dtd):
        query = """
        <out>{ for $b in $ROOT/bib/book return
          <e>{ for $x in $b/publisher return $x }{ for $x in $b/publisher return $x }</e> }</out>
        """
        with_merge = OptimizerPipeline(paper_dtd).compile(query)
        without_merge = OptimizerPipeline(paper_dtd, enable_loop_merging=False).compile(query)
        assert with_merge.algebra_report.merged_loops == 1
        assert without_merge.algebra_report.merged_loops == 0

    def test_disable_conditional_elimination(self, paper_dtd):
        query = """
        <out>{ for $b in $ROOT/bib/book return
          if ($b/author = "x" and $b/editor = "x") then <y/> else () }</out>
        """
        on = OptimizerPipeline(paper_dtd).compile(query)
        off = OptimizerPipeline(paper_dtd, enable_conditional_elimination=False).compile(query)
        assert on.algebra_report.eliminated_conditionals == 1
        assert off.algebra_report.eliminated_conditionals == 0
