"""Unit tests for the workload generators and query catalogue."""

import pytest

from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate_events
from repro.errors import WorkloadError
from repro.workloads.bibgen import BibliographyGenerator, generate_bibliography
from repro.workloads.dtds import (
    AUCTION_DTD,
    BIB_DTD_STRONG,
    BIB_DTD_WEAK,
    auction_dtd,
    bib_dtd_strong,
    bib_dtd_weak,
)
from repro.workloads.queries import (
    ALL_QUERIES,
    QuerySpec,
    get_query,
    queries_for_workload,
)
from repro.workloads.xmark import AuctionGenerator, generate_auction_site
from repro.xmlstream.parser import parse_events
from repro.xquery.parser import parse_xquery


class TestDTDCatalogue:
    def test_dtds_parse(self):
        assert bib_dtd_strong().root == "bib"
        assert bib_dtd_weak().root == "bib"
        assert auction_dtd().root == "site"

    def test_strong_dtd_has_paper_constraints(self):
        constraints = bib_dtd_strong().constraints()
        assert constraints.order_holds("book", "title", "author")
        assert constraints.at_most_once("book", "publisher")
        assert constraints.mutually_exclusive("book", "author", "editor")

    def test_weak_dtd_has_no_order_constraint(self):
        constraints = bib_dtd_weak().constraints()
        assert not constraints.order_holds("book", "title", "author")

    def test_auction_dtd_orders_sections(self):
        constraints = auction_dtd().constraints()
        assert constraints.order_holds("site", "people", "closed_auctions")
        assert constraints.order_holds("open_auction", "initial", "current")


class TestBibliographyGenerator:
    def test_deterministic_for_same_seed(self):
        assert generate_bibliography(10, seed=3) == generate_bibliography(10, seed=3)
        assert generate_bibliography(10, seed=3) != generate_bibliography(10, seed=4)

    def test_document_counts(self):
        document = generate_bibliography(num_books=7)
        assert document.count("<book ") == 7

    def test_strong_documents_validate(self):
        document = generate_bibliography(num_books=30, seed=5)
        assert validate_events(parse_events(document), bib_dtd_strong()) > 0

    def test_weak_documents_validate_against_weak_dtd(self):
        document = generate_bibliography(num_books=30, seed=5, conform_to="weak")
        assert validate_events(parse_events(document), bib_dtd_weak()) > 0

    def test_size_scales_linearly(self):
        small = len(generate_bibliography(num_books=50))
        large = len(generate_bibliography(num_books=200))
        assert 3 < large / small < 5

    def test_books_for_target_size(self):
        books = BibliographyGenerator.books_for_target_size(100_000)
        document = generate_bibliography(num_books=books)
        assert 0.5 < len(document) / 100_000 < 2.0

    def test_editor_fraction_zero_has_no_editors(self):
        document = generate_bibliography(num_books=40, editor_fraction=0.0)
        assert "<editor>" not in document

    def test_doctype_embedding(self):
        generator = BibliographyGenerator(num_books=1, include_doctype=True)
        assert generator.generate().startswith("<!DOCTYPE bib [")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_books": -1},
            {"conform_to": "other"},
            {"editor_fraction": 1.5},
            {"max_authors": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            BibliographyGenerator(**kwargs)


class TestAuctionGenerator:
    def test_deterministic(self):
        assert generate_auction_site(0.2, seed=1) == generate_auction_site(0.2, seed=1)

    def test_documents_validate(self):
        document = generate_auction_site(scale=0.2, seed=2)
        assert validate_events(parse_events(document), auction_dtd()) > 0

    def test_scale_controls_size(self):
        small = len(generate_auction_site(scale=0.2))
        large = len(generate_auction_site(scale=1.0))
        assert large > 3 * small

    def test_explicit_counts(self):
        generator = AuctionGenerator(items=3, people=2, open_auctions=1, closed_auctions=1)
        document = generator.generate()
        assert document.count("<item ") == 3
        assert document.count("<person ") == 2

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            AuctionGenerator(scale=0)

    def test_references_point_to_existing_ids(self):
        document = generate_auction_site(scale=0.1, seed=9)
        from repro.xmlstream.tree import parse_tree

        tree = parse_tree(document)
        people = {p.get("id") for p in tree.descendants("person")}
        buyers = {b.get("person") for b in tree.descendants("buyer")}
        assert buyers <= people


class TestQueryCatalogue:
    def test_catalogue_size(self):
        assert len(queries_for_workload("bib")) == 6
        assert len(queries_for_workload("auction")) == 4

    def test_all_queries_parse(self):
        for spec in ALL_QUERIES.values():
            parse_xquery(spec.xquery)

    def test_expected_behaviour_values(self):
        assert all(
            spec.expected_behaviour in ("streaming", "bounded", "join")
            for spec in ALL_QUERIES.values()
        )

    def test_get_query(self):
        spec = get_query("BIB-Q3")
        assert isinstance(spec, QuerySpec)
        assert "result" in spec.xquery

    def test_unknown_query_raises(self):
        with pytest.raises(KeyError):
            get_query("NOPE-Q9")

    def test_bib_queries_compile_against_strong_dtd(self):
        from repro.core.optimizer import compile_xquery

        for spec in queries_for_workload("bib"):
            result = compile_xquery(spec.xquery, BIB_DTD_STRONG)
            assert result.is_safe, spec.key

    def test_auction_queries_compile_against_auction_dtd(self):
        from repro.core.optimizer import compile_xquery

        for spec in queries_for_workload("auction"):
            result = compile_xquery(spec.xquery, AUCTION_DTD)
            assert result.is_safe, spec.key

    def test_streaming_queries_do_not_buffer(self, small_bibliography):
        from repro.engines.flux_engine import FluxEngine

        engine = FluxEngine(BIB_DTD_STRONG)
        for spec in queries_for_workload("bib"):
            if spec.expected_behaviour != "streaming":
                continue
            result = engine.execute(spec.xquery, small_bibliography)
            assert result.peak_buffer_bytes == 0, spec.key
