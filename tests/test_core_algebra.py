"""Unit tests for the algebraic optimizer (Section 3.1 of the paper)."""

import pytest

from repro.core.algebra import AlgebraicOptimizer, optimize_query
from repro.core.normalform import normalize
from repro.xquery.ast import ForExpr, IfExpr, SequenceExpr, walk
from repro.xquery.parser import parse_xquery
from repro.xmlstream.tree import parse_tree
from repro.xquery.evaluator import evaluate_query_on_tree
from repro.xmlstream.serializer import serialize_tree


def nodes_of_type(expr, node_type):
    return [node for node in walk(expr) if isinstance(node, node_type)]


def optimize(query, dtd, **flags):
    normalized = normalize(parse_xquery(query))
    return optimize_query(normalized, dtd, **flags)


#: The paper's Section 3.1 example: two consecutive loops over $book/publisher.
MERGE_QUERY = """
<out>
{ for $book in $ROOT/bib/book return
  <entry>
    { for $x in $book/publisher return <p1>{ $x }</p1> }
    { for $x in $book/publisher return <p2>{ $x }</p2> }
  </entry> }
</out>
"""

#: The paper's unsatisfiable conditional (author and editor cannot co-occur).
UNSAT_QUERY = """
<out>
{ for $book in $ROOT/bib/book return
  if ($book/author = "Goedel" and $book/editor = "Goedel")
  then <hit>{ $book/title }</hit>
  else () }
</out>
"""


class TestLoopMerging:
    def test_consecutive_publisher_loops_merged(self, paper_dtd):
        optimized, report = optimize(MERGE_QUERY, paper_dtd)
        assert report.merged_loops == 1
        publisher_loops = [
            loop
            for loop in nodes_of_type(optimized, ForExpr)
            if getattr(loop.source, "steps", None)
            and loop.source.steps[-1].name == "publisher"
        ]
        assert len(publisher_loops) == 1

    def test_loops_over_unbounded_label_not_merged(self, paper_dtd):
        query = """
        <out>
        { for $book in $ROOT/bib/book return
          <entry>
            { for $x in $book/author return <a1>{ $x }</a1> }
            { for $x in $book/author return <a2>{ $x }</a2> }
          </entry> }
        </out>
        """
        optimized, report = optimize(query, paper_dtd)
        assert report.merged_loops == 0

    def test_merging_disabled_by_flag(self, paper_dtd):
        _, report = optimize(MERGE_QUERY, paper_dtd, enable_loop_merging=False)
        assert report.merged_loops == 0

    def test_no_merging_without_dtd(self):
        _, report = optimize(MERGE_QUERY, None)
        assert report.merged_loops == 0

    def test_merged_query_produces_same_result(self, paper_dtd, paper_document):
        tree = parse_tree(paper_document)
        normalized = normalize(parse_xquery(MERGE_QUERY))
        optimized, _ = optimize_query(normalized, paper_dtd)

        def render(items):
            return "".join(serialize_tree(i) if hasattr(i, "tag") else str(i) for i in items)

        assert render(evaluate_query_on_tree(normalized, tree)) == render(
            evaluate_query_on_tree(optimized, tree)
        )

    def test_loops_with_different_sources_not_merged(self, paper_dtd):
        query = """
        <out>
        { for $book in $ROOT/bib/book return
          <entry>
            { for $x in $book/publisher return <p>{ $x }</p> }
            { for $x in $book/price return <q>{ $x }</q> }
          </entry> }
        </out>
        """
        _, report = optimize(query, paper_dtd)
        assert report.merged_loops == 0


class TestConditionalElimination:
    def test_unsatisfiable_conditional_removed(self, paper_dtd):
        optimized, report = optimize(UNSAT_QUERY, paper_dtd)
        assert report.eliminated_conditionals == 1
        assert not nodes_of_type(optimized, IfExpr)

    def test_satisfiable_conditional_kept(self, paper_dtd):
        query = """
        <out>
        { for $book in $ROOT/bib/book return
          if ($book/author = "Goedel" and $book/publisher = "X")
          then <hit/> else () }
        </out>
        """
        optimized, report = optimize(query, paper_dtd)
        assert report.eliminated_conditionals == 0
        assert nodes_of_type(optimized, IfExpr)

    def test_condition_on_impossible_label_removed(self, paper_dtd):
        query = """
        <out>
        { for $book in $ROOT/bib/book return
          if ($book/chapter = "1") then <hit/> else () }
        </out>
        """
        _, report = optimize(query, paper_dtd)
        assert report.eliminated_conditionals == 1

    def test_elimination_disabled_by_flag(self, paper_dtd):
        _, report = optimize(UNSAT_QUERY, paper_dtd, enable_conditional_elimination=False)
        assert report.eliminated_conditionals == 0

    def test_disjunctions_are_not_analyzed(self, paper_dtd):
        query = """
        <out>
        { for $book in $ROOT/bib/book return
          if ($book/author = "x" or $book/editor = "x") then <hit/> else () }
        </out>
        """
        _, report = optimize(query, paper_dtd)
        assert report.eliminated_conditionals == 0

    def test_weak_dtd_does_not_allow_elimination(self, paper_weak_dtd):
        # The Section 2 weak DTD (title|author)* has no editor label at all,
        # so a condition requiring an editor child can also be eliminated.
        _, report = optimize(UNSAT_QUERY, paper_weak_dtd)
        assert report.eliminated_conditionals == 1

    def test_unsatisfiable_query_returns_empty_everywhere(self, paper_dtd, paper_document):
        tree = parse_tree(paper_document)
        normalized = normalize(parse_xquery(UNSAT_QUERY))
        optimized, _ = optimize_query(normalized, paper_dtd)
        original_items = evaluate_query_on_tree(normalized, tree)
        optimized_items = evaluate_query_on_tree(optimized, tree)
        assert serialize_tree(original_items[0]) == serialize_tree(optimized_items[0]) == "<out/>"


class TestSimplification:
    def test_empty_branches_collapse(self, paper_dtd):
        query = "<out>{ for $b in $ROOT/bib/book return if ($b/chapter = \"1\") then () else () }</out>"
        optimized, report = optimize(query, paper_dtd)
        assert not nodes_of_type(optimized, ForExpr)
        assert report.simplifications >= 1

    def test_report_summary_mentions_counts(self, paper_dtd):
        _, report = optimize(UNSAT_QUERY, paper_dtd)
        assert "eliminated conditionals: 1" in report.summary()
        assert report.notes
