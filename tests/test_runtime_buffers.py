"""Unit tests for the buffer manager and stream-scope adapter."""

import pytest

from repro.errors import BufferError_
from repro.runtime.buffers import BufferManager, ScopeBuffers, StreamScopeNode
from repro.runtime.stats import RuntimeStats
from repro.xmlstream.tree import parse_tree


def make_scope(manager=None):
    manager = manager or BufferManager()
    buffers = ScopeBuffers(manager)
    return manager, buffers


class TestBufferManager:
    def test_grow_and_release_track_peak(self):
        manager = BufferManager()
        manager.grow(100)
        manager.grow(50)
        assert manager.current_bytes == 150
        assert manager.peak_bytes == 150
        manager.release(120)
        assert manager.current_bytes == 30
        assert manager.peak_bytes == 150

    def test_account_tree_counts_nodes_and_bytes(self):
        stats = RuntimeStats()
        manager = BufferManager(stats)
        tree = parse_tree("<a><b>hello</b><c>world</c></a>")
        size = manager.account_tree(tree)
        assert size == tree.size_estimate()
        assert stats.buffered_nodes == 3
        assert manager.peak_bytes == size

    def test_negative_amounts_rejected(self):
        manager = BufferManager()
        with pytest.raises(BufferError_):
            manager.grow(-1)
        with pytest.raises(BufferError_):
            manager.release(-1)

    def test_shared_stats_across_managers(self):
        stats = RuntimeStats()
        first = BufferManager(stats)
        second = BufferManager(stats)
        first.grow(100)
        second.grow(200)
        assert stats.peak_buffer_bytes == 300


class TestScopeBuffers:
    def test_add_child_and_read_back(self):
        manager, buffers = make_scope()
        title = parse_tree("<title>T</title>")
        buffers.add_child("title", title)
        assert buffers.children_for("title") == [title]
        assert buffers.children_for("author") == []
        assert buffers.buffered_bytes > 0
        assert manager.current_bytes == buffers.buffered_bytes

    def test_close_releases_bytes(self):
        manager, buffers = make_scope()
        buffers.add_child("x", parse_tree("<x>data</x>"))
        held = manager.current_bytes
        assert held > 0
        buffers.close()
        assert manager.current_bytes == 0
        assert manager.peak_bytes == held

    def test_close_is_idempotent_and_blocks_further_use(self):
        _, buffers = make_scope()
        buffers.close()
        buffers.close()
        with pytest.raises(BufferError_):
            buffers.add_child("x", parse_tree("<x/>"))

    def test_incremental_full_element(self):
        manager, buffers = make_scope()
        buffers.ensure_full_element("book", {"year": "2000"})
        buffers.append_full_child(parse_tree("<title>T</title>"))
        buffers.append_full_text("loose text")
        element = buffers.full_element
        assert element.tag == "book"
        assert element.get("year") == "2000"
        assert element.string_value() == "Tloose text"
        assert manager.current_bytes == buffers.buffered_bytes > 0

    def test_append_full_without_ensure_raises(self):
        _, buffers = make_scope()
        with pytest.raises(BufferError_):
            buffers.append_full_child(parse_tree("<x/>"))
        with pytest.raises(BufferError_):
            buffers.append_full_text("x")


class TestStreamScopeNode:
    def test_label_buffer_navigation(self):
        _, buffers = make_scope()
        buffers.add_child("author", parse_tree("<author><last>K</last></author>"))
        buffers.add_child("author", parse_tree("<author><last>S</last></author>"))
        buffers.add_child("title", parse_tree("<title>T</title>"))
        node = StreamScopeNode("book", {"year": "2004"}, buffers)
        assert node.tag == "book"
        assert node.get("year") == "2004"
        assert len(node.child_elements("author")) == 2
        assert len(node.child_elements()) == 3
        assert node.first_child("title").string_value() == "T"
        assert [d.tag for d in node.descendants("last")] == ["K", "K"] or len(
            list(node.descendants("last"))
        ) == 2

    def test_full_element_takes_precedence(self):
        _, buffers = make_scope()
        buffers.ensure_full_element("book", {})
        buffers.append_full_child(parse_tree("<title>Full</title>"))
        node = StreamScopeNode("book", {}, buffers)
        assert [c.string_value() for c in node.child_elements("title")] == ["Full"]
        assert node.string_value() == "Full"

    def test_to_element_materializes_buffered_children(self):
        _, buffers = make_scope()
        buffers.add_child("title", parse_tree("<title>T</title>"))
        node = StreamScopeNode("book", {"year": "1999"}, buffers)
        element = node.to_element()
        assert element.tag == "book"
        assert element.get("year") == "1999"
        assert element.child_elements("title")[0].string_value() == "T"

    def test_string_value_over_label_buffers(self):
        _, buffers = make_scope()
        buffers.add_child("a", parse_tree("<a>x</a>"))
        buffers.add_child("b", parse_tree("<b>y</b>"))
        node = StreamScopeNode("p", {}, buffers)
        assert node.string_value() == "xy"
        assert node.node_count() == 3
        assert node.size_estimate() == buffers.buffered_bytes
