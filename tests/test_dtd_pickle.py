"""Pickle round-trips of the DTD content-model layer.

The content particles are frozen dataclasses with ``__slots__`` — the
combination default pickling cannot restore (slot state comes back through
``setattr``, which frozen dataclasses forbid).  Plan shipping to worker
processes and plan-cache snapshots both pickle compiled plans, and every
plan embeds its DTD, so every particle kind must round-trip — and the
three special models must come back as *the* module singletons, because
``ElementDecl`` renders (and therefore fingerprints) by identity.
"""

import pickle

import pytest

from repro.dtd.model import (
    ANY,
    EMPTY,
    PCDATA,
    AttributeDecl,
    Choice,
    ElementDecl,
    Name,
    OneOrMore,
    Optional_,
    Sequence,
    ZeroOrMore,
)
from repro.dtd.parser import parse_dtd
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG, BIB_DTD_WEAK

#: One exemplar of every particle kind, nesting included.
PARTICLES = [
    Name("title"),
    Sequence((Name("a"), Name("b"), Name("c"))),
    Choice((Name("author"), Name("editor"))),
    ZeroOrMore(Name("book")),
    OneOrMore(Choice((Name("x"), Name("y")))),
    Optional_(Sequence((Name("p"), Optional_(Name("q"))))),
    Sequence((Name("title"), Choice((OneOrMore(Name("author")),
                                     OneOrMore(Name("editor")))),
              ZeroOrMore(Name("price")))),
    PCDATA,
    EMPTY,
    ANY,
]


class TestParticleRoundTrips:
    @pytest.mark.parametrize(
        "particle", PARTICLES, ids=lambda p: p.to_dtd_syntax()
    )
    def test_round_trip_preserves_equality_and_syntax(self, particle):
        restored = pickle.loads(pickle.dumps(particle))
        assert restored == particle
        assert restored.to_dtd_syntax() == particle.to_dtd_syntax()

    @pytest.mark.parametrize(
        "particle", PARTICLES, ids=lambda p: p.to_dtd_syntax()
    )
    def test_round_trip_preserves_analyses(self, particle):
        restored = pickle.loads(pickle.dumps(particle))
        assert restored.labels() == particle.labels()
        assert restored.nullable() == particle.nullable()
        for label in sorted(particle.labels()) or ["absent"]:
            assert restored.min_count(label) == particle.min_count(label)
            assert restored.max_count(label) == particle.max_count(label)

    @pytest.mark.parametrize("protocol", range(2, pickle.HIGHEST_PROTOCOL + 1))
    def test_every_protocol(self, protocol):
        for particle in PARTICLES:
            restored = pickle.loads(pickle.dumps(particle, protocol=protocol))
            assert restored == particle

    def test_specials_come_back_as_the_singletons(self):
        # ElementDecl.to_dtd_syntax compares ``content is EMPTY`` — a
        # structurally equal copy would silently change rendering (and so
        # the DTD fingerprint) after a pickle round-trip.
        for singleton in (PCDATA, EMPTY, ANY):
            assert pickle.loads(pickle.dumps(singleton)) is singleton

    def test_restored_particles_are_still_frozen(self):
        restored = pickle.loads(pickle.dumps(Name("a")))
        with pytest.raises(Exception):
            restored.name = "b"


class TestDeclsAndSchemas:
    def test_element_decl_with_empty_content_renders_identically(self):
        decl = ElementDecl("hollow", EMPTY)
        restored = pickle.loads(pickle.dumps(decl))
        assert restored.to_dtd_syntax() == "<!ELEMENT hollow EMPTY>"
        assert restored.to_dtd_syntax() == decl.to_dtd_syntax()

    def test_attribute_decl_round_trips(self):
        decl = AttributeDecl("book", "year", "CDATA", "#REQUIRED")
        assert pickle.loads(pickle.dumps(decl)) == decl

    @pytest.mark.parametrize(
        "dtd_text", [BIB_DTD_STRONG, BIB_DTD_WEAK, AUCTION_DTD],
        ids=["bib-strong", "bib-weak", "auction"],
    )
    def test_whole_dtd_round_trips_with_stable_fingerprint(self, dtd_text):
        dtd = parse_dtd(dtd_text)
        restored = pickle.loads(pickle.dumps(dtd))
        # The fingerprint is the plan-cache key component; if it drifted
        # across a pickle round-trip, warm-started caches and shipped
        # plans would silently miss (or worse, collide).
        assert restored.fingerprint() == dtd.fingerprint()
        for name in dtd.element_names:
            assert (
                restored.element(name).to_dtd_syntax()
                == dtd.element(name).to_dtd_syntax()
            )
