"""Unit tests for the streamed evaluator (FluX runtime end to end).

These tests run the full pipeline (optimize → compile → stream) on small
hand-checkable documents, asserting both the produced XML and the buffering
behaviour that is the whole point of the paper.
"""

import io

import pytest

from repro.core.optimizer import OptimizerPipeline, compile_xquery
from repro.errors import XMLValidationError
from repro.runtime.compiler import compile_flux
from repro.runtime.evaluator import StreamedEvaluator
from repro.xmlstream.parser import parse_events


def run_flux(query, document, dtd, validate=True, **pipeline_flags):
    optimized = OptimizerPipeline(dtd, **pipeline_flags).compile(query)
    plan = compile_flux(optimized.flux, optimized.dtd)
    evaluator = StreamedEvaluator(plan, optimized.dtd, validate=validate)
    return evaluator.run_to_string(parse_events(document))


class TestPaperQ3:
    def test_strong_dtd_output(self, paper_dtd, paper_document, paper_q3):
        output, stats = run_flux(paper_q3, paper_document, paper_dtd)
        assert output == (
            "<results>"
            "<result><title>TCP/IP Illustrated</title><author>Stevens</author></result>"
            "<result><title>Data on the Web</title>"
            "<author>Abiteboul</author><author>Buneman</author><author>Suciu</author></result>"
            "<result><title>Digital Typography</title></result>"
            "</results>"
        )

    def test_strong_dtd_zero_buffering(self, paper_dtd, paper_document, paper_q3):
        _, stats = run_flux(paper_q3, paper_document, paper_dtd)
        assert stats.peak_buffer_bytes == 0

    def test_weak_dtd_reorders_titles_before_authors(self, paper_weak_dtd, paper_weak_document, paper_q3):
        output, stats = run_flux(paper_q3, paper_weak_document, paper_weak_dtd)
        assert output == (
            "<results>"
            "<result><title>T1</title><author>A1</author><author>A2</author></result>"
            "<result><title>T2</title><title>T2b</title></result>"
            "<result></result>"
            "</results>"
        )

    def test_weak_dtd_buffers_at_most_one_book_of_authors(
        self, paper_weak_dtd, paper_weak_document, paper_q3
    ):
        _, stats = run_flux(paper_q3, paper_weak_document, paper_weak_dtd)
        assert 0 < stats.peak_buffer_bytes < len(paper_weak_document)

    def test_output_stats(self, paper_dtd, paper_document, paper_q3):
        output, stats = run_flux(paper_q3, paper_document, paper_dtd)
        assert stats.output_bytes == len(output)
        assert stats.elements_parsed == 18
        assert stats.elapsed_seconds >= 0


class TestOtherQueryShapes:
    def test_attribute_filter_streams(self, paper_dtd, paper_document):
        query = (
            "<recent>{ for $b in $ROOT/bib/book "
            'where $b/@year > 1995 return <t>{ $b/title }</t> }</recent>'
        )
        output, stats = run_flux(query, paper_document, paper_dtd)
        assert output == (
            "<recent><t><title>Data on the Web</title></t>"
            "<t><title>Digital Typography</title></t></recent>"
        )
        assert stats.peak_buffer_bytes == 0

    def test_child_value_filter_buffers_per_book(self, paper_dtd, paper_document):
        query = (
            "<expensive>{ for $b in $ROOT/bib/book "
            "where $b/price > 60 return { $b/title } }</expensive>"
        )
        output, stats = run_flux(query, paper_document, paper_dtd)
        assert output == "<expensive><title>TCP/IP Illustrated</title></expensive>"
        assert 0 < stats.peak_buffer_bytes < len(paper_document) // 2

    def test_whole_book_copy(self, paper_dtd, paper_document):
        query = "<all>{ for $b in $ROOT/bib/book return $b }</all>"
        output, stats = run_flux(query, paper_document, paper_dtd)
        assert output == "<all>" + paper_document[len("<bib>"):-len("</bib>")] + "</all>"
        assert stats.peak_buffer_bytes == 0  # streamed copy, no materialization

    def test_nested_title_author_pairs(self, paper_dtd, paper_document):
        query = (
            "<pairs>{ for $b in $ROOT/bib/book return "
            "for $a in $b/author return <p>{ $a }</p> }</pairs>"
        )
        output, _ = run_flux(query, paper_document, paper_dtd)
        assert output.count("<p>") == 4

    def test_unsatisfiable_conditional_produces_empty_output(self, paper_dtd, paper_document):
        query = (
            "<g>{ for $b in $ROOT/bib/book return "
            'if ($b/author = "X" and $b/editor = "X") then <hit/> else () }</g>'
        )
        output, stats = run_flux(query, paper_document, paper_dtd)
        assert output == "<g></g>"
        assert stats.peak_buffer_bytes == 0

    def test_constant_query_without_stream_access(self, paper_dtd, paper_document):
        output, _ = run_flux("<hello>world</hello>", paper_document, paper_dtd)
        assert output == "<hello>world</hello>"

    def test_document_level_buffered_expression(self, paper_dtd, paper_document):
        query = "<first-titles>{ $ROOT/bib/book/title }</first-titles>"
        output, _ = run_flux(query, paper_document, paper_dtd)
        assert output.count("<title>") == 3

    def test_editor_existence_query(self, paper_dtd, paper_document):
        query = (
            "<edited>{ for $b in $ROOT/bib/book "
            "where exists($b/editor) return { $b/title } }</edited>"
        )
        output, _ = run_flux(query, paper_document, paper_dtd)
        assert output == "<edited><title>Digital Typography</title></edited>"


class TestValidationAndErrors:
    def test_invalid_document_raises_during_streaming(self, paper_dtd, paper_weak_document, paper_q3):
        with pytest.raises(XMLValidationError):
            run_flux(paper_q3, paper_weak_document, paper_dtd)

    def test_validation_can_be_disabled(self, paper_dtd, paper_q3):
        doc = "<bib><book year='1'><title>T</title><author>A</author><publisher>P</publisher><price>1</price></book></bib>"
        output, _ = run_flux(paper_q3, doc, paper_dtd, validate=False)
        assert "<title>T</title>" in output

    def test_run_accepts_explicit_output_sink(self, paper_dtd, paper_document, paper_q3):
        optimized = compile_xquery(paper_q3, paper_dtd)
        plan = compile_flux(optimized.flux, optimized.dtd)
        sink = io.StringIO()
        stats = StreamedEvaluator(plan, optimized.dtd).run(parse_events(paper_document), sink)
        assert sink.getvalue().startswith("<results>")
        assert stats.output_bytes == len(sink.getvalue())


class TestAblationBehaviour:
    def test_disabling_order_constraints_costs_memory(self, paper_dtd, paper_document, paper_q3):
        _, with_constraints = run_flux(paper_q3, paper_document, paper_dtd)
        _, without_constraints = run_flux(
            paper_q3, paper_document, paper_dtd, use_order_constraints=False
        )
        assert with_constraints.peak_buffer_bytes == 0
        assert without_constraints.peak_buffer_bytes > 0

    def test_outputs_identical_with_and_without_constraints(
        self, paper_dtd, paper_document, paper_q3
    ):
        output_on, _ = run_flux(paper_q3, paper_document, paper_dtd)
        output_off, _ = run_flux(
            paper_q3, paper_document, paper_dtd, use_order_constraints=False
        )
        assert output_on == output_off
