"""The metrics registry: labels, histograms, concurrency, and exposition.

The registry's contract (``src/repro/obs/metrics.py``) is tested at three
levels:

* **semantics** — create-or-get families (one name, one kind), labeled
  counters/gauges, fixed-bucket histograms with snapshot-time percentile
  estimates, pull-style collectors, and the ``set_from_dict`` bridge that
  folds the pre-existing stats dataclasses in;
* **concurrency** — N writer threads hammering one counter and one
  histogram while another thread snapshots continuously: every snapshot
  must be internally consistent (no torn bucket/count/sum reads) and the
  final totals must be exact;
* **exposition** — the Prometheus text output must satisfy the line
  validator (``repro.obs.validate``) that CI reuses, bucket-cumulative
  checks included, and the JSON snapshot must pretty-print after a JSON
  round trip (what ``repro stats`` does).
"""

import json
import threading

import pytest

from repro.obs import MetricsRegistry, format_snapshot
from repro.obs.validate import validate_prometheus_text


class TestFamilies:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("obs_ops_total", "operations")
        counter.inc()
        counter.inc(2, kind="a")
        counter.inc(3, kind="a")
        assert counter.value() == 1
        assert counter.value(kind="a") == 5
        assert counter.value(kind="missing") == 0

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("obs_ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("obs_depth")
        gauge.set(10, worker="0")
        gauge.inc(-3, worker="0")
        assert gauge.value(worker="0") == 7

    def test_same_name_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("obs_ops_total") is registry.counter("obs_ops_total")

    def test_redeclaring_a_name_with_another_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("obs_ops_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("obs_ops_total")

    def test_invalid_metric_name_raises(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("0bad-name")


class TestHistogram:
    def test_count_sum_and_bucket_placement(self):
        hist = MetricsRegistry().histogram("obs_lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(55.55)
        (sample,) = hist._snapshot_values_locked()
        # Cumulative, Prometheus-style: le=0.1 → 1, le=1 → 2, le=10 → 3, +Inf → 4.
        assert [b["count"] for b in sample["buckets"]] == [1, 2, 3, 4]

    def test_percentiles_interpolate_inside_the_covering_bucket(self):
        hist = MetricsRegistry().histogram("obs_lat", buckets=(1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)
        # All observations in (1, 2]: the median interpolates inside it.
        assert 1.0 < hist.percentile(0.5) <= 2.0
        assert hist.percentile(0.99) <= 2.0

    def test_percentiles_clamp_to_the_last_finite_bound(self):
        hist = MetricsRegistry().histogram("obs_lat", buckets=(1.0,))
        hist.observe(100.0)
        # The +Inf bucket cannot support an estimate beyond the last bound.
        assert hist.percentile(0.5) == 1.0

    def test_empty_series_percentile_is_zero(self):
        hist = MetricsRegistry().histogram("obs_lat")
        assert hist.percentile(0.5) == 0.0

    def test_snapshot_carries_p50_p95_p99(self):
        registry = MetricsRegistry()
        hist = registry.histogram("obs_lat", "latency", buckets=(1.0, 2.0))
        hist.observe(0.5, stage="route")
        snap = registry.snapshot()["obs_lat"]
        assert snap["kind"] == "histogram"
        (sample,) = snap["values"]
        assert sample["labels"] == {"stage": "route"}
        for key in ("p50", "p95", "p99", "count", "sum", "buckets"):
            assert key in sample


class TestCollectorsAndFolding:
    def test_collectors_refresh_values_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"passes": 0}
        registry.add_collector(
            lambda reg: reg.gauge("obs_passes").set(state["passes"])
        )
        state["passes"] = 7
        assert registry.snapshot()["obs_passes"]["values"][0]["value"] == 7
        state["passes"] = 9
        assert registry.snapshot()["obs_passes"]["values"][0]["value"] == 9

    def test_set_from_dict_takes_numeric_scalars_only(self):
        registry = MetricsRegistry()
        registry.set_from_dict(
            "obs_svc",
            {"passes": 3, "rate": 0.5, "name": "bib", "ok": True, "nested": {"x": 1}},
            worker="0",
        )
        snap = registry.snapshot()
        assert snap["obs_svc_passes"]["values"][0]["value"] == 3
        assert snap["obs_svc_rate"]["values"][0]["value"] == 0.5
        # Strings, bools, and nested structures are skipped, not mangled.
        assert "obs_svc_name" not in snap
        assert "obs_svc_ok" not in snap
        assert "obs_svc_nested" not in snap

    def test_plan_cache_register_metrics_folds_cache_stats(self):
        from repro.runtime.plan_cache import PlanCache

        cache = PlanCache(4)
        registry = MetricsRegistry()
        cache.register_metrics(registry)
        snap = registry.snapshot()
        assert snap["repro_plan_cache_size"]["values"][0]["value"] == 0
        assert snap["repro_plan_cache_hits"]["values"][0]["value"] == 0
        assert "repro_plan_cache_hit_rate" in snap


class TestConcurrency:
    def test_writers_and_snapshotter_no_torn_reads_exact_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("obs_ops_total", "operations")
        # 0.5 is exactly representable, so N accumulated observations sum
        # to exactly count * 0.5 — any torn bucket/sum/count read shows up
        # as an exact-arithmetic mismatch.
        hist = registry.histogram("obs_lat", "latency", buckets=(0.25, 1.0))
        threads, each = 8, 2000
        stop = threading.Event()
        problems = []

        def snapshotter():
            last_total = 0
            while not stop.is_set():
                snap = registry.snapshot()
                for sample in snap["obs_lat"]["values"]:
                    if sample["buckets"][-1]["count"] != sample["count"]:
                        problems.append("histogram +Inf bucket != count")
                    if sample["sum"] != sample["count"] * 0.5:
                        problems.append("histogram sum inconsistent with count")
                total = sum(
                    sample["value"] for sample in snap["obs_ops_total"]["values"]
                )
                if total < last_total:
                    problems.append("counter total went backwards")
                last_total = total

        def writer(i):
            for _ in range(each):
                counter.inc(1, thread=str(i))
                hist.observe(0.5)

        snap_thread = threading.Thread(target=snapshotter)
        snap_thread.start()
        writers = [threading.Thread(target=writer, args=(i,)) for i in range(threads)]
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        snap_thread.join()

        assert problems == []
        for i in range(threads):
            assert counter.value(thread=str(i)) == each
        assert hist.count() == threads * each
        assert hist.sum() == threads * each * 0.5


class TestExposition:
    @pytest.fixture
    def populated(self):
        registry = MetricsRegistry()
        counter = registry.counter("obs_ops_total", "operations served")
        counter.inc(5, kind="read")
        counter.inc(2, kind='wr"ite')  # label escaping must survive
        registry.gauge("obs_depth", "queue depth").set(3)
        hist = registry.histogram("obs_lat", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05, stage="route")
        hist.observe(5.0, stage="route")
        return registry

    def test_prometheus_text_passes_the_line_validator(self, populated):
        assert validate_prometheus_text(populated.to_prometheus()) == []

    def test_prometheus_text_golden_lines(self, populated):
        lines = populated.to_prometheus().splitlines()
        assert "# HELP obs_ops_total operations served" in lines
        assert "# TYPE obs_ops_total counter" in lines
        assert 'obs_ops_total{kind="read"} 5' in lines
        assert "# TYPE obs_lat histogram" in lines
        assert 'obs_lat_bucket{stage="route",le="0.1"} 1' in lines
        assert 'obs_lat_bucket{stage="route",le="+Inf"} 2' in lines
        assert 'obs_lat_count{stage="route"} 2' in lines

    def test_validator_flags_garbage_and_non_cumulative_buckets(self):
        assert validate_prometheus_text("this is !not! a metric line\n")
        broken = (
            "# TYPE obs_lat histogram\n"
            'obs_lat_bucket{le="0.1"} 5\n'
            'obs_lat_bucket{le="1"} 3\n'   # cumulative counts cannot drop
            'obs_lat_bucket{le="+Inf"} 5\n'
            "obs_lat_sum 1\n"
            "obs_lat_count 5\n"
        )
        assert validate_prometheus_text(broken)

    def test_snapshot_pretty_prints_after_json_round_trip(self, populated):
        snapshot = json.loads(json.dumps(populated.snapshot()))
        text = format_snapshot(snapshot)
        assert "obs_ops_total (counter) -- operations served" in text
        assert "{kind=read}  5" in text
        assert "count=2" in text and "p50=" in text
