"""Per-query event routing, execution modes, and shared-pass lifecycle fixes.

PR 2's invariant sharpens PR 1's: not only must the shared pass agree
byte-for-byte with solo runs, it must do so while forwarding to each query
only the events *that query's* profile admits — rule (c) of the pruning
semantics (children of condition-bearing elements are always forwarded)
holds per plan, not just for the union.  The property test drives both
execution modes (worker threads and the inline round-robin scheduler)
under hypothesis-chosen feed chunkings.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engines.flux_engine import FluxEngine
from repro.errors import EvaluationError
from repro.runtime.evaluator import EvaluatorSession
from repro.service import PlanCache, QueryService
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import get_query, queries_for_workload
from repro.workloads.xmark import generate_auction_site

from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3

EXECUTION_MODES = ["threads", "inline"]


@pytest.fixture(scope="module")
def bib_document():
    return generate_bibliography(num_books=12, seed=42)


@pytest.fixture(scope="module")
def auction_document():
    return generate_auction_site(scale=0.3, seed=42)


@pytest.fixture(scope="module")
def bib_solo(bib_document):
    engine = FluxEngine(BIB_DTD_STRONG)
    return {
        spec.key: engine.execute(spec.xquery, bib_document).output
        for spec in queries_for_workload("bib")
    }


@pytest.fixture(scope="module")
def shared_plan_cache():
    # One cache for all property examples: each example pays registration,
    # not recompilation.
    return PlanCache()


def _chunks(document, cuts):
    positions = sorted({min(cut, len(document)) for cut in cuts})
    pieces, last = [], 0
    for position in positions + [len(document)]:
        if position > last:
            pieces.append(document[last:position])
            last = position
    return pieces


class TestRoutingInvariant:
    """Shared routed output == solo output, any chunking, both modes."""

    @given(
        execution=st.sampled_from(EXECUTION_MODES),
        cuts=st.lists(st.integers(min_value=1, max_value=20_000), max_size=8),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_routed_outputs_match_solo_under_random_chunkings(
        self, bib_document, bib_solo, shared_plan_cache, execution, cuts
    ):
        service = QueryService(
            BIB_DTD_STRONG, plan_cache=shared_plan_cache, execution=execution
        )
        for spec in queries_for_workload("bib"):
            service.register(spec.xquery, key=spec.key)
        shared_pass = service.open_pass()
        for piece in _chunks(bib_document, cuts):
            shared_pass.feed(piece)
        results = shared_pass.finish()
        for key, solo_output in bib_solo.items():
            assert results[key].output == solo_output, key

    @pytest.mark.parametrize("execution", EXECUTION_MODES)
    def test_auction_fleet_agrees_in_both_modes(self, auction_document, execution):
        specs = queries_for_workload("auction")
        engine = FluxEngine(AUCTION_DTD)
        service = QueryService(AUCTION_DTD, execution=execution)
        for spec in specs:
            service.register(spec.xquery, key=spec.key)
        results = service.run_pass(auction_document)
        for spec in specs:
            solo = engine.execute(spec.xquery, auction_document)
            assert results[spec.key].output == solo.output, spec.key


class TestPerQueryCounters:
    def test_sparse_query_receives_strictly_fewer_events(self, bib_document):
        service = QueryService(BIB_DTD_STRONG)
        for spec in queries_for_workload("bib"):
            service.register(spec.xquery, key=spec.key)
        service.run_pass(bib_document)
        metrics = service.metrics.last_pass
        forwarded = metrics.events_forwarded
        assert metrics.per_query_forwarded  # filled by finalize_metrics()
        assert set(metrics.per_query_forwarded) == {
            spec.key for spec in queries_for_workload("bib")
        }
        # Routed + suppressed partitions the union broadcast, per query.
        for key, routed in metrics.per_query_forwarded.items():
            assert 0 < routed <= forwarded
            assert metrics.per_query_pruned[key] == forwarded - routed
        # The point of routing: somebody beats the union strictly.
        assert any(
            routed < forwarded for routed in metrics.per_query_forwarded.values()
        )

    def test_routing_is_execution_mode_independent(self, bib_document):
        counts = {}
        for execution in EXECUTION_MODES:
            service = QueryService(BIB_DTD_STRONG, execution=execution)
            for spec in queries_for_workload("bib"):
                service.register(spec.xquery, key=spec.key)
            service.run_pass(bib_document)
            counts[execution] = dict(service.metrics.last_pass.per_query_forwarded)
        assert counts["threads"] == counts["inline"]

    def test_single_query_pass_routes_everything_forwarded(self, bib_document):
        service = QueryService(BIB_DTD_STRONG)
        service.register(get_query("BIB-Q1").xquery, key="q")
        service.run_pass(bib_document)
        metrics = service.metrics.last_pass
        assert metrics.per_query_forwarded["q"] == metrics.events_forwarded
        assert metrics.per_query_pruned["q"] == 0


class TestInlineExecution:
    def test_inline_pass_spawns_no_threads(self, bib_document):
        service = QueryService(BIB_DTD_STRONG, execution="inline")
        for spec in queries_for_workload("bib"):
            service.register(spec.xquery, key=spec.key)
        before = threading.active_count()
        results = service.run_pass(bib_document)
        assert threading.active_count() == before
        assert len(results) == len(queries_for_workload("bib"))

    def test_unknown_execution_mode_rejected(self):
        with pytest.raises(ValueError):
            QueryService(BIB_DTD_STRONG, execution="fibers")
        with pytest.raises(ValueError):
            EvaluatorSession(object(), execution="fibers")

    def test_inline_validation_error_raises_from_feed(self):
        # The shared validator runs on the dispatch thread in both modes;
        # with inline sessions the whole failure path is synchronous.
        from repro.errors import XMLValidationError

        service = QueryService(PAPER_FIGURE1_DTD, execution="inline")
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()
        with pytest.raises(XMLValidationError):
            shared_pass.feed("<bib><bad/></bib>")
            shared_pass.finish()


class TestSharedPassLifecycleFixes:
    def test_failed_kth_session_start_releases_earlier_workers(self, monkeypatch):
        # Regression: the 3rd of 4 sessions fails to start; the 2 already
        # running workers must be aborted, not silently stranded.
        service = QueryService(BIB_DTD_STRONG)
        for index, spec in enumerate(queries_for_workload("bib")[:4]):
            service.register(spec.xquery, key=spec.key)
        real_start = EvaluatorSession.start
        calls = {"count": 0}

        def failing_start(session):
            calls["count"] += 1
            if calls["count"] == 3:
                raise RuntimeError("injected start failure")
            return real_start(session)

        monkeypatch.setattr(EvaluatorSession, "start", failing_start)
        before = threading.active_count()
        with pytest.raises(RuntimeError):
            service.open_pass()
        assert threading.active_count() == before

    def test_failed_constructor_tail_releases_started_workers(self, monkeypatch):
        # Same leak class, later in the constructor: all sessions started,
        # then the routing-index build fails.
        import repro.service.session as session_module

        def exploding_index(*args, **kwargs):
            raise RuntimeError("injected index failure")

        monkeypatch.setattr(session_module, "SharedProjectionIndex", exploding_index)
        service = QueryService(BIB_DTD_STRONG)
        for spec in queries_for_workload("bib")[:3]:
            service.register(spec.xquery, key=spec.key)
        before = threading.active_count()
        with pytest.raises(RuntimeError):
            service.open_pass()
        assert threading.active_count() == before

    def test_feed_and_finish_after_abort_raise_value_error(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        shared_pass = service.open_pass()
        shared_pass.feed(PAPER_DOCUMENT[:40])
        shared_pass.abort()
        assert shared_pass.aborted
        with pytest.raises(ValueError):
            shared_pass.feed(PAPER_DOCUMENT[40:])
        with pytest.raises(ValueError):
            shared_pass.finish()

    def test_context_manager_respects_manual_abort(self):
        # Regression: __exit__ after a clean block used to call finish(),
        # which walked into the aborted (dead) sessions.
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q3")
        with service.open_pass() as shared_pass:
            shared_pass.feed("<bib>")
            shared_pass.abort()
        assert shared_pass.aborted
        assert service.metrics.passes_completed == 0
        # The service is still serviceable afterwards.
        assert service.run_pass(PAPER_DOCUMENT)["q3"].output

    @pytest.mark.parametrize("execution", EXECUTION_MODES)
    def test_abort_then_fresh_pass_in_both_modes(self, execution):
        service = QueryService(PAPER_FIGURE1_DTD, execution=execution)
        service.register(PAPER_Q3, key="q3")
        doomed = service.open_pass()
        doomed.feed("<bib>")
        doomed.abort()
        results = service.run_pass(PAPER_DOCUMENT)
        solo = FluxEngine(PAPER_FIGURE1_DTD).execute(PAPER_Q3, PAPER_DOCUMENT)
        assert results["q3"].output == solo.output


class TestRegistrationMetrics:
    def test_replacement_keeps_live_query_invariant(self):
        service = QueryService(BIB_DTD_STRONG)
        service.register(get_query("BIB-Q1").xquery, key="a")
        service.register(get_query("BIB-Q2").xquery, key="b")
        service.register(get_query("BIB-Q3").xquery, key="a")  # replaces
        service.unregister("b")
        metrics = service.metrics
        assert metrics.queries_registered == 3
        assert metrics.queries_replaced == 1
        assert metrics.queries_unregistered == 1
        assert (
            metrics.queries_registered
            - metrics.queries_unregistered
            - metrics.queries_replaced
            == len(service)
        )

    def test_open_pass_holds_a_registration_snapshot(self, bib_document):
        # Documented semantics: replacing a key mid-pass does not change
        # the pass already opened.
        service = QueryService(BIB_DTD_STRONG)
        service.register(get_query("BIB-Q1").xquery, key="q")
        solo = FluxEngine(BIB_DTD_STRONG).execute(
            get_query("BIB-Q1").xquery, bib_document
        )
        shared_pass = service.open_pass()
        service.register(get_query("BIB-Q2").xquery, key="q")  # replace mid-pass
        shared_pass.feed(bib_document)
        results = shared_pass.finish()
        assert results["q"].output == solo.output


class TestFleetGroupRouting:
    """Aliased fleets route per structure group, answer per subscriber."""

    def test_aliases_share_group_tallies_and_match_solo(
        self, bib_document, bib_solo
    ):
        from repro.bench.fleets import make_fleet, run_shared

        specs = queries_for_workload("bib")[:3]
        fleet = make_fleet([spec.xquery for spec in specs], 9)
        shared, service = run_shared(
            fleet, bib_document, dtd=BIB_DTD_STRONG, execution="threads"
        )
        metrics = service.metrics.last_pass
        assert metrics.structures == 3
        # Every subscriber gets its own counter entry, and aliases of one
        # structure carry identical tallies (they expand from one group).
        assert set(metrics.per_query_forwarded) == {q.key for q in fleet}
        for query in fleet:
            group_lead = fleet[query.structure]
            assert (
                metrics.per_query_forwarded[query.key]
                == metrics.per_query_forwarded[group_lead.key]
            )
            assert (
                metrics.per_query_pruned[query.key]
                == metrics.per_query_pruned[group_lead.key]
            )
            # ...and its output is byte-identical to the solo run of the
            # structure's base query.
            assert shared[query.key] == bib_solo[specs[query.structure].key]
