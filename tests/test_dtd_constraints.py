"""Unit tests for DTD-derived schema constraints.

These constraints (cardinality, order, co-occurrence) are the information the
paper's optimizer runs on, so the tests follow the paper's own examples.
"""

import pytest

from repro.dtd.model import INFINITY
from repro.dtd.parser import parse_dtd


@pytest.fixture
def figure1(paper_dtd):
    return paper_dtd.constraints()


@pytest.fixture
def weak(paper_weak_dtd):
    return paper_weak_dtd.constraints()


class TestCardinalityConstraints:
    def test_publisher_at_most_once(self, figure1):
        # The paper's example: publisher ∈ ||≤1 book.
        assert figure1.at_most_once("book", "publisher")
        assert figure1.exactly_once("book", "publisher")

    def test_author_not_at_most_once(self, figure1):
        assert not figure1.at_most_once("book", "author")
        assert figure1.max_occurrences("book", "author") == INFINITY

    def test_title_exactly_once(self, figure1):
        assert figure1.exactly_once("book", "title")

    def test_author_min_zero_because_of_editor_branch(self, figure1):
        assert figure1.min_occurrences("book", "author") == 0

    def test_never_occurs(self, figure1):
        assert figure1.never_occurs("book", "chapter")
        assert not figure1.never_occurs("book", "author")

    def test_pcdata_elements_have_no_children(self, figure1):
        assert figure1.never_occurs("title", "anything")

    def test_weak_dtd_title_unbounded(self, weak):
        assert not weak.at_most_once("book", "title")

    def test_unknown_parent_is_unconstrained(self, figure1):
        assert figure1.max_occurrences("unknown-element", "x") == INFINITY
        assert not figure1.at_most_once("unknown-element", "x")


class TestOrderConstraints:
    def test_title_before_author(self, figure1):
        # Figure 1 "ensures that all title elements precede all author elements".
        assert figure1.order_holds("book", "title", "author")

    def test_author_not_before_title(self, figure1):
        assert not figure1.order_holds("book", "author", "title")

    def test_author_before_price_and_publisher(self, figure1):
        assert figure1.order_holds("book", "author", "price")
        assert figure1.order_holds("book", "author", "publisher")
        assert figure1.order_holds("book", "publisher", "price")

    def test_same_label_order_requires_at_most_once(self, figure1):
        assert figure1.order_holds("book", "publisher", "publisher")
        assert not figure1.order_holds("book", "author", "author")

    def test_weak_dtd_has_no_order(self, weak):
        assert not weak.order_holds("book", "title", "author")
        assert not weak.order_holds("book", "author", "title")

    def test_labels_that_cannot_occur_trivially_ordered(self, figure1):
        assert figure1.order_holds("book", "chapter", "author")
        assert figure1.order_holds("book", "title", "chapter")

    def test_all_before_helper(self, figure1):
        assert figure1.all_before("book", ["title", "author"], "price")
        assert not figure1.all_before("book", ["price"], "title")

    def test_order_constraints_on_books_within_bib(self, figure1):
        # Multiple book children: book before book fails (repetition).
        assert not figure1.order_holds("bib", "book", "book")


class TestCoOccurrenceConstraints:
    def test_author_editor_mutually_exclusive(self, figure1):
        # The paper: a book cannot have both author and editor children.
        assert figure1.mutually_exclusive("book", "author", "editor")
        assert figure1.mutually_exclusive("book", "editor", "author")

    def test_author_price_can_cooccur(self, figure1):
        assert not figure1.mutually_exclusive("book", "author", "price")
        assert figure1.can_cooccur("book", ["author", "price"])

    def test_can_cooccur_with_three_labels(self, figure1):
        assert figure1.can_cooccur("book", ["title", "publisher", "price"])
        assert not figure1.can_cooccur("book", ["title", "author", "editor"])

    def test_label_that_never_occurs_cannot_cooccur(self, figure1):
        assert not figure1.can_cooccur("book", ["title", "chapter"])

    def test_empty_label_set_cooccurs(self, figure1):
        assert figure1.can_cooccur("book", [])

    def test_weak_paper_dtd_without_editor(self, weak):
        # The Section 2 weak DTD has no editor at all.
        assert weak.mutually_exclusive("book", "author", "editor")


class TestPastTables:
    def test_past_table_shape(self, paper_dtd):
        constraints = paper_dtd.constraints()
        table = constraints.past_table("book", frozenset({"title", "author"}))
        automaton = paper_dtd.automaton("book")
        assert set(table) == set(range(automaton.state_count))
        assert table[automaton.start_state] is False

    def test_labels_past_at_state(self, paper_dtd):
        constraints = paper_dtd.constraints()
        automaton = paper_dtd.automaton("book")
        state = automaton.step(automaton.start_state, "title")
        state = automaton.step(state, "author")
        state = automaton.step(state, "publisher")
        past = constraints.labels_past_at_state("book", state)
        assert "title" in past and "author" in past and "editor" in past
        assert "price" not in past

    def test_summary_contains_paper_constraints(self, paper_dtd):
        summary = paper_dtd.constraints().summary("book")
        assert ("publisher", "<=1") in summary["cardinality"]
        assert ("title", "<", "author") in summary["order"]
        assert ("author", "#", "editor") in summary["exclusive"]
