"""The multi-process service pool: plan shipping, sharding, crash recovery.

The acceptance bar mirrors the thread pool's — byte-identical results for
every (document, query) pair, fault isolation for failing documents — and
adds the process-specific guarantees:

* **compile-once across the process boundary**: the parent's plan cache
  pays exactly one miss per distinct query, one artifact per distinct
  *structure* ships to every worker (``ship_count == workers ×
  structures`` — alias registrations ride on a shipped plan for free),
  and the workers report zero optimizer runs of their own;
* **crash recovery**: a worker process dying mid-document (injected with
  the pool's fault marker) surfaces as an error-tagged ``ServedDocument``
  carrying :class:`WorkerCrashError`, the slot respawns (plans re-shipped),
  and every other document — including later ones — is served
  byte-identically to a solo run.

Process spawns dominate the runtime here, so the pools stay small.
"""

import io

import pytest

from repro.bench.fleets import alias_query
from repro.engines.flux_engine import FluxEngine
from repro.errors import WorkerCrashError, XMLSyntaxError
from repro.runtime.plan_cache import PlanCache
from repro.service import (
    FileDocument,
    ProcessServicePool,
    QueryService,
)
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query

TITLES_QUERY = "<titles>{ for $b in $ROOT/bib/book return $b/title }</titles>"

#: The fault-injection marker used by the crash tests.
CRASH = "CRASH-THIS-WORKER"


@pytest.fixture(scope="module")
def documents():
    return [
        generate_bibliography(num_books=books, seed=seed)
        for books, seed in [(6, 1), (11, 2), (8, 3), (5, 4), (9, 5)]
    ]


@pytest.fixture(scope="module")
def solo_outputs(documents):
    engine = FluxEngine(BIB_DTD_STRONG)
    q1 = get_query("BIB-Q1").xquery
    return [
        {
            "q1": engine.execute(q1, document).output,
            "t": engine.execute(TITLES_QUERY, document).output,
        }
        for document in documents
    ]


def register_fleet(pool):
    pool.register(get_query("BIB-Q1").xquery, key="q1")
    pool.register(TITLES_QUERY, key="t")


class TestShardedServing:
    def test_results_match_solo_with_shipping_verified(self, documents, solo_outputs):
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            served = list(pool.serve(documents))

            assert sorted(outcome.index for outcome in served) == list(
                range(len(documents))
            )
            for outcome in served:
                assert outcome.ok
                assert outcome.worker in (0, 1)
                produced = {
                    key: result.output for key, result in outcome.results.items()
                }
                assert produced == solo_outputs[outcome.index]

            # Compile-once, parent side: one miss per distinct query, and
            # one artifact shipped per (worker, query).
            assert pool.plan_cache.stats.misses == 2
            metrics = pool.metrics
            assert metrics.ship_count == 2 * 2
            assert metrics.ship_bytes > 0
            # Compile-once, worker side: no worker ran the optimizer.
            assert pool.worker_compilations() == {0: 0, 1: 0}
            assert metrics.documents_ok == len(documents)
            assert metrics.documents_failed == 0
            assert metrics.passes_completed == len(documents)

    def test_fleet_survives_across_serve_loops(self, documents):
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            assert all(outcome.ok for outcome in pool.serve(documents[:2]))
            shipped_after_first = pool.metrics.ship_count
            assert all(outcome.ok for outcome in pool.serve(documents[2:4]))
            # No re-shipping between loops: the workers are long-lived.
            assert pool.metrics.ship_count == shipped_after_first
            assert pool.metrics.documents_ok == 4

    def test_file_like_documents_are_drained_in_the_parent(self, documents,
                                                           solo_outputs):
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            served = list(pool.serve([io.StringIO(doc) for doc in documents[:2]]))
            for outcome in served:
                produced = {
                    key: result.output for key, result in outcome.results.items()
                }
                assert produced == solo_outputs[outcome.index]

    def test_file_documents_are_read_by_the_workers(self, tmp_path, documents,
                                                    solo_outputs):
        paths = []
        for i, document in enumerate(documents[:3]):
            path = tmp_path / f"doc{i}.xml"
            path.write_text(document)
            paths.append(FileDocument(str(path)))
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            served = list(pool.serve(paths))
            assert len(served) == 3
            for outcome in served:
                assert outcome.ok
                produced = {
                    key: result.output for key, result in outcome.results.items()
                }
                assert produced == solo_outputs[outcome.index]

    def test_latency_feed_sources_materialize_in_the_workers(
        self, documents, solo_outputs
    ):
        from repro.bench.feeds import LatencyFeedSource

        stream = [
            LatencyFeedSource(doc, chunks=4, latency=0.001)
            for doc in documents[:2]
        ]
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            served = list(pool.serve(stream))
            for outcome in served:
                assert outcome.ok
                produced = {
                    key: result.output for key, result in outcome.results.items()
                }
                assert produced == solo_outputs[outcome.index]

    def test_shared_cache_precompiled_means_zero_misses(self, documents):
        cache = PlanCache()
        warm = QueryService(BIB_DTD_STRONG, plan_cache=cache)
        warm.register(TITLES_QUERY, key="t")
        misses_before = cache.stats.misses
        with ProcessServicePool(BIB_DTD_STRONG, workers=2,
                                plan_cache=cache) as pool:
            registration = pool.register(TITLES_QUERY, key="t")
            assert registration.from_cache
            assert cache.stats.misses == misses_before
            served = list(pool.serve(documents[:1]))
            assert served[0].ok
            # Shipping still happened — from the cache, not the optimizer.
            assert pool.metrics.ship_count == 2


class TestFaultIsolation:
    def test_failing_document_is_error_tagged_not_fatal(self, documents,
                                                        solo_outputs):
        stream = list(documents)
        stream[1] = stream[1][: len(stream[1]) // 2] + "<<<"
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            served = list(pool.serve(stream))
            assert sorted(o.index for o in served) == list(range(len(stream)))
            failures = [o for o in served if not o.ok]
            assert len(failures) == 1 and failures[0].index == 1
            assert isinstance(failures[0].error, XMLSyntaxError)
            assert failures[0].results == {}
            # An in-pass exception is NOT a crash: nobody respawned.
            assert pool.worker_respawns == 0
            for outcome in served:
                if outcome.index == 1:
                    continue
                produced = {
                    key: result.output for key, result in outcome.results.items()
                }
                assert produced == solo_outputs[outcome.index]
            assert pool.metrics.documents_failed == 1
            assert pool.metrics.documents_ok == len(stream) - 1

    def test_worker_crash_mid_document_is_isolated_and_respawned(
        self, documents, solo_outputs
    ):
        stream = list(documents)
        stream[2] = stream[2].replace("</bib>", f"<!--{CRASH}--></bib>")
        with ProcessServicePool(
            BIB_DTD_STRONG, workers=2, _crash_marker=CRASH
        ) as pool:
            register_fleet(pool)
            served = list(pool.serve(stream))

            assert sorted(o.index for o in served) == list(range(len(stream)))
            failures = [o for o in served if not o.ok]
            assert len(failures) == 1 and failures[0].index == 2
            assert isinstance(failures[0].error, WorkerCrashError)
            assert failures[0].error.exitcode == 3
            assert failures[0].results == {}

            # The dead slot was respawned and re-shipped the full fleet.
            assert pool.worker_respawns == 1
            assert pool.metrics.ship_count == 2 * 2 + 2

            # Every other document: byte-identical to solo, crash or not.
            for outcome in served:
                if outcome.index == 2:
                    continue
                assert outcome.ok
                produced = {
                    key: result.output for key, result in outcome.results.items()
                }
                assert produced == solo_outputs[outcome.index]
            assert pool.metrics.documents_failed == 1

            # The pool keeps serving after the crash, on the same fleet.
            again = list(pool.serve(documents[:2]))
            assert all(outcome.ok for outcome in again)

    def test_every_worker_crashing_still_drains_the_stream(self, documents):
        # Both workers die (every document carries the marker): every
        # document must come back error-tagged, each crash respawning.
        stream = [
            doc.replace("</bib>", f"<!--{CRASH}--></bib>")
            for doc in documents[:3]
        ]
        with ProcessServicePool(
            BIB_DTD_STRONG, workers=2, _crash_marker=CRASH
        ) as pool:
            register_fleet(pool)
            served = list(pool.serve(stream))
            assert sorted(o.index for o in served) == [0, 1, 2]
            assert all(isinstance(o.error, WorkerCrashError) for o in served)
            assert pool.worker_respawns == 3
            assert pool.metrics.documents_failed == 3

    def test_unopenable_document_source_is_error_tagged(self, tmp_path,
                                                        documents):
        # A file vanishing between dispatch and the worker's open() is a
        # failed *document*, not a failed worker (and certainly not a
        # failed stream): the other documents must still be served.
        good = tmp_path / "good.xml"
        good.write_text(documents[0])
        stream = [
            FileDocument(str(good)),
            FileDocument(str(tmp_path / "deleted.xml")),
            FileDocument(str(good)),
        ]
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            served = list(pool.serve(stream))
            assert sorted(o.index for o in served) == [0, 1, 2]
            failures = [o for o in served if not o.ok]
            assert len(failures) == 1 and failures[0].index == 1
            assert isinstance(failures[0].error, FileNotFoundError)
            assert pool.worker_respawns == 0
            assert [o.ok for o in sorted(served, key=lambda o: o.index)] == [
                True, False, True,
            ]

    def test_source_iterator_error_propagates(self, documents):
        class SourceBroke(Exception):
            pass

        def broken_source():
            yield documents[0]
            raise SourceBroke()

        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            with pytest.raises(SourceBroke):
                list(pool.serve(broken_source()))
            # The pool recovers for the next loop.
            assert all(o.ok for o in pool.serve(documents[:1]))


class TestLifecycleAndGuards:
    def test_serving_an_empty_pool_raises(self):
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            with pytest.raises(ValueError):
                next(pool.serve(["<bib></bib>"]))

    def test_registration_rejected_while_serving(self, documents):
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            loop = pool.serve(documents[:2])
            next(loop)
            with pytest.raises(RuntimeError):
                pool.register(TITLES_QUERY, key="late")
            with pytest.raises(RuntimeError):
                pool.unregister("q1")
            loop.close()
            # Between loops it is allowed again, and ships immediately.
            shipped = pool.metrics.ship_count
            pool.register(get_query("BIB-Q2").xquery, key="q2")
            assert pool.metrics.ship_count == shipped + 2
            assert len(pool) == 3

    def test_unregister_between_loops_reaches_the_workers(self, documents):
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            first = list(pool.serve(documents[:1]))
            assert set(first[0].results) == {"q1", "t"}
            pool.unregister("q1")
            second = list(pool.serve(documents[:1]))
            assert set(second[0].results) == {"t"}
            with pytest.raises(KeyError):
                pool.unregister("q1")

    def test_two_loops_at_once_rejected(self, documents):
        with ProcessServicePool(BIB_DTD_STRONG, workers=2) as pool:
            register_fleet(pool)
            loop = pool.serve(documents[:2])
            next(loop)
            with pytest.raises(RuntimeError):
                next(pool.serve(documents[:1]))
            loop.close()

    def test_closed_pool_refuses_to_serve(self):
        pool = ProcessServicePool(BIB_DTD_STRONG, workers=2)
        register_fleet(pool)
        pool.close()
        with pytest.raises(RuntimeError):
            next(pool.serve(["<bib></bib>"]))
        pool.close()  # idempotent

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError):
            ProcessServicePool(BIB_DTD_STRONG, workers=0)


class TestStructureDedupShipping:
    """Alias fleets ship one artifact per structure across the pipes.

    ``register_fleet`` above uses two structurally distinct queries, so
    its ``workers × structures`` equals the old ``workers × queries``;
    these tests register *aliases* — same computation, different text —
    where the two formulas diverge, and pin the per-structure one:
    shipping, crash re-shipping, and drop-on-last-unregister all operate
    on the deduped set.
    """

    WORKERS = 2

    def _aliases(self, count=3):
        return [alias_query(TITLES_QUERY, variant) for variant in range(count)]

    def test_aliases_ship_one_artifact_per_structure(self, documents,
                                                     solo_outputs):
        texts = self._aliases()
        with ProcessServicePool(BIB_DTD_STRONG, workers=self.WORKERS) as pool:
            for i, text in enumerate(texts):
                pool.register(text, key=f"a{i}")
            assert len(pool.structures) == 1
            (structure,) = pool.structures.values()
            assert structure.refcount == len(texts)
            served = list(pool.serve(documents[:2]))
            assert all(outcome.ok for outcome in served)
            for outcome in served:
                for i in range(len(texts)):
                    produced = outcome.results[f"a{i}"].output
                    assert produced == solo_outputs[outcome.index]["t"]
            # One artifact per worker — not one per registration.
            assert pool.metrics.ship_count == self.WORKERS * 1
            # Each alias *text* is its own cache miss (compiled once),
            # then interned against the canonical plan.
            assert pool.plan_cache.stats.misses == len(texts)
            assert pool.plan_cache.stats.interned == len(texts) - 1
            assert pool.worker_compilations() == {0: 0, 1: 0}

    def test_crash_respawn_reships_the_deduped_set(self, documents):
        texts = self._aliases()
        crashing = documents[0].replace("</bib>", f"<!--{CRASH}--></bib>")
        with ProcessServicePool(
            BIB_DTD_STRONG, workers=self.WORKERS, _crash_marker=CRASH
        ) as pool:
            for i, text in enumerate(texts):
                pool.register(text, key=f"a{i}")
            served = list(pool.serve([crashing, documents[1]]))
            assert sorted(outcome.ok for outcome in served) == [False, True]
            (failure,) = [o for o in served if not o.ok]
            assert isinstance(failure.error, WorkerCrashError)
            assert pool.worker_respawns == 1
            # Respawn re-ships the one deduped artifact (plus re-sends the
            # three alias subscriptions, which are not plan ships).
            assert pool.metrics.ship_count == self.WORKERS * 1 + 1
            # The respawned slot still answers for every alias key.
            (ok,) = [o for o in served if o.ok]
            assert set(ok.results) == {f"a{i}" for i in range(len(texts))}

    def test_unregister_to_zero_drops_the_structure_everywhere(self, documents):
        texts = self._aliases()
        with ProcessServicePool(BIB_DTD_STRONG, workers=self.WORKERS) as pool:
            for i, text in enumerate(texts):
                pool.register(text, key=f"a{i}")
            pool.unregister("a0")
            pool.unregister("a1")
            # A live subscriber keeps the structure (no drop yet)...
            assert len(pool.structures) == 1
            (structure,) = pool.structures.values()
            assert structure.refcount == 1
            served = list(pool.serve([documents[0]]))
            assert served[0].ok and set(served[0].results) == {"a2"}
            # ...and releasing the last one drops it parent-side and in
            # every worker: re-registering must ship a fresh artifact.
            pool.unregister("a2")
            assert pool.structures == {}
            shipped = pool.metrics.ship_count
            pool.register(TITLES_QUERY, key="t")
            assert pool.metrics.ship_count == shipped + self.WORKERS
            served = list(pool.serve([documents[0]]))
            assert served[0].ok and set(served[0].results) == {"t"}
            assert pool.worker_compilations() == {0: 0, 1: 0}
