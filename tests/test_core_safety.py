"""Unit tests for FluX safety checking (Section 2 of the paper)."""

import pytest

from repro.core.flux import (
    FBufferedExpr,
    FConstructor,
    FluxQuery,
    FProcessStream,
    FSequence,
    OnFirstHandler,
    OnHandler,
)
from repro.core.normalform import normalize
from repro.core.safety import assert_safe, check_safety
from repro.core.scheduler import schedule_query
from repro.errors import UnsafeFluxQueryError
from repro.xquery.parser import parse_xquery


def scheduled(query, dtd):
    flux, _ = schedule_query(normalize(parse_xquery(query)), dtd)
    return flux


def hand_written_flux(dtd, past_labels, body_query, element_type="book"):
    """Build `process-stream $book` with a single on-first handler by hand."""
    handler = OnFirstHandler(frozenset(past_labels), FBufferedExpr(parse_xquery(body_query)))
    stream = FProcessStream("book", element_type, (handler,))
    return FluxQuery(stream, dtd)


class TestPaperExamples:
    def test_paper_safe_query(self, paper_weak_dtd):
        # The Section 2 FluX query: on-first past(title,author) reading
        # $book/author is safe for the weak DTD.
        query = hand_written_flux(
            paper_weak_dtd, {"title", "author"}, "for $a in $book/author return $a"
        )
        assert check_safety(query) == []

    def test_paper_unsafe_query(self):
        # The paper's unsafe variant: the DTD production
        # book ((title|author)*, price) with a handler firing at
        # past(title,author) but reading $book/price — the price buffer
        # would still be empty.
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd(
            "<!ELEMENT bib (book)*>"
            "<!ELEMENT book ((title|author)*,price)>"
            "<!ELEMENT title (#PCDATA)>"
            "<!ELEMENT author (#PCDATA)>"
            "<!ELEMENT price (#PCDATA)>"
        )
        query = hand_written_flux(
            dtd, {"title", "author"}, "for $p in $book/price return $p"
        )
        # Under the paper's strict firing convention (the handler runs before
        # the triggering child is read) the price buffer is still empty.
        violations = check_safety(query, strict_firing=True)
        assert violations
        assert violations[0].label == "price"
        # This runtime completes the triggering child before firing, so the
        # default (runtime-aligned) check accepts the query.
        assert check_safety(query) == []

    def test_reading_a_label_included_in_the_condition_is_safe(self, paper_dtd):
        query = hand_written_flux(
            paper_dtd, {"author"}, "for $a in $book/author return $a"
        )
        assert check_safety(query) == []

    def test_reading_label_ordered_before_condition_is_safe(self, paper_dtd):
        # When past(author) holds under Figure 1, titles are certainly past
        # too (title precedes author), so reading $book/title is safe even
        # though title is not in the condition set.
        query = hand_written_flux(
            paper_dtd, {"author", "editor"}, "for $t in $book/title return $t"
        )
        assert check_safety(query) == []

    def test_reading_later_label_is_unsafe(self, paper_dtd):
        # past(title) can hold while authors are still to come.
        query = hand_written_flux(
            paper_dtd, {"title"}, "for $a in $book/author return $a"
        )
        assert check_safety(query)


class TestStreamingHandlerRules:
    def test_on_handler_reading_siblings_is_unsafe(self, paper_dtd):
        handler = OnHandler(
            "title", "t", FBufferedExpr(parse_xquery("for $a in $book/author return $a"))
        )
        stream = FProcessStream("book", "book", (handler,))
        violations = check_safety(FluxQuery(stream, paper_dtd))
        assert violations
        assert "sibling" in violations[0].reason

    def test_on_handler_using_its_own_variable_is_safe(self, paper_dtd):
        handler = OnHandler("title", "t", FBufferedExpr(parse_xquery("$t")))
        stream = FProcessStream("book", "book", (handler,))
        assert check_safety(FluxQuery(stream, paper_dtd)) == []


class TestScheduledQueriesAreSafe:
    @pytest.mark.parametrize(
        "query",
        [
            "<r>{ for $b in $ROOT/bib/book return <x>{ $b/title }{ $b/author }</x> }</r>",
            "<r>{ for $b in $ROOT/bib/book return <x>{ $b/author }{ $b/title }</x> }</r>",
            "<r>{ for $b in $ROOT/bib/book where $b/price > 10 return $b/title }</r>",
            "<r>{ for $b in $ROOT/bib/book return $b }</r>",
        ],
    )
    def test_scheduler_output_is_safe_for_strong_dtd(self, paper_dtd, query):
        assert check_safety(scheduled(query, paper_dtd)) == []

    def test_scheduler_output_is_safe_for_weak_dtd(self, paper_weak_dtd, paper_q3):
        assert check_safety(scheduled(paper_q3, paper_weak_dtd)) == []

    def test_scheduler_output_without_dtd_is_safe(self, paper_q3):
        flux, _ = schedule_query(normalize(parse_xquery(paper_q3)), None)
        assert check_safety(flux, None) == []

    def test_whole_subtree_condition_fires_at_end_and_is_safe(self, paper_dtd):
        handler = OnFirstHandler(
            frozenset({"__whole_subtree__", "*"}) - {"__whole_subtree__"},
            FBufferedExpr(parse_xquery("$book/title")),
        )
        # A handler whose condition contains the whole-subtree marker only
        # fires at the closing tag, which is always safe.
        from repro.xquery.analysis import WHOLE_SUBTREE

        handler = OnFirstHandler(frozenset({WHOLE_SUBTREE}), FBufferedExpr(parse_xquery("$book/title")))
        stream = FProcessStream("book", "book", (handler,))
        assert check_safety(FluxQuery(stream, paper_dtd)) == []

    def test_violation_string_representation(self, paper_dtd):
        query = hand_written_flux(paper_dtd, {"title"}, "for $a in $book/author return $a")
        violations = check_safety(query)
        assert "process-stream $book" in str(violations[0])
