"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dtd.parser import parse_dtd
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG, BIB_DTD_WEAK
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.xmark import generate_auction_site

#: The DTD of Figure 1 of the paper (flat PCDATA authors), used by tests that
#: follow the paper's examples literally.
PAPER_FIGURE1_DTD = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

#: The weak DTD of Section 2 of the paper.
PAPER_WEAK_DTD = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
"""

#: A small hand-written document valid for the Figure 1 DTD.
PAPER_DOCUMENT = (
    '<bib>'
    '<book year="1994"><title>TCP/IP Illustrated</title>'
    '<author>Stevens</author>'
    '<publisher>Addison-Wesley</publisher><price>65.95</price></book>'
    '<book year="2000"><title>Data on the Web</title>'
    '<author>Abiteboul</author><author>Buneman</author><author>Suciu</author>'
    '<publisher>Morgan Kaufmann</publisher><price>39.95</price></book>'
    '<book year="1999"><title>Digital Typography</title>'
    '<editor>Knuth</editor>'
    '<publisher>CSLI</publisher><price>50.00</price></book>'
    '</bib>'
)

#: A document valid only for the weak DTD (titles and authors interleave).
PAPER_WEAK_DOCUMENT = (
    "<bib>"
    "<book><author>A1</author><title>T1</title><author>A2</author></book>"
    "<book><title>T2</title><title>T2b</title></book>"
    "<book></book>"
    "</bib>"
)

#: The paper's XMP Q3 query (titles and authors of each book, grouped).
PAPER_Q3 = """
<results>
{ for $b in $ROOT/bib/book return
  <result> { $b/title } { $b/author } </result> }
</results>
"""


@pytest.fixture
def paper_dtd():
    """Parsed Figure 1 DTD."""
    return parse_dtd(PAPER_FIGURE1_DTD)


@pytest.fixture
def paper_weak_dtd():
    """Parsed weak DTD of Section 2."""
    return parse_dtd(PAPER_WEAK_DTD)


@pytest.fixture
def paper_document():
    return PAPER_DOCUMENT


@pytest.fixture
def paper_weak_document():
    return PAPER_WEAK_DOCUMENT


@pytest.fixture
def paper_q3():
    return PAPER_Q3


@pytest.fixture(scope="session")
def bib_dtd_strong():
    return parse_dtd(BIB_DTD_STRONG)


@pytest.fixture(scope="session")
def bib_dtd_weak():
    return parse_dtd(BIB_DTD_WEAK)


@pytest.fixture(scope="session")
def auction_dtd():
    return parse_dtd(AUCTION_DTD)


@pytest.fixture(scope="session")
def small_bibliography():
    """A deterministic 20-book bibliography conforming to the strong DTD."""
    return generate_bibliography(num_books=20, seed=7)


@pytest.fixture(scope="session")
def small_weak_bibliography():
    """A deterministic 20-book bibliography conforming only to the weak DTD."""
    return generate_bibliography(num_books=20, seed=7, conform_to="weak")


@pytest.fixture(scope="session")
def small_auction_site():
    """A deterministic small auction document."""
    return generate_auction_site(scale=0.1, seed=11)
