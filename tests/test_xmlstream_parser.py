"""Unit tests for the streaming XML parser."""

import io

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import (
    StreamingXMLParser,
    parse_events,
    resolve_entities,
)


def events_of(xml, **kwargs):
    return list(parse_events(xml, **kwargs))


class TestBasicParsing:
    def test_single_empty_element(self):
        events = events_of("<a/>")
        assert events == [StartDocument(), StartElement("a"), EndElement("a"), EndDocument()]

    def test_element_with_text(self):
        events = events_of("<a>hello</a>")
        assert events == [
            StartDocument(),
            StartElement("a"),
            Text("hello"),
            EndElement("a"),
            EndDocument(),
        ]

    def test_nested_elements(self):
        events = events_of("<a><b>x</b><c/></a>")
        names = [e.name for e in events if isinstance(e, StartElement)]
        assert names == ["a", "b", "c"]

    def test_attributes_double_and_single_quotes(self):
        events = events_of("""<a x="1" y='two'/>""")
        start = events[1]
        assert start.attributes == {"x": "1", "y": "two"}

    def test_attribute_entity_resolution(self):
        events = events_of('<a title="a &amp; b"/>')
        assert events[1].attributes["title"] == "a & b"

    def test_whitespace_between_elements_dropped_by_default(self):
        events = events_of("<a>\n  <b>x</b>\n</a>")
        assert not any(isinstance(e, Text) and not e.text.strip() for e in events)

    def test_whitespace_preserved_when_requested(self):
        events = events_of("<a>\n  <b>x</b>\n</a>", keep_whitespace=True)
        assert any(isinstance(e, Text) and e.text.strip() == "" for e in events)

    def test_self_closing_element_emits_both_tags(self):
        events = events_of("<a><b/></a>")
        assert EndElement("b") in events

    def test_mixed_content_order(self):
        events = events_of("<p>one<b>two</b>three</p>")
        kinds = [type(e).__name__ for e in events[1:-1]]
        assert kinds == ["StartElement", "Text", "StartElement", "Text", "EndElement", "Text", "EndElement"]


class TestEntities:
    def test_predefined_entities_in_text(self):
        events = events_of("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>")
        assert events[2] == Text("1 < 2 && 3 > 2")

    def test_numeric_character_references(self):
        assert resolve_entities("&#65;&#x42;") == "AB"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            events_of("<a>&unknown;</a>")

    def test_unterminated_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            events_of("<a>&amp</a>")

    def test_quote_and_apos(self):
        assert resolve_entities("&quot;&apos;") == "\"'"


class TestStructuralConstructs:
    def test_comments_are_skipped(self):
        events = events_of("<a><!-- a comment --><b/></a>")
        assert not any(isinstance(e, Text) for e in events)

    def test_processing_instruction_and_xml_decl_skipped(self):
        events = events_of('<?xml version="1.0"?><?pi data?><a/>')
        assert events[1] == StartElement("a")

    def test_cdata_contributes_text(self):
        events = events_of("<a><![CDATA[<not parsed> & raw]]></a>")
        assert events[2] == Text("<not parsed> & raw")

    def test_doctype_internal_subset_is_captured(self):
        parser = StreamingXMLParser('<!DOCTYPE bib [<!ELEMENT bib (book)*>]><bib/>')
        list(parser.events())
        assert parser.doctype_name == "bib"
        assert "<!ELEMENT bib" in parser.doctype_internal_subset

    def test_doctype_without_subset(self):
        parser = StreamingXMLParser('<!DOCTYPE bib SYSTEM "bib.dtd"><bib/>')
        list(parser.events())
        assert parser.doctype_name == "bib"
        assert parser.doctype_internal_subset is None


class TestErrors:
    @pytest.mark.parametrize(
        "xml",
        [
            "<a><b></a>",          # mismatched nesting
            "<a>",                 # unclosed element
            "</a>",                # stray closing tag
            "<a></a><b></b>",      # two root elements
            "text only",           # no root element
            "<a x=1/>",            # unquoted attribute
            "<a x/>",              # attribute without value
            "<>bad</>",            # empty tag name
            "<a><!-- unterminated </a>",
        ],
    )
    def test_malformed_documents_raise(self, xml):
        with pytest.raises(XMLSyntaxError):
            events_of(xml)

    def test_text_outside_root_rejected(self):
        with pytest.raises(XMLSyntaxError):
            events_of("<a/>trailing")

    def test_error_carries_offset(self):
        try:
            events_of("<a>&nope;</a>")
        except XMLSyntaxError as error:
            assert error.offset >= 0
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")


class TestFileLikeInput:
    def test_parsing_from_file_object(self):
        source = io.StringIO("<a><b>hi</b></a>")
        events = list(parse_events(source))
        assert events[1] == StartElement("a")
        assert Text("hi") in events

    def test_chunked_reading_matches_string_parsing(self):
        xml = "<root>" + "".join(f"<item n=\"{i}\">value {i}</item>" for i in range(200)) + "</root>"
        from_string = list(parse_events(xml))
        parser = StreamingXMLParser(io.StringIO(xml), chunk_size=37)
        from_file = list(parser.events())
        assert from_string == from_file

    def test_large_document_streams(self, small_bibliography):
        count = sum(1 for e in parse_events(small_bibliography) if isinstance(e, StartElement))
        assert count > 20
