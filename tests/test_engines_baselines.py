"""Unit tests for the DOM and projection baseline engines."""

import pytest

from repro.engines.dom_engine import DomEngine
from repro.engines.projection_engine import ProjectionEngine, projection_paths
from repro.xquery.parser import parse_xquery
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query


class TestDomEngine:
    def test_output_matches_reference_semantics(self, paper_document, paper_q3):
        result = DomEngine().execute(paper_q3, paper_document)
        assert result.output.startswith("<results>")
        assert result.output.count("<result>") == 3

    def test_peak_memory_is_whole_document(self, paper_document, paper_q3):
        result = DomEngine().execute(paper_q3, paper_document)
        # The accounting includes per-node overheads, so the tree estimate is
        # in the same ballpark as (and not smaller than half of) the text.
        assert result.peak_buffer_bytes > len(paper_document) // 2

    def test_memory_is_query_independent(self, paper_document):
        titles = DomEngine().execute("<t>{ $ROOT/bib/book/title }</t>", paper_document)
        everything = DomEngine().execute("<t>{ $ROOT/bib/book }</t>", paper_document)
        assert titles.peak_buffer_bytes == everything.peak_buffer_bytes

    def test_optional_validation(self, paper_dtd, paper_weak_document, paper_q3):
        from repro.errors import XMLValidationError

        engine = DomEngine(paper_dtd, validate=True)
        with pytest.raises(XMLValidationError):
            engine.execute(paper_q3, paper_weak_document)

    def test_atomic_results_are_escaped(self):
        result = DomEngine().execute("$ROOT/a/text()", "<a>x &lt; y</a>")
        assert result.output == "x &lt; y"


class TestProjectionPaths:
    def test_q3_projection_keeps_title_and_author_subtrees(self, paper_q3):
        tree = projection_paths(parse_xquery(paper_q3))
        paths = dict(tree.paths())
        assert paths[("bib",)] is False
        assert paths[("bib", "book")] is False
        assert paths[("bib", "book", "title")] is True
        assert paths[("bib", "book", "author")] is True
        assert ("bib", "book", "price") not in paths

    def test_loop_spine_not_kept(self):
        tree = projection_paths(parse_xquery("for $b in $ROOT/bib/book return $b/@year"))
        paths = dict(tree.paths())
        assert paths[("bib", "book")] is False

    def test_returned_variable_keeps_subtree(self):
        tree = projection_paths(parse_xquery("for $b in $ROOT/bib/book return $b"))
        assert dict(tree.paths())[("bib", "book")] is True

    def test_condition_paths_kept(self):
        tree = projection_paths(
            parse_xquery("for $b in $ROOT/bib/book where $b/price > 3 return $b/@year")
        )
        assert dict(tree.paths())[("bib", "book", "price")] is True

    def test_descendant_step_keeps_subtree(self):
        tree = projection_paths(parse_xquery("<x>{ $ROOT//author }</x>"))
        assert tree.keep_subtree or any(keep for _, keep in tree.paths())


class TestProjectionEngine:
    def test_output_matches_dom(self, paper_document, paper_q3):
        dom = DomEngine().execute(paper_q3, paper_document)
        projected = ProjectionEngine().execute(paper_q3, paper_document)
        assert dom.output == projected.output

    def test_memory_between_flux_and_dom(self, small_bibliography):
        from repro.engines.flux_engine import FluxEngine

        spec = get_query("BIB-Q3")
        flux = FluxEngine(BIB_DTD_STRONG).execute(spec.xquery, small_bibliography)
        projected = ProjectionEngine(BIB_DTD_STRONG).execute(spec.xquery, small_bibliography)
        dom = DomEngine(BIB_DTD_STRONG).execute(spec.xquery, small_bibliography)
        assert flux.peak_buffer_bytes < projected.peak_buffer_bytes < dom.peak_buffer_bytes

    def test_projection_depends_on_query(self, paper_document):
        title_only = ProjectionEngine().execute(
            "<t>{ $ROOT/bib/book/title }</t>", paper_document
        )
        whole_books = ProjectionEngine().execute(
            "<t>{ $ROOT/bib/book }</t>", paper_document
        )
        assert title_only.peak_buffer_bytes < whole_books.peak_buffer_bytes

    def test_attribute_only_query_projects_spine(self, paper_document):
        result = ProjectionEngine().execute(
            "<years>{ for $b in $ROOT/bib/book return $b/@year }</years>", paper_document
        )
        assert result.output == "<years>1994 2000 1999</years>"
        assert result.peak_buffer_bytes < len(paper_document) // 2

    def test_query_not_touching_document(self, paper_document):
        result = ProjectionEngine().execute("<hello/>", paper_document)
        assert result.output == "<hello></hello>"
