"""Tests for the static query analyzer (``repro.analysis.query``).

Covers the three layers: buffer-bound classification against the paper's
strong/weak Figure 1 DTDs, the cardinality/cost model (including its
calibration from persisted pass observations), and the execution-mode
policy.  The soundness property the classes promise — a ``CONST`` plan's
peak buffer does not grow with the document — is checked by actually
running documents of increasing size through the engine.
"""

import pytest

from repro.analysis.query import (
    CONST,
    DOC,
    FANOUT,
    CostEstimate,
    apply_observations,
    classify_plan,
    estimate_cost,
    explain_compiled,
    select_mode,
    static_cost,
)
from repro.core.optimizer import OptimizerPipeline
from repro.dtd.model import INFINITY
from repro.engines.flux_engine import FluxEngine
from repro.runtime.compiler import compile_query
from repro.runtime.plan_cache import PlanObservations
from tests.conftest import PAPER_Q3

# Emits price before title: under the strong DTD title *arrives* first and
# must be held until the price is written — exactly one buffered <title>
# per book, the canonical CONST case.
SWAP_QUERY = """
for $book in $ROOT/bib/book
return <entry>{ $book/price }{ $book/title }</entry>
"""


def compiled(query, dtd):
    return compile_query(query, pipeline=OptimizerPipeline(dtd))


class TestClassifyPlan:
    def test_strong_dtd_q3_is_fully_streaming(self, paper_dtd):
        analysis = classify_plan(compiled(PAPER_Q3, paper_dtd).plan)
        assert not analysis.handlers
        assert analysis.plan_class is None
        assert analysis.max_degree == 0.0

    def test_weak_dtd_q3_buffers_fanout(self, paper_weak_dtd):
        analysis = classify_plan(compiled(PAPER_Q3, paper_weak_dtd).plan)
        assert analysis.plan_class == FANOUT
        (handler,) = analysis.handlers
        assert handler.buffer_class == FANOUT
        assert handler.degree == 1.0
        # The unbounded axis is author-under-book (the weak DTD repeats it).
        assert [(a.element_type, a.label) for a in handler.axes] == [("book", "author")]
        assert handler.axes[0].max_count == INFINITY

    def test_no_dtd_is_doc_class(self):
        analysis = classify_plan(compiled(PAPER_Q3, None).plan)
        assert analysis.plan_class == DOC
        assert analysis.max_degree == INFINITY
        assert any("no DTD" in reason for h in analysis.handlers for reason in h.reasons)

    def test_order_violation_under_strong_dtd_is_const(self, paper_dtd):
        analysis = classify_plan(compiled(SWAP_QUERY, paper_dtd).plan)
        assert analysis.plan_class == CONST
        (handler,) = analysis.handlers
        assert handler.buffer_class == CONST
        assert handler.degree == 0.0
        # Exactly one title per book: every axis statically bounded.
        assert all(axis.max_count < INFINITY for axis in handler.axes)

    def test_handlers_carry_plan_paths(self, paper_weak_dtd):
        analysis = classify_plan(compiled(PAPER_Q3, paper_weak_dtd).plan)
        for handler in analysis.handlers:
            assert handler.path.startswith("0")
            assert analysis.by_path()[handler.path] is handler


def make_bib(num_books, title="A Fixed-Width Title", authors=1):
    """A Figure-1-valid document of ``num_books`` identical books."""
    book = (
        f"<book><title>{title}</title>"
        + "<author>Stevens</author>" * authors
        + "<publisher>P</publisher><price>9.99</price></book>"
    )
    return "<bib>" + book * num_books + "</bib>"


class TestConstSoundness:
    def test_const_peak_buffer_flat_as_document_grows(self, paper_dtd):
        """The CONST promise: per-pass peak buffer independent of size.

        Books are identical, so a truly per-instance-bounded buffer peaks
        at exactly the same byte count whether the document holds 5 books
        or 200 — any growth with the document would falsify the class.
        """
        engine = FluxEngine(paper_dtd)
        analysis = classify_plan(engine.compile(SWAP_QUERY).plan)
        assert analysis.plan_class == CONST
        peaks = [
            engine.execute(SWAP_QUERY, make_bib(n)).peak_buffer_bytes for n in (5, 50, 200)
        ]
        assert peaks[0] > 0  # something was actually buffered
        assert peaks[0] == peaks[1] == peaks[2]

    def test_fanout_peak_buffer_grows_with_fanout(self, paper_dtd):
        """Contrast: a FANOUT plan's buffer tracks the repeated axis.

        Publisher is emitted first but arrives *after* the authors, so
        every author of a book is buffered until its publisher streams by
        — an unbounded (``author+``) axis, and the byte peak shows it.
        """
        query = """
        for $book in $ROOT/bib/book
        return <entry>{ $book/publisher }{ $book/author }</entry>
        """
        engine = FluxEngine(paper_dtd)
        few = engine.execute(query, make_bib(40, authors=1))
        many = engine.execute(query, make_bib(40, authors=8))
        assert many.peak_buffer_bytes > few.peak_buffer_bytes


class TestCostModel:
    def test_streaming_plan_scores_below_buffered_plan(self, paper_dtd, paper_weak_dtd):
        streaming = estimate_cost(compiled(PAPER_Q3, paper_dtd))
        buffered = estimate_cost(compiled(PAPER_Q3, paper_weak_dtd))
        assert streaming.score > 0
        assert buffered.items_buffered > streaming.items_buffered
        assert buffered.score > streaming.score

    def test_no_dtd_scores_worst(self, paper_weak_dtd):
        weak = estimate_cost(compiled(PAPER_Q3, paper_weak_dtd))
        blind = estimate_cost(compiled(PAPER_Q3, None))
        assert blind.score > weak.score

    def test_static_cost_is_memoized_on_the_entry(self, paper_dtd):
        entry = compiled(PAPER_Q3, paper_dtd)
        score = static_cost(entry)
        assert score == estimate_cost(entry).score
        assert entry.__dict__["_static_cost"] == score
        assert static_cost(entry) == score

    def test_apply_observations_recalibrates_events(self, paper_dtd):
        estimate = estimate_cost(compiled(PAPER_Q3, paper_dtd))
        observed = PlanObservations()
        observed.record(events_routed=estimate.events_routed * 10, document_bytes=1000.0,
                        elapsed_seconds=0.1)
        calibrated = apply_observations(estimate, observed)
        assert calibrated.observed_passes == 1
        assert calibrated.events_routed == pytest.approx(estimate.events_routed * 10)
        assert calibrated.score > estimate.score

    def test_apply_observations_without_data_is_identity(self, paper_dtd):
        estimate = estimate_cost(compiled(PAPER_Q3, paper_dtd))
        assert apply_observations(estimate, None) is estimate
        assert apply_observations(estimate, PlanObservations()) is estimate


def _cost(per_event=2.0):
    return CostEstimate(
        events_routed=100.0,
        items_buffered=10.0,
        per_event_cost=per_event,
        document_events=100.0,
        score=100.0 * per_event,
    )


class TestModePolicy:
    def test_single_document_stays_inline(self):
        decision = select_mode([_cost()], document_bytes=1 << 20, document_count=1, cpu_count=8)
        assert decision.execution == "inline"
        assert decision.workers is None
        assert not decision.pooled

    def test_single_core_stays_inline(self):
        decision = select_mode([_cost()], document_bytes=1 << 24, document_count=50, cpu_count=1)
        assert decision.workers is None

    def test_light_fleet_skips_the_pool(self):
        decision = select_mode([_cost(0.001)], document_bytes=1 << 10, document_count=4,
                               cpu_count=8)
        assert decision.workers is None

    def test_heavy_fleet_goes_to_processes(self):
        decision = select_mode([_cost(100.0)] * 10, document_bytes=1 << 24, document_count=16,
                               cpu_count=8)
        assert decision.backend == "processes"
        assert decision.pooled
        assert 1 <= decision.workers <= 8

    def test_middling_fleet_uses_thread_pool(self):
        decision = select_mode([_cost(2.0)], document_bytes=1 << 20, document_count=4, cpu_count=8)
        assert decision.backend == "threads"
        assert decision.pooled
        assert 1 <= decision.workers <= 4

    def test_describe_and_reasons(self):
        decision = select_mode([_cost()], document_count=1, cpu_count=8)
        assert decision.describe().startswith("execution=inline")
        assert decision.reasons


class TestExplainReport:
    def test_report_sections_and_classes(self, paper_weak_dtd):
        report = explain_compiled(compiled(PAPER_Q3, paper_weak_dtd))
        assert "== Plan DAG ==" in report
        assert "== Buffer bounds ==" in report
        assert "== Static cost ==" in report
        assert "== Execution mode ==" in report
        assert "FANOUT" in report
        assert "predicted score" in report
        assert "chosen:" in report

    def test_streaming_report_says_so(self, paper_dtd):
        report = explain_compiled(compiled(PAPER_Q3, paper_dtd))
        assert "fully streaming: no buffered handlers" in report

    def test_observations_are_reported(self, paper_dtd):
        observed = PlanObservations()
        observed.record(events_routed=42.0, document_bytes=100.0, elapsed_seconds=0.01)
        report = explain_compiled(compiled(PAPER_Q3, paper_dtd), observations=observed)
        assert "calibrated from 1 observed pass(es)" in report
