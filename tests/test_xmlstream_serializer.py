"""Unit tests for serialization (trees, event streams, escaping)."""

import io

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import EndElement, StartElement, Text
from repro.xmlstream.parser import parse_events
from repro.xmlstream.serializer import (
    EventSerializer,
    escape_attribute,
    escape_text,
    serialize_events,
    serialize_tree,
)
from repro.xmlstream.tree import build_tree, parse_tree


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute_also_escapes_quotes(self):
        assert escape_attribute('say "hi" & <bye>') == "say &quot;hi&quot; &amp; &lt;bye&gt;"

    def test_escaped_output_reparses_to_same_text(self):
        original = 'tricky <text> & "quotes"'
        xml = f"<a>{escape_text(original)}</a>"
        tree = parse_tree(xml)
        assert tree.string_value() == original


class TestTreeSerialization:
    def test_compact_round_trip(self):
        xml = '<a x="1"><b>text</b><c/></a>'
        tree = parse_tree(xml)
        assert serialize_tree(tree) == xml

    def test_pretty_printing_contains_indentation(self):
        tree = parse_tree("<a><b>x</b></a>")
        pretty = serialize_tree(tree, indent="  ")
        assert "\n" in pretty
        assert "  <b>" in pretty

    def test_attribute_escaping_on_output(self):
        tree = parse_tree('<a note="x &amp; y"/>')
        assert 'note="x &amp; y"' in serialize_tree(tree)


class TestEventSerialization:
    def test_serialize_events_round_trip(self):
        xml = '<root><item n="1">one &amp; two</item><empty></empty></root>'
        events = list(parse_events(xml))
        assert serialize_events(events) == xml

    def test_incremental_serializer_counts_bytes(self):
        sink = io.StringIO()
        serializer = EventSerializer(sink)
        serializer.write(StartElement("a"))
        serializer.write(Text("hello"))
        serializer.write(EndElement("a"))
        serializer.close()
        assert sink.getvalue() == "<a>hello</a>"
        assert serializer.bytes_written == len("<a>hello</a>")

    def test_unbalanced_end_tag_rejected(self):
        serializer = EventSerializer(io.StringIO())
        serializer.write(StartElement("a"))
        with pytest.raises(XMLSyntaxError):
            serializer.write(EndElement("b"))

    def test_close_with_open_elements_rejected(self):
        serializer = EventSerializer(io.StringIO())
        serializer.write(StartElement("a"))
        with pytest.raises(XMLSyntaxError):
            serializer.close()

    def test_serialized_events_rebuild_equal_tree(self, small_bibliography):
        events = list(parse_events(small_bibliography))
        text = serialize_events(events)
        assert build_tree(parse_events(text)).deep_equal(build_tree(iter(events)))
