"""Integration tests: all engines agree on the full query catalogue.

Engine agreement is the correctness precondition for every performance claim
in the reproduced evaluation: the FluX engine (streamed, schema-driven), the
projection engine and the DOM engine must return byte-identical results on
every catalogued query and workload.
"""

import pytest

from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.engines.projection_engine import ProjectionEngine
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG, BIB_DTD_WEAK
from repro.workloads.queries import queries_for_workload, get_query
from repro.workloads.bibgen import generate_bibliography


def engine_outputs(dtd, query, document):
    engines = [FluxEngine(dtd), ProjectionEngine(dtd), DomEngine(dtd)]
    return {engine.name: engine.execute(query, document) for engine in engines}


class TestBibliographyAgreement:
    @pytest.mark.parametrize("key", [spec.key for spec in queries_for_workload("bib")])
    def test_engines_agree_on_strong_dtd(self, key, small_bibliography):
        spec = get_query(key)
        results = engine_outputs(BIB_DTD_STRONG, spec.xquery, small_bibliography)
        outputs = {result.output for result in results.values()}
        assert len(outputs) == 1, f"engines disagree on {key}"

    @pytest.mark.parametrize("key", ["BIB-Q2", "BIB-Q3", "BIB-Q4"])
    def test_engines_agree_on_weak_dtd_documents(self, key, small_weak_bibliography):
        spec = get_query(key)
        results = engine_outputs(BIB_DTD_WEAK, spec.xquery, small_weak_bibliography)
        outputs = {result.output for result in results.values()}
        assert len(outputs) == 1, f"engines disagree on {key} (weak DTD)"

    @pytest.mark.parametrize("key", [spec.key for spec in queries_for_workload("bib")])
    def test_flux_never_buffers_more_than_dom(self, key, small_bibliography):
        spec = get_query(key)
        results = engine_outputs(BIB_DTD_STRONG, spec.xquery, small_bibliography)
        assert results["flux"].peak_buffer_bytes <= results["dom"].peak_buffer_bytes


class TestAuctionAgreement:
    @pytest.mark.parametrize("key", [spec.key for spec in queries_for_workload("auction")])
    def test_engines_agree(self, key, small_auction_site):
        spec = get_query(key)
        results = engine_outputs(AUCTION_DTD, spec.xquery, small_auction_site)
        outputs = {result.output for result in results.values()}
        assert len(outputs) == 1, f"engines disagree on {key}"

    def test_streaming_auction_query_uses_no_buffers(self, small_auction_site):
        spec = get_query("AUC-A1")
        result = FluxEngine(AUCTION_DTD).execute(spec.xquery, small_auction_site)
        assert result.peak_buffer_bytes == 0


class TestScalingBehaviour:
    """The memory growth claims behind the scaling figure (F3)."""

    def test_flux_memory_constant_in_document_size(self):
        spec = get_query("BIB-Q3")
        engine = FluxEngine(BIB_DTD_STRONG)
        small = engine.execute(spec.xquery, generate_bibliography(num_books=20, seed=1))
        large = engine.execute(spec.xquery, generate_bibliography(num_books=200, seed=1))
        assert small.peak_buffer_bytes == large.peak_buffer_bytes == 0

    def test_dom_memory_grows_linearly(self):
        spec = get_query("BIB-Q3")
        engine = DomEngine(BIB_DTD_STRONG)
        small_doc = generate_bibliography(num_books=20, seed=1)
        large_doc = generate_bibliography(num_books=200, seed=1)
        small = engine.execute(spec.xquery, small_doc)
        large = engine.execute(spec.xquery, large_doc)
        ratio = large.peak_buffer_bytes / small.peak_buffer_bytes
        assert 6 < ratio < 14  # roughly 10x the books

    def test_bounded_query_memory_grows_sublinearly_for_flux(self):
        spec = get_query("BIB-Q1")
        engine = FluxEngine(BIB_DTD_STRONG)
        small_doc = generate_bibliography(num_books=20, seed=1)
        large_doc = generate_bibliography(num_books=200, seed=1)
        small = engine.execute(spec.xquery, small_doc)
        large = engine.execute(spec.xquery, large_doc)
        # Per-book buffering: the peak depends on the largest book, not on
        # the number of books.
        assert large.peak_buffer_bytes < 3 * small.peak_buffer_bytes
