"""Additional XSAX and streamed-evaluator edge cases."""

import pytest

from repro.core.optimizer import OptimizerPipeline
from repro.dtd.parser import parse_dtd
from repro.runtime.compiler import compile_flux
from repro.runtime.evaluator import StreamedEvaluator
from repro.runtime.xsax import ConditionRegistry, OnFirstEvent, XSAXReader
from repro.xmlstream.parser import parse_events


def run_flux(query, document, dtd_text):
    dtd = parse_dtd(dtd_text) if dtd_text else None
    optimized = OptimizerPipeline(dtd).compile(query)
    plan = compile_flux(optimized.flux, optimized.dtd)
    return StreamedEvaluator(plan, optimized.dtd).run_to_string(parse_events(document))


OPTIONAL_DTD = """
<!ELEMENT list (entry)*>
<!ELEMENT entry (key?,value?)>
<!ELEMENT key (#PCDATA)>
<!ELEMENT value (#PCDATA)>
"""

MIXED_DTD = """
<!ELEMENT doc (para)*>
<!ELEMENT para (#PCDATA|em)*>
<!ELEMENT em (#PCDATA)>
"""


class TestOptionalChildren:
    def test_missing_optional_children_produce_empty_output(self):
        query = "<out>{ for $e in $ROOT/list/entry return <pair>{ $e/key }{ $e/value }</pair> }</out>"
        document = "<list><entry><key>k1</key></entry><entry><value>v2</value></entry><entry/></list>"
        output, stats = run_flux(query, document, OPTIONAL_DTD)
        assert output == (
            "<out><pair><key>k1</key></pair>"
            "<pair><value>v2</value></pair>"
            "<pair></pair></out>"
        )

    def test_empty_document_sections(self):
        query = "<out>{ for $e in $ROOT/list/entry return <x/> }</out>"
        output, stats = run_flux(query, "<list></list>", OPTIONAL_DTD)
        assert output == "<out></out>"
        assert stats.peak_buffer_bytes == 0


class TestMixedContent:
    def test_mixed_content_copy_preserves_text(self):
        query = "<out>{ for $p in $ROOT/doc/para return $p }</out>"
        document = "<doc><para>one <em>two</em> three</para></doc>"
        output, _ = run_flux(query, document, MIXED_DTD)
        assert output == "<out><para>one <em>two</em> three</para></out>"

    def test_mixed_content_buffered_copy(self):
        # Reversing output order forces buffering of the em children while
        # the text must still round-trip through the buffered copy.
        query = "<out>{ for $p in $ROOT/doc/para return <r>{ $p/em }{ $p }</r> }</out>"
        document = "<doc><para>x <em>y</em> z</para></doc>"
        output, _ = run_flux(query, document, MIXED_DTD)
        assert "<em>y</em>" in output
        assert "x <em>y</em> z" in output


class TestXSAXRobustness:
    def test_text_events_do_not_disturb_conditions(self):
        dtd = parse_dtd(MIXED_DTD)
        registry = ConditionRegistry()
        registry.register("para", frozenset({"em"}))
        events = list(
            XSAXReader(
                parse_events("<doc><para>a<em>b</em>c</para></doc>", keep_whitespace=True),
                dtd,
                registry,
            )
        )
        assert sum(1 for e in events if isinstance(e, OnFirstEvent)) == 1

    def test_multiple_element_instances_reset_conditions(self):
        dtd = parse_dtd(OPTIONAL_DTD)
        registry = ConditionRegistry()
        registry.register("entry", frozenset({"key"}))
        document = "<list><entry><key>a</key></entry><entry/><entry><key>b</key></entry></list>"
        events = list(XSAXReader(parse_events(document), dtd, registry))
        assert sum(1 for e in events if isinstance(e, OnFirstEvent)) == 3

    def test_deeply_nested_document(self):
        depth = 60
        document = "".join(f"<n{i}>" for i in range(depth)) + "x" + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        events = list(XSAXReader(parse_events(document), None, ConditionRegistry()))
        assert len(events) == 2 * depth + 3
