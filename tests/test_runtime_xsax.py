"""Unit tests for the XSAX reader (validating parser with on-first events)."""

import pytest

from repro.errors import XMLValidationError
from repro.runtime.xsax import ConditionRegistry, OnFirstEvent, XSAXReader
from repro.runtime.stats import RuntimeStats
from repro.xmlstream.events import EndElement, StartElement, Text
from repro.xmlstream.parser import parse_events
from repro.xquery.analysis import DOCUMENT_TYPE


def read_all(document, dtd, registry=None, validate=True, stats=None):
    return list(XSAXReader(parse_events(document), dtd, registry, validate=validate, stats=stats))


def event_trace(events):
    """Compact trace: tag names for start/end, ``!labels`` for on-first."""
    trace = []
    for event in events:
        if isinstance(event, StartElement):
            trace.append(f"<{event.name}>")
        elif isinstance(event, EndElement):
            trace.append(f"</{event.name}>")
        elif isinstance(event, OnFirstEvent):
            trace.append("!" + ",".join(sorted(event.labels)))
    return trace


class TestPlainReading:
    def test_without_conditions_stream_is_unchanged(self, paper_dtd, paper_document):
        plain = list(parse_events(paper_document))
        xsax = read_all(paper_document, paper_dtd)
        assert xsax == plain

    def test_validation_errors_surface(self, paper_dtd, paper_weak_document):
        with pytest.raises(XMLValidationError):
            read_all(paper_weak_document, paper_dtd)

    def test_validation_can_be_disabled(self, paper_dtd, paper_weak_document):
        events = read_all(paper_weak_document, paper_dtd, validate=False)
        assert events

    def test_wrong_root_rejected(self, paper_dtd):
        with pytest.raises(XMLValidationError):
            read_all("<library/>", paper_dtd)

    def test_stats_counters(self, paper_dtd, paper_document):
        stats = RuntimeStats()
        read_all(paper_document, paper_dtd, stats=stats)
        assert stats.elements_parsed == 18
        assert stats.events_processed > 18


class TestOnFirstEvents:
    DOC = (
        "<bib><book year=\"1\">"
        "<title>T</title><author>A1</author><author>A2</author>"
        "<publisher>P</publisher><price>9</price>"
        "</book></bib>"
    )

    def test_condition_fires_once_per_element(self, paper_dtd):
        registry = ConditionRegistry()
        registry.register("book", frozenset({"title", "author"}))
        events = read_all(self.DOC, paper_dtd, registry)
        on_first = [e for e in events if isinstance(e, OnFirstEvent)]
        assert len(on_first) == 1

    def test_condition_fires_before_triggering_child(self, paper_dtd):
        registry = ConditionRegistry()
        registry.register("book", frozenset({"title", "author"}))
        trace = event_trace(read_all(self.DOC, paper_dtd, registry))
        # No further title/author is possible once the publisher arrives, so
        # the event is inserted right before <publisher>.
        index = trace.index("!author,title")
        assert trace[index + 1] == "<publisher>"

    def test_condition_on_impossible_labels_fires_immediately(self, paper_dtd):
        registry = ConditionRegistry()
        registry.register("book", frozenset({"chapter"}))
        trace = event_trace(read_all(self.DOC, paper_dtd, registry))
        index = trace.index("!chapter")
        assert trace[index - 1] == "<book>"

    def test_condition_never_early_fires_before_closing_tag(self, paper_weak_dtd):
        doc = "<bib><book><author>A</author><title>T</title></book></bib>"
        registry = ConditionRegistry()
        registry.register("book", frozenset({"title", "author"}))
        trace = event_trace(read_all(doc, paper_weak_dtd, registry))
        index = trace.index("!author,title")
        assert trace[index + 1] == "</book>"

    def test_document_level_condition(self, paper_dtd, paper_document):
        registry = ConditionRegistry()
        registry.register(DOCUMENT_TYPE, frozenset({"bib"}))
        events = read_all(paper_document, paper_dtd, registry)
        on_first = [e for e in events if isinstance(e, OnFirstEvent)]
        assert len(on_first) == 1
        # The document node has a single child, so "no further bib child" is
        # implied as soon as the root element arrives: the event is inserted
        # right before <bib> (the consumer defers firing until the root has
        # been buffered or dispatched, preserving correctness).
        trace = event_trace(events)
        assert trace.index("!bib") == trace.index("<bib>") - 1

    def test_multiple_conditions_fire_in_registration_order(self, paper_dtd):
        registry = ConditionRegistry()
        first = registry.register("book", frozenset({"title"}))
        second = registry.register("book", frozenset({"title", "author"}))
        events = read_all(self.DOC, paper_dtd, registry)
        ids = [e.condition_id for e in events if isinstance(e, OnFirstEvent)]
        assert set(ids) == {first, second}
        assert ids.index(first) < ids.index(second)

    def test_conditions_fire_per_book_instance(self, paper_dtd, paper_document):
        registry = ConditionRegistry()
        registry.register("book", frozenset({"author", "editor"}))
        events = read_all(paper_document, paper_dtd, registry)
        on_first = [e for e in events if isinstance(e, OnFirstEvent)]
        assert len(on_first) == 3  # one per book

    def test_no_dtd_means_firing_at_element_end(self):
        registry = ConditionRegistry()
        registry.register("book", frozenset({"title"}))
        doc = "<bib><book><title>T</title><price>1</price></book></bib>"
        trace = event_trace(list(XSAXReader(parse_events(doc), None, registry)))
        index = trace.index("!title")
        assert trace[index + 1] == "</book>"


class TestConditionRegistry:
    def test_register_deduplicates(self):
        registry = ConditionRegistry()
        a = registry.register("book", frozenset({"x"}))
        b = registry.register("book", frozenset({"x"}))
        c = registry.register("book", frozenset({"y"}))
        assert a == b != c
        assert len(registry) == 2

    def test_conditions_for_unknown_type_is_empty(self):
        assert ConditionRegistry().conditions_for("nothing") == []
