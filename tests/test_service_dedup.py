"""Structural plan dedup: sharing, refcounted churn, and fleet smokes.

The multi-tenancy contract has three failure modes this file attacks:

* **wrong sharing** — two different computations conflated into one
  structure, or one computation split into several (the sharing tests pin
  both directions, including the ``dedup=False`` opt-out);
* **lifecycle leaks** — a refcount that drifts under randomized
  register/unregister/replace churn, a structure that outlives its last
  subscriber or dies under a live one (the fuzz test re-checks every
  invariant after every operation, and serves documents between bursts to
  prove the surviving registrations still answer byte-identically);
* **fleet-scale wrong answers** — the 1k-query differential smokes (one
  per backend, also run as CI's ``fleet`` leg) assert shared outputs match
  solo runs with routing masks spanning *structures*, not registrants.
"""

import random

import pytest

from repro.bench.fleets import alias_query, make_fleet, run_shared, run_solo
from repro.core.optimizer import OptimizerPipeline
from repro.engines.flux_engine import FluxEngine
from repro.runtime.compiler import compile_query
from repro.runtime.plan_cache import structure_key
from repro.service import ProcessServicePool, QueryService
from repro.service.dispatcher import PlanProfile, SharedProjectionIndex
from repro.service.metrics import PassMetrics
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.xmlstream.parser import StreamingXMLParser

BASES = [spec.xquery for spec in queries_for_workload("bib")]


@pytest.fixture(scope="module")
def bib_document():
    return generate_bibliography(num_books=10, seed=7)


def _service(**kwargs):
    kwargs.setdefault("execution", "inline")
    return QueryService(BIB_DTD_STRONG, **kwargs)


class TestStructureSharing:
    def test_aliases_share_one_refcounted_structure(self):
        service = _service()
        service.register(BASES[0], key="a")
        service.register(alias_query(BASES[0], 1), key="b")
        service.register(alias_query(BASES[0], 2), key="c")
        assert len(service.structures) == 1
        (structure,) = service.structures.values()
        assert structure.refcount == 3
        assert service.metrics.queries_deduped == 2
        assert service.metrics.structures_registered == 1
        # All three registrations hold the same structure object.
        regs = service.registrations
        assert regs["a"].structure is regs["b"].structure is regs["c"].structure

    def test_distinct_queries_do_not_share(self):
        service = _service()
        service.register(BASES[0], key="a")
        service.register(BASES[1], key="b")
        assert len(service.structures) == 2
        assert service.metrics.queries_deduped == 0
        regs = service.registrations
        assert regs["a"].structure is not regs["b"].structure
        assert regs["a"].structure.skey != regs["b"].structure.skey

    def test_unregister_releases_but_keeps_live_structure(self):
        service = _service()
        service.register(BASES[0], key="a")
        service.register(alias_query(BASES[0], 1), key="b")
        service.unregister("a")
        assert len(service.structures) == 1
        (structure,) = service.structures.values()
        assert structure.refcount == 1
        assert service.metrics.structures_released == 0
        service.unregister("b")
        assert service.structures == {}
        assert service.metrics.structures_released == 1

    def test_replace_with_same_structure_keeps_the_plan(self):
        service = _service()
        service.register(BASES[0], key="a")
        service.register(alias_query(BASES[0], 1), key="a")  # replace
        assert service.metrics.queries_replaced == 1
        assert len(service.structures) == 1
        (structure,) = service.structures.values()
        assert structure.refcount == 1
        assert service.metrics.structures_released == 0

    def test_replace_with_different_structure_releases_the_old(self):
        service = _service()
        service.register(BASES[0], key="a")
        service.register(BASES[1], key="a")  # replace with a new structure
        assert len(service.structures) == 1
        (structure,) = service.structures.values()
        assert structure.skey == structure_key(
            compile_query(BASES[1], pipeline=OptimizerPipeline(service.dtd))
        )
        assert service.metrics.structures_released == 1

    def test_dedup_false_keeps_private_structures(self, bib_document):
        service = _service(dedup=False)
        service.register(BASES[0], key="a")
        service.register(alias_query(BASES[0], 1), key="b")
        assert service.structures == {}
        assert service.metrics.queries_deduped == 0
        results = service.run_pass(bib_document)
        assert service.metrics.last_pass.structures == 2
        assert results["a"].output == results["b"].output

    def test_shared_pass_evaluates_once_per_structure(self, bib_document):
        service = _service()
        fleet = make_fleet(BASES[:3], 9)
        for query in fleet:
            service.register(query.text, key=query.key)
        results = service.run_pass(bib_document)
        metrics = service.metrics.last_pass
        assert metrics.queries == 9
        assert metrics.structures == 3
        # Fan-out shares the evaluated output by reference: aliases of one
        # structure return the *same* string object, not a copy.
        assert results["q00000"].output is results["q00003"].output
        # ...while each result still echoes its own registration's text.
        assert results["q00003"].query == fleet[3].text != fleet[0].text


class TestRegistrationChurnFuzz:
    """Randomized register/unregister/replace between serve passes.

    After every operation the full invariant set must hold; every few
    operations one document is served and each registration's output is
    byte-compared against a memoized solo run of its exact text.
    """

    def _check_invariants(self, service):
        metrics = service.metrics
        assert (
            metrics.queries_registered
            - metrics.queries_unregistered
            - metrics.queries_replaced
            == len(service)
        )
        structures = service.structures
        assert (
            metrics.structures_registered - metrics.structures_released
            == len(structures)
        )
        regs = service.registrations
        # Refcounts sum to the number of live registrations, and every
        # registration holds exactly the table's object for its key.
        assert sum(s.refcount for s in structures.values()) == len(regs)
        by_skey = {}
        for registration in regs.values():
            skey = registration.structure.skey
            assert structures[skey] is registration.structure
            by_skey.setdefault(skey, registration.structure)
            assert by_skey[skey] is registration.structure

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_churn_never_leaks_or_double_frees(self, seed, bib_document):
        rng = random.Random(seed)
        texts = [
            alias_query(base, variant)
            for base in BASES[:3]
            for variant in range(4)
        ]
        engine = FluxEngine(BIB_DTD_STRONG)
        solo_memo = {}
        service = _service()
        live = {}
        for step in range(60):
            op = rng.random()
            if op < 0.55 or not live:
                key = f"k{rng.randrange(8)}"  # small keyspace forces replaces
                text = rng.choice(texts)
                service.register(text, key=key)
                live[key] = text
            elif op < 0.85:
                key = rng.choice(sorted(live))
                service.unregister(key)
                del live[key]
            else:
                if live:
                    results = service.run_pass(bib_document)
                    assert set(results) == set(live)
                    for key, text in live.items():
                        if text not in solo_memo:
                            solo_memo[text] = engine.execute(
                                text, bib_document
                            ).output
                        assert results[key].output == solo_memo[text], key
                    assert service.metrics.last_pass.structures == len(
                        {structure_key(r.entry) for r in service.registrations.values()}
                    )
            self._check_invariants(service)
        for key in sorted(live):
            service.unregister(key)
            self._check_invariants(service)
        assert service.structures == {}
        assert (
            service.metrics.structures_registered
            == service.metrics.structures_released
        )


class TestGroupMaskDomain:
    """Regression (routing cost): masks span structures, not registrants.

    Pre-trie, ``route()`` built one arbitrary-precision int bit per
    registered plan per event — 1k aliases meant 1k-bit mask arithmetic in
    the hot loop.  With group-level routing the mask domain is the number
    of *distinct structures*, however many subscribers ride on them.
    """

    def test_route_masks_at_1k_subscribers_stay_group_width(self, bib_document):
        pipeline = OptimizerPipeline(BIB_DTD_STRONG)
        entries = [compile_query(base, pipeline=pipeline) for base in BASES[:2]]
        keys = [
            [f"s{group}-a{i:04d}" for i in range(500)]
            for group in range(len(entries))
        ]
        metrics = PassMetrics(queries=1000)
        index = SharedProjectionIndex(
            [PlanProfile(entry) for entry in entries], metrics, keys=keys
        )
        assert index.group_count == 2
        assert index.full_mask.bit_length() == 2  # not 1000
        parser = StreamingXMLParser.incremental()
        events = list(parser.feed(bib_document)) + list(parser.close())
        for event in events:
            mask = index.route(event)
            assert mask.bit_length() <= 2  # group-width ints per event
        index.finalize_metrics()
        # Group tallies expand lazily to all 1000 subscriber keys.
        assert len(metrics.per_query_forwarded) == 1000
        assert metrics.per_query_forwarded["s0-a0000"] == (
            metrics.per_query_forwarded["s0-a0499"]
        )


class TestFleetDifferentialSmoke:
    """The 1k-query shared-vs-solo smokes (CI's ``fleet`` leg)."""

    QUERIES = 1000
    STRUCTURES = 4
    SAMPLE = 60

    def _fleet(self):
        return make_fleet(BASES[: self.STRUCTURES], self.QUERIES)

    def _sample_keys(self, fleet):
        rng = random.Random(20040831)
        return {query.key for query in rng.sample(fleet, self.SAMPLE)}

    def test_fleet_smoke_threads_1k(self, bib_document):
        fleet = self._fleet()
        shared, service = run_shared(
            fleet, bib_document, dtd=BIB_DTD_STRONG, execution="threads"
        )
        assert len(shared) == self.QUERIES
        assert service.metrics.last_pass.structures == self.STRUCTURES
        assert service.metrics.queries_deduped == self.QUERIES - self.STRUCTURES
        solo = run_solo(
            fleet,
            bib_document,
            dtd=BIB_DTD_STRONG,
            keys=self._sample_keys(fleet),
        )
        for key, expected in solo.items():
            assert shared[key] == expected, key
        # Within each structure every subscriber got the same bytes, so
        # the sampled solo comparison covers all 1k subscribers.
        by_structure = {}
        for query in fleet:
            by_structure.setdefault(query.structure, set()).add(
                shared[query.key]
            )
        assert all(len(outputs) == 1 for outputs in by_structure.values())

    def test_fleet_smoke_processes_1k(self, bib_document):
        fleet = self._fleet()
        workers = 2
        with ProcessServicePool(BIB_DTD_STRONG, workers=workers) as pool:
            for query in fleet:
                pool.register(query.text, key=query.key)
            assert len(pool.structures) == self.STRUCTURES
            (served,) = list(pool.serve([bib_document]))
            metrics = pool.metrics
        assert served.ok
        # One artifact per distinct structure per worker — not per query.
        assert metrics.ship_count == workers * self.STRUCTURES
        solo = run_solo(
            fleet,
            bib_document,
            dtd=BIB_DTD_STRONG,
            keys=self._sample_keys(fleet),
        )
        for key, expected in solo.items():
            assert served.results[key].output == expected, key
