"""Self-check: the repo's own source passes its own static-analysis gate.

This is the committed contract behind the CI ``static-analysis`` job: a
``repro lint`` run over ``src/repro`` produces no findings beyond the
committed baseline (which is empty — every real finding was fixed or
explicitly annotated with a reason).
"""

import ast
import json
import os

import repro
from repro.analysis import default_lint_root, run_lint
from repro.analysis.hot_loop import REQUIRED_HOT

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "scripts", "lint_baseline.json")


def test_default_lint_root_is_the_package():
    assert default_lint_root() == os.path.dirname(os.path.abspath(repro.__file__))


def test_src_repro_is_clean_against_committed_baseline():
    result = run_lint([default_lint_root()], baseline_path=BASELINE)
    assert result.errors == []
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"unbaselined lint findings:\n{rendered}"


def test_committed_baseline_is_empty():
    # The gate's promise is stronger than "no *new* findings": every finding
    # in src/repro was fixed or carries an in-source annotation, so the
    # baseline holds nothing.  Loosen this only with a written reason.
    with open(BASELINE, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload == {"version": 1, "findings": []}


def test_required_hot_functions_exist():
    # REQUIRED_HOT pins qualnames in real modules; if a refactor renames
    # them, the HL005 contract must move with it rather than rot.
    root = default_lint_root()
    for suffix, qualname in REQUIRED_HOT:
        path = os.path.join(root, *suffix.split("/"))
        assert os.path.exists(path), suffix
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
        class_name, method_name = qualname.split(".")
        found = any(
            isinstance(node, ast.ClassDef)
            and node.name == class_name
            and any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == method_name
                for item in node.body
            )
            for node in ast.walk(tree)
        )
        assert found, f"{qualname} no longer defined in {suffix}"
