"""Unit tests for the XQuery→FluX scheduler (schema-based scheduling)."""

import pytest

from repro.core.flux import (
    FBufferedExpr,
    FConstructor,
    FCopyVar,
    FIf,
    FProcessStream,
    OnFirstHandler,
    OnHandler,
    walk_flux,
)
from repro.core.normalform import normalize
from repro.core.scheduler import schedule_query
from repro.xquery.parser import parse_xquery


def schedule(query, dtd, **kwargs):
    normalized = normalize(parse_xquery(query))
    return schedule_query(normalized, dtd, **kwargs)


def process_streams(flux_query):
    return [n for n in walk_flux(flux_query.body) if isinstance(n, FProcessStream)]


def stream_for(flux_query, element_type):
    matches = [ps for ps in process_streams(flux_query) if ps.element_type == element_type]
    assert matches, f"no process-stream over {element_type}"
    return matches[0]


class TestPaperQ3StrongDTD:
    """Section 2: with the Figure 1 DTD, Q3 runs fully on the fly."""

    def test_book_scope_has_two_streaming_handlers(self, paper_dtd, paper_q3):
        flux, report = schedule(paper_q3, paper_dtd)
        book_stream = stream_for(flux, "book")
        on_labels = [h.label for h in book_stream.on_handlers()]
        assert on_labels == ["title", "author"]
        assert not book_stream.on_first_handlers()

    def test_no_buffered_handlers_at_all(self, paper_dtd, paper_q3):
        flux, report = schedule(paper_q3, paper_dtd)
        assert report.buffered_handlers == 0
        assert report.streaming_handlers >= 3

    def test_nested_process_streams_follow_path(self, paper_dtd, paper_q3):
        flux, _ = schedule(paper_q3, paper_dtd)
        types = [ps.element_type for ps in process_streams(flux)]
        assert types == ["#document", "bib", "book"]

    def test_handler_bodies_are_streamed_copies(self, paper_dtd, paper_q3):
        flux, _ = schedule(paper_q3, paper_dtd)
        book_stream = stream_for(flux, "book")
        for handler in book_stream.on_handlers():
            assert isinstance(handler.body, FCopyVar)

    def test_flux_syntax_mentions_constructs(self, paper_dtd, paper_q3):
        flux, _ = schedule(paper_q3, paper_dtd)
        text = flux.to_flux_syntax()
        assert "process-stream $ROOT" in text
        assert "on book as" in text
        assert "on title as" in text


class TestPaperQ3WeakDTD:
    """Section 2: with the weak DTD the authors of one book must be buffered."""

    def test_author_loop_becomes_on_first_handler(self, paper_weak_dtd, paper_q3):
        flux, report = schedule(paper_q3, paper_weak_dtd)
        book_stream = stream_for(flux, "book")
        on_labels = [h.label for h in book_stream.on_handlers()]
        assert on_labels == ["title"]
        on_first = book_stream.on_first_handlers()
        assert len(on_first) == 1
        assert on_first[0].past_labels == {"title", "author"}

    def test_buffered_handler_counts(self, paper_weak_dtd, paper_q3):
        _, report = schedule(paper_q3, paper_weak_dtd)
        assert report.buffered_handlers == 1

    def test_title_loop_still_streams_first(self, paper_weak_dtd, paper_q3):
        flux, _ = schedule(paper_q3, paper_weak_dtd)
        book_stream = stream_for(flux, "book")
        assert isinstance(book_stream.handlers[0], OnHandler)
        assert isinstance(book_stream.handlers[1], OnFirstHandler)


class TestOrderConstraintUse:
    def test_swapped_output_order_requires_buffering(self, paper_dtd):
        # Asking for authors *before* titles cannot stream the titles.
        query = """
        <results>
        { for $b in $ROOT/bib/book return
          <result> { $b/author } { $b/title } </result> }
        </results>
        """
        flux, report = schedule(query, paper_dtd)
        book_stream = stream_for(flux, "book")
        assert [h.label for h in book_stream.on_handlers()] == ["author"]
        assert report.buffered_handlers == 1

    def test_title_price_pair_streams(self, paper_dtd):
        query = """
        <pricelist>
        { for $b in $ROOT/bib/book return <e>{ $b/title }{ $b/price }</e> }
        </pricelist>
        """
        _, report = schedule(query, paper_dtd)
        assert report.buffered_handlers == 0

    def test_disabling_order_constraints_forces_buffering(self, paper_dtd, paper_q3):
        _, report = schedule(paper_q3, paper_dtd, use_order_constraints=False)
        assert report.buffered_handlers >= 1

    def test_no_dtd_means_buffering_after_first(self, paper_q3):
        _, report = schedule(paper_q3, None)
        assert report.buffered_handlers >= 1


class TestConditionalsAndConstants:
    def test_attribute_condition_stays_streaming(self, paper_dtd):
        query = """
        <out>
        { for $b in $ROOT/bib/book return
          if ($b/@year > 1991) then <recent>{ $b/title }</recent> else () }
        </out>
        """
        flux, report = schedule(query, paper_dtd)
        conditionals = [n for n in walk_flux(flux.body) if isinstance(n, FIf)]
        assert len(conditionals) == 1
        assert report.buffered_handlers == 0

    def test_child_value_condition_requires_buffering(self, paper_dtd):
        query = """
        <out>
        { for $b in $ROOT/bib/book return
          if ($b/price > 50) then <expensive>{ $b/title }</expensive> else () }
        </out>
        """
        _, report = schedule(query, paper_dtd)
        assert report.buffered_handlers >= 1

    def test_constant_between_loops_gets_past_condition(self, paper_dtd):
        query = """
        <out>
        { for $b in $ROOT/bib/book return
          <entry>{ $b/title } <sep/> { $b/price }</entry> }
        </out>
        """
        flux, _ = schedule(query, paper_dtd)
        book_stream = stream_for(flux, "book")
        on_first = book_stream.on_first_handlers()
        assert len(on_first) == 1
        assert on_first[0].past_labels == {"title"}
        assert isinstance(on_first[0].body, FConstructor)

    def test_constant_only_body_has_no_buffering(self, paper_dtd):
        query = "<out>{ for $b in $ROOT/bib/book return <stamp/> }</out>"
        flux, report = schedule(query, paper_dtd)
        assert report.buffered_handlers == 0
        # The body ignores the book's content entirely, so no process-stream
        # over book elements is needed at all — the constructor is emitted
        # directly from the streaming `on book` handler.
        assert [ps.element_type for ps in process_streams(flux)] == ["#document", "bib"]
        constructors = [n for n in walk_flux(flux.body) if isinstance(n, FConstructor)]
        assert any(c.name == "stamp" for c in constructors)


class TestJoinsAndWholeSubtrees:
    def test_whole_element_copy_uses_copy_node(self, paper_dtd):
        query = "<all>{ for $b in $ROOT/bib/book return $b }</all>"
        flux, report = schedule(query, paper_dtd)
        copies = [n for n in walk_flux(flux.body) if isinstance(n, FCopyVar)]
        assert copies
        assert report.buffered_handlers == 0

    def test_inner_loop_over_outer_variable_is_buffered(self, paper_dtd):
        query = """
        <pairs>
        { for $b in $ROOT/bib/book return
            for $t in $b/title return
              for $a in $b/author return <p>{ $t }{ $a }</p> }
        </pairs>
        """
        flux, report = schedule(query, paper_dtd)
        assert report.buffered_handlers >= 1
        buffered = [n for n in walk_flux(flux.body) if isinstance(n, FBufferedExpr)]
        assert buffered

    def test_descendant_paths_are_buffered(self, paper_dtd):
        query = "<out>{ for $a in $ROOT//author return <x>{ $a }</x> }</out>"
        flux, report = schedule(query, paper_dtd)
        assert report.buffered_handlers >= 1


class TestSchedulingReport:
    def test_summary_format(self, paper_dtd, paper_q3):
        _, report = schedule(paper_q3, paper_dtd)
        summary = report.summary()
        assert "streaming handlers" in summary
        assert "buffered handlers" in summary
