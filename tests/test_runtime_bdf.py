"""Unit tests for the buffer description forest (BDF)."""

import pytest

from repro.core.normalform import normalize
from repro.core.scheduler import schedule_query
from repro.runtime.bdf import build_bdf
from repro.xquery.parser import parse_xquery


def bdf_for(query, dtd):
    flux, _ = schedule_query(normalize(parse_xquery(query)), dtd)
    return build_bdf(flux)


class TestPaperExamples:
    def test_q3_strong_dtd_buffers_nothing(self, paper_dtd, paper_q3):
        forest = bdf_for(paper_q3, paper_dtd)
        assert forest.buffering_variables() == []
        assert forest.total_buffered_labels() == 0
        assert "no buffers required" in forest.describe() or all(
            "nothing" in spec.describe() for spec in forest
        )

    def test_q3_weak_dtd_buffers_author_only(self, paper_weak_dtd, paper_q3):
        forest = bdf_for(paper_q3, paper_weak_dtd)
        book_spec = forest.get("b")
        assert book_spec is not None
        assert book_spec.labels == {"author"}
        assert not book_spec.whole_subtree
        # Titles are streamed, not buffered — the saving over projection.
        assert "title" not in book_spec.labels

    def test_spec_description_mentions_labels(self, paper_weak_dtd, paper_q3):
        forest = bdf_for(paper_q3, paper_weak_dtd)
        assert "author" in forest.describe()


class TestBufferedPaths:
    def test_where_on_child_value_buffers_condition_paths(self, paper_dtd):
        query = (
            "<out>{ for $b in $ROOT/bib/book where $b/price > 50 "
            "return <x>{ $b/title }</x> }</out>"
        )
        forest = bdf_for(query, paper_dtd)
        book_spec = forest.get("b")
        assert book_spec is not None
        assert {"price", "title"} <= book_spec.labels

    def test_attribute_only_query_buffers_nothing(self, paper_dtd):
        query = "<out>{ for $b in $ROOT/bib/book return <y>{ $b/@year }</y> }</out>"
        forest = bdf_for(query, paper_dtd)
        spec = forest.get("b")
        assert spec is None or not spec.buffers_anything

    def test_whole_subtree_marker(self, paper_dtd):
        query = "<out>{ for $b in $ROOT/bib/book return <x>{ $b//last }</x> }</out>"
        forest = bdf_for(query, paper_dtd)
        assert any(spec.whole_subtree for spec in forest)

    def test_join_buffers_sections(self, auction_dtd):
        query = """
        <out>
        { for $p in $ROOT/site/people/person return
            for $c in $ROOT/site/closed_auctions/closed_auction
            where $c/buyer/@person = $p/@id
            return <hit>{ $p/name }</hit> }
        </out>
        """
        forest = bdf_for(query, auction_dtd)
        assert forest.buffering_variables()

    def test_spec_for_creates_and_reuses(self, paper_dtd, paper_q3):
        forest = bdf_for(paper_q3, paper_dtd)
        spec = forest.spec_for("b", "book")
        assert forest.spec_for("b") is spec
        assert len(forest) >= 1
