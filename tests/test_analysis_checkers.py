"""Golden-fixture tests: each checker reports exact codes and lines.

The fixtures under ``tests/fixtures/analysis/`` seed one violation per
documented finding code plus known-clean twins; these tests pin the
checker output to them exactly, so any drift in a checker's rules shows
up as a diff against a human-readable fixture, not as silence.
"""

import os

from repro.analysis import default_checkers, run_lint
from repro.analysis.core import run_checkers

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")


def findings_for(*names):
    paths = [os.path.join(FIXTURES, name) for name in names]
    result = run_lint(paths)
    assert result.errors == []
    return result.findings


def codes_and_lines(findings):
    return [(f.code, f.line) for f in findings]


class TestLockDiscipline:
    def test_seeded_violations_exact(self):
        findings = findings_for("lock_violations.py")
        assert codes_and_lines(findings) == [
            ("LD001", 22),
            ("LD002", 26),
            ("LD003", 29),
            ("LD004", 32),
        ]
        by_code = {f.code: f for f in findings}
        assert "RacyCounter.peek" in by_code["LD001"].message
        assert "self._count is guarded by self._lock" in by_code["LD001"].message
        assert "read under self._aux" in by_code["LD002"].message
        assert "never holds that lock" in by_code["LD003"].message
        assert "needs a reason" in by_code["LD004"].message

    def test_clean_twin_passes(self):
        assert findings_for("lock_clean.py") == []


class TestHotLoop:
    def test_seeded_violations_exact(self):
        findings = findings_for("hot_violations.py")
        assert codes_and_lines(findings) == [
            ("HL001", 12),
            ("HL003", 13),
            ("HL004", 15),
            ("HL002", 19),
            ("HL001", 24),
            ("HL006", 24),
        ]
        by_line = {(f.code, f.line): f for f in findings}
        assert "list display" in by_line[("HL001", 12)].message
        assert "self._limit loaded 2x" in by_line[("HL002", 19)].message
        assert "dict display" in by_line[("HL001", 24)].message

    def test_clean_twin_passes(self):
        assert findings_for("hot_clean.py") == []

    def test_unmarked_required_hot_function_is_flagged(self):
        # The service/dispatcher.py fixture strips route's marker only.
        findings = [f for f in findings_for(".") if f.path == "service/dispatcher.py"]
        assert codes_and_lines(findings) == [("HL005", 1)]
        assert "SharedProjectionIndex.route" in findings[0].message


class TestAsyncBlocking:
    def test_seeded_violations_exact(self):
        findings = findings_for("async_violations.py")
        assert codes_and_lines(findings) == [
            ("AB001", 11),
            ("AB002", 12),
            ("AB003", 13),
            ("AB004", 14),
            ("AB003", 15),
            ("AB005", 15),
        ]
        by_line = {(f.code, f.line): f for f in findings}
        assert "time.sleep()" in by_line[("AB001", 11)].message
        assert ".recv()" in by_line[("AB002", 12)].message
        assert "open()" in by_line[("AB003", 13)].message
        assert ".acquire() without await" in by_line[("AB004", 14)].message

    def test_clean_twin_passes(self):
        assert findings_for("async_clean.py") == []


class TestPickleSafety:
    def test_seeded_violations_exact(self):
        findings = findings_for("pickle_violations.py")
        assert codes_and_lines(findings) == [
            ("PS001", 12),
            ("PS002", 18),
            ("PS003", 20),
            ("PS004", 26),
        ]
        by_code = {f.code: f for f in findings}
        assert "StepNode" in by_code["PS001"].message
        assert "__getstate__ without __setstate__" in by_code["PS002"].message
        assert "unpicklable type Lock" in by_code["PS003"].message
        assert "ShippedExtra" in by_code["PS004"].message

    def test_unreachable_class_is_out_of_scope(self):
        findings = findings_for("pickle_violations.py")
        assert not any("Unreachable" in f.message for f in findings)

    def test_clean_twin_passes(self):
        assert findings_for("pickle_clean.py") == []


class TestWholeFixtureTree:
    def test_every_documented_code_is_seeded(self):
        findings = findings_for(".")
        seeded = {f.code for f in findings}
        expected = {
            "LD001", "LD002", "LD003", "LD004",
            "HL001", "HL002", "HL003", "HL004", "HL005", "HL006",
            "AB001", "AB002", "AB003", "AB004", "AB005",
            "PS001", "PS002", "PS003", "PS004",
        }
        assert seeded == expected

    def test_findings_are_sorted_and_deterministic(self):
        first, errors1 = run_checkers([FIXTURES], default_checkers())
        second, errors2 = run_checkers([FIXTURES], default_checkers())
        assert errors1 == errors2 == []
        assert first == second
        assert first == sorted(first, key=lambda f: f.sort_key())
