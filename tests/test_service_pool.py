"""The fault-isolated service pool: sharding, mirrored registration, shared
cache, and the failure paths.

The acceptance bar of the pool: documents sharded across N workers produce,
for every (document, query) pair, output byte-identical to a fresh solo
``FluxEngine.execute`` — including every *other* document when one document
fails mid-pass, which must surface as an error-tagged ``ServedDocument``
(not exhaust the loop), release the failing worker's pass slot, and leave
the pool serving.
"""

import asyncio
import threading
import time

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.errors import XMLSyntaxError
from repro.runtime.plan_cache import PlanCache
from repro.service import (
    AsyncServicePool,
    PoolMetrics,
    QueryService,
    ServedDocument,
    ServicePool,
)
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query

TITLES_QUERY = "<titles>{ for $b in $ROOT/bib/book return $b/title }</titles>"

#: Malformed mid-stream: opens a book that never closes.
BAD_DOCUMENT = "<bib><book>"


@pytest.fixture(scope="module")
def documents():
    return [
        generate_bibliography(num_books=books, seed=seed)
        for books, seed in [(8, 1), (13, 2), (21, 3), (5, 4), (11, 5), (7, 6)]
    ]


def solo(query: str, document: str) -> str:
    return FluxEngine(BIB_DTD_STRONG).execute(query, document).output


class TestPoolBasics:
    @pytest.mark.parametrize("execution", ["threads", "inline"])
    def test_sharded_serve_matches_solo_per_document(self, documents, execution):
        q1 = get_query("BIB-Q1").xquery
        pool = ServicePool(BIB_DTD_STRONG, workers=3, execution=execution)
        pool.register(q1, key="q1")
        pool.register(TITLES_QUERY, key="t")
        served = list(pool.serve(documents))
        # Every document exactly once, tagged with a worker, completion order.
        assert sorted(outcome.index for outcome in served) == list(
            range(len(documents))
        )
        for outcome in served:
            assert isinstance(outcome, ServedDocument)
            assert outcome.ok and outcome.error is None
            assert outcome.worker in range(3)
            document = documents[outcome.index]
            assert outcome.results["q1"].output == solo(q1, document)
            assert outcome.results["t"].output == solo(TITLES_QUERY, document)

    def test_registrations_are_mirrored_across_workers(self):
        pool = ServicePool(BIB_DTD_STRONG, workers=3)
        registration = pool.register(TITLES_QUERY, key="t")
        assert registration.key == "t"
        assert len(pool) == 1
        assert set(pool.registrations) == {"t"}
        for service in pool.services:
            assert set(service.registrations) == {"t"}
            # Every mirror shares the same compiled plan entry.
            assert service.registrations["t"].entry is registration.entry
        pool.unregister("t")
        assert len(pool) == 0
        for service in pool.services:
            assert len(service) == 0

    def test_register_all_and_autokeys(self):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        registrations = pool.register_all([TITLES_QUERY, get_query("BIB-Q1").xquery])
        assert [r.key for r in registrations] == ["q1", "q2"]
        assert len(pool) == 2

    def test_unregister_unknown_key_raises_and_changes_nothing(self):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        with pytest.raises(KeyError):
            pool.unregister("nope")
        assert len(pool) == 1

    def test_pool_needs_at_least_one_worker(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ServicePool(BIB_DTD_STRONG, workers=0)

    def test_empty_pool_serve_raises_before_consuming(self, documents):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        iterator = iter(documents)
        with pytest.raises(ValueError, match="no queries registered"):
            next(pool.serve(iterator))
        # Nothing was pulled: catch-register-reserve loses no document.
        pool.register(TITLES_QUERY, key="t")
        served = list(pool.serve(iterator))
        assert sorted(outcome.index for outcome in served) == list(
            range(len(documents))
        )

    def test_registration_rejected_while_serving(self, documents):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        loop = pool.serve(documents)
        next(loop)
        with pytest.raises(RuntimeError, match="while a serve loop"):
            pool.register(TITLES_QUERY, key="extra")
        with pytest.raises(RuntimeError, match="while a serve loop"):
            pool.unregister("t")
        loop.close()
        # Closing the loop re-enables registration.
        pool.register(get_query("BIB-Q1").xquery, key="extra")
        assert len(pool) == 2

    def test_closing_the_loop_early_stops_the_shard(self, documents):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        loop = pool.serve(iter(documents))
        first = next(loop)
        assert first.ok
        loop.close()  # workers finish in-flight passes and exit
        # Outcome counters track *delivered* documents: results the closed
        # loop drained away are not counted as served.
        assert pool.metrics.documents_served == 1
        # The pool remains serviceable for the next loop.
        assert len(list(pool.serve(documents[:2]))) == 2
        assert pool.metrics.documents_served == 3

    def test_lazy_source_is_pulled_on_demand(self, documents):
        # Backpressure: with the result queue bounded to the worker count,
        # a stalled consumer caps the shard at (in flight) + (queued) +
        # (consumed) = 2 * workers + taken documents, however long the
        # stream.  The source must never be drained eagerly.
        pulled = []

        def source():
            for document in documents:
                pulled.append(document)
                yield document

        workers = 2
        pool = ServicePool(BIB_DTD_STRONG, workers=workers)
        pool.register(TITLES_QUERY, key="t")
        loop = pool.serve(source())
        next(loop)
        deadline = time.time() + 1.0
        while time.time() < deadline:  # give the shard every chance to run
            time.sleep(0.01)
        assert len(pulled) <= 2 * workers + 1 < len(documents)
        loop.close()

    def test_second_serve_while_running_is_rejected(self, documents):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        loop = pool.serve(documents)
        next(loop)
        with pytest.raises(RuntimeError, match="already running"):
            next(pool.serve(documents[:1]))
        loop.close()
        # The guard belongs to the owning loop: closing it re-enables serve.
        assert len(list(pool.serve(documents[:2]))) == 2

    def test_serve_on_a_non_iterable_does_not_lock_the_pool(self, documents):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        with pytest.raises(TypeError):
            next(pool.serve(None))
        # The failed call must not leave the one-loop guard engaged.
        pool.register(get_query("BIB-Q1").xquery, key="extra")
        assert len(list(pool.serve(documents[:2]))) == 2

    def test_source_iterator_failure_propagates(self, documents):
        def broken():
            yield documents[0]
            raise RuntimeError("source went away")

        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        with pytest.raises(RuntimeError, match="source went away"):
            list(pool.serve(broken()))
        # The pool survives a source failure.
        assert len(list(pool.serve(documents[:2]))) == 2


class TestPoolFaultIsolation:
    @pytest.mark.parametrize("execution", ["threads", "inline"])
    def test_failing_document_is_isolated_and_others_match_solo(
        self, documents, execution
    ):
        q1 = get_query("BIB-Q1").xquery
        stream = list(documents)
        stream[2] = BAD_DOCUMENT
        pool = ServicePool(BIB_DTD_STRONG, workers=3, execution=execution)
        pool.register(q1, key="q1")
        pool.register(TITLES_QUERY, key="t")
        served = list(pool.serve(stream))
        assert sorted(outcome.index for outcome in served) == list(range(len(stream)))
        by_index = {outcome.index: outcome for outcome in served}
        failed = by_index[2]
        assert failed.outcome == "error" and not failed.ok
        assert isinstance(failed.error, XMLSyntaxError)
        assert failed.results == {}
        assert failed.worker in range(3)
        # Every other document is byte-identical to its solo runs.
        for index, outcome in by_index.items():
            if index == 2:
                continue
            assert outcome.ok
            assert outcome.results["q1"].output == solo(q1, stream[index])
            assert outcome.results["t"].output == solo(TITLES_QUERY, stream[index])

    def test_abort_releases_the_failed_workers_pass_slot(self, documents):
        # A single-worker pool must serve documents *after* the bad one on
        # the very worker that failed — the abort released its slot.
        pool = ServicePool(BIB_DTD_STRONG, workers=1)
        pool.register(TITLES_QUERY, key="t")
        stream = [documents[0], BAD_DOCUMENT, documents[1], documents[2]]
        served = list(pool.serve(stream))
        assert [outcome.index for outcome in served] == [0, 1, 2, 3]
        assert [outcome.outcome for outcome in served] == [
            "ok",
            "error",
            "ok",
            "ok",
        ]
        assert all(outcome.worker == 0 for outcome in served)
        for index in (0, 2, 3):
            assert served[index].results["t"].output == solo(
                TITLES_QUERY, stream[index]
            )
        # The worker's service holds no stuck pass.
        assert pool.services[0].active_pass is None

    def test_error_outcome_carries_partial_pass_metrics(self, documents):
        pool = ServicePool(BIB_DTD_STRONG, workers=1)
        pool.register(TITLES_QUERY, key="t")
        served = list(pool.serve([BAD_DOCUMENT]))
        (failed,) = served
        assert failed.outcome == "error"
        # The pass ingested the bad document's bytes before failing.
        assert failed.metrics.document_bytes == len(BAD_DOCUMENT.encode("utf-8"))

    def test_pool_metrics_count_ok_and_failed_documents(self, documents):
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        stream = [documents[0], BAD_DOCUMENT, documents[1]]
        list(pool.serve(stream))
        metrics = pool.metrics
        assert isinstance(metrics, PoolMetrics)
        assert metrics.workers == 2
        assert metrics.documents_ok == 2
        assert metrics.documents_failed == 1
        assert metrics.documents_served == 3
        # A failed pass never completes, so worker passes == ok documents.
        assert metrics.passes_completed == 2
        assert metrics.results_produced == 2
        assert sum(entry["documents_ok"] for entry in metrics.per_worker) == 2
        assert sum(entry["documents_failed"] for entry in metrics.per_worker) == 1
        summary = pool.stats_summary()
        assert summary["documents_failed"] == 1
        assert summary["plan_cache"]["misses"] == 1

    def test_validation_failure_is_isolated_too(self, documents):
        # Well-formed XML that violates the DTD is an isolated error as well.
        invalid = "<bib><title>not a book</title></bib>"
        pool = ServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        served = list(pool.serve([documents[0], invalid, documents[1]]))
        by_index = {outcome.index: outcome for outcome in served}
        assert not by_index[1].ok
        assert by_index[0].ok and by_index[2].ok


class TestPoolSharedCache:
    def test_mirrored_registration_compiles_once(self):
        pool = ServicePool(BIB_DTD_STRONG, workers=4)
        pool.register(TITLES_QUERY, key="t")
        stats = pool.plan_cache.stats
        # One compilation; the three mirrors were cache hits.
        assert stats.misses == 1
        assert stats.hits == 3
        assert len(pool.plan_cache) == 1

    def test_concurrent_registration_across_workers_compiles_once(self):
        """N workers registering the same query concurrently: one optimizer
        run, the rest coalesce onto the leader's flight (or hit)."""
        pool = ServicePool(BIB_DTD_STRONG, workers=4)
        barrier = threading.Barrier(4)
        errors = []

        def register_on(service: QueryService) -> None:
            barrier.wait()
            try:
                service.register(TITLES_QUERY, key="t")
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [
            threading.Thread(target=register_on, args=(service,))
            for service in pool.services
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = pool.plan_cache.stats
        assert stats.misses == 1  # exactly one compilation across the pool
        assert stats.coalesced + stats.hits == 3
        assert len(pool.plan_cache) == 1
        # The mirror is intact: every worker serves the query.
        document = generate_bibliography(num_books=5, seed=9)
        served = list(pool.serve([document] * 4))
        assert all(outcome.ok for outcome in served)
        for outcome in served:
            assert outcome.results["t"].output == solo(TITLES_QUERY, document)

    def test_pool_shares_an_external_cache_with_services(self):
        cache = PlanCache()
        QueryService(BIB_DTD_STRONG, plan_cache=cache).register(TITLES_QUERY)
        pool = ServicePool(BIB_DTD_STRONG, workers=3, plan_cache=cache)
        pool.register(TITLES_QUERY, key="t")
        # The pool paid nothing: the plan was already cached.
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3


class TestAsyncPool:
    def drive(self, pool, documents):
        async def collect():
            return [outcome async for outcome in pool.serve(documents)]

        return asyncio.run(collect())

    def test_sharded_serve_matches_solo(self, documents):
        pool = AsyncServicePool(BIB_DTD_STRONG, workers=3)
        pool.register(TITLES_QUERY, key="t")
        served = self.drive(pool, documents)
        assert sorted(outcome.index for outcome in served) == list(
            range(len(documents))
        )
        for outcome in served:
            assert outcome.ok and outcome.worker in range(3)
            assert outcome.results["t"].output == solo(
                TITLES_QUERY, documents[outcome.index]
            )

    def test_failing_document_is_isolated(self, documents):
        stream = [documents[0], BAD_DOCUMENT, documents[1]]
        pool = AsyncServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")
        served = self.drive(pool, stream)
        by_index = {outcome.index: outcome for outcome in served}
        assert not by_index[1].ok
        assert isinstance(by_index[1].error, XMLSyntaxError)
        for index in (0, 2):
            assert by_index[index].results["t"].output == solo(
                TITLES_QUERY, stream[index]
            )
        metrics = pool.metrics
        assert metrics.documents_ok == 2 and metrics.documents_failed == 1

    def test_async_chunk_feeds_overlap_across_workers(self, documents):
        # Each document arrives as an async chunk feed; the pool serves
        # them all, byte-identical.
        pool = AsyncServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")

        def feed(document):
            async def chunks():
                for start in range(0, len(document), 2048):
                    await asyncio.sleep(0)
                    yield document[start : start + 2048]

            return chunks()

        async def sources():
            for document in documents[:4]:
                yield feed(document)

        async def collect():
            return [outcome async for outcome in pool.serve(sources())]

        served = asyncio.run(collect())
        assert sorted(outcome.index for outcome in served) == [0, 1, 2, 3]
        for outcome in served:
            assert outcome.results["t"].output == solo(
                TITLES_QUERY, documents[outcome.index]
            )

    def test_empty_pool_serve_raises(self, documents):
        pool = AsyncServicePool(BIB_DTD_STRONG, workers=2)
        with pytest.raises(ValueError, match="no queries registered"):
            self.drive(pool, documents)

    def test_mirrored_registration_compiles_once(self):
        pool = AsyncServicePool(BIB_DTD_STRONG, workers=4)
        pool.register(TITLES_QUERY, key="t")
        assert pool.plan_cache.stats.misses == 1
        assert pool.plan_cache.stats.hits == 3

    def test_second_serve_while_running_is_rejected(self, documents):
        pool = AsyncServicePool(BIB_DTD_STRONG, workers=2)
        pool.register(TITLES_QUERY, key="t")

        async def drive():
            loop = pool.serve(documents)
            await loop.__anext__()
            with pytest.raises(RuntimeError, match="already running"):
                await pool.serve(documents[:1]).__anext__()
            await loop.aclose()

        asyncio.run(drive())
        # Closing the first loop re-enables serving.
        assert len(self.drive(pool, documents[:2])) == 2
