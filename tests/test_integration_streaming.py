"""Integration tests for true streaming behaviour (file input, bounded state).

The whole point of the system is that documents are processed as streams:
input can come from a file object that is read incrementally, and the only
per-document state the engine keeps is what the buffer description forest
demands.  These tests exercise that path end to end.
"""

import io

import pytest

from repro.engines.flux_engine import FluxEngine
from repro.engines.dom_engine import DomEngine
from repro.workloads.bibgen import BibliographyGenerator
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query


@pytest.fixture(scope="module")
def large_bibliography():
    """A ~330 kB bibliography, written through a file-like object."""
    generator = BibliographyGenerator(num_books=1000, seed=123)
    return generator.generate()


class TestFileInput:
    def test_flux_engine_reads_file_objects(self, large_bibliography):
        engine = FluxEngine(BIB_DTD_STRONG)
        result = engine.execute(
            get_query("BIB-Q3").xquery, io.StringIO(large_bibliography)
        )
        assert result.output.count("<result>") == 1000
        assert result.peak_buffer_bytes == 0

    def test_file_and_string_inputs_agree(self, large_bibliography):
        engine = FluxEngine(BIB_DTD_STRONG)
        spec = get_query("BIB-Q1")
        from_string = engine.execute(spec.xquery, large_bibliography)
        from_file = engine.execute(spec.xquery, io.StringIO(large_bibliography))
        assert from_string.output == from_file.output
        assert from_string.peak_buffer_bytes == from_file.peak_buffer_bytes


class TestBoundedState:
    def test_streaming_query_state_independent_of_document_size(self, large_bibliography):
        engine = FluxEngine(BIB_DTD_STRONG)
        spec = get_query("BIB-Q4")
        result = engine.execute(spec.xquery, large_bibliography)
        assert result.peak_buffer_bytes == 0
        # Output is produced (and therefore could be flushed) incrementally:
        # it is much larger than anything the engine ever buffered.
        assert result.stats.output_bytes > 100 * (result.peak_buffer_bytes + 1)

    def test_bounded_query_peak_is_fraction_of_document(self, large_bibliography):
        engine = FluxEngine(BIB_DTD_STRONG)
        spec = get_query("BIB-Q1")
        result = engine.execute(spec.xquery, large_bibliography)
        assert 0 < result.peak_buffer_bytes < len(large_bibliography) / 100

    def test_results_still_match_reference(self, large_bibliography):
        spec = get_query("BIB-Q5")
        flux = FluxEngine(BIB_DTD_STRONG).execute(spec.xquery, large_bibliography)
        dom = DomEngine().execute(spec.xquery, large_bibliography)
        assert flux.output == dom.output
