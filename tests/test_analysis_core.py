"""Core analysis machinery: annotations, baselines, runner, CLI exit codes."""

import ast
import json
import os
import textwrap

import pytest

from repro.analysis import all_codes, default_checkers, run_lint
from repro.analysis.core import (
    Finding,
    SourceFile,
    apply_baseline,
    iter_python_files,
    load_baseline,
    run_checkers,
    write_baseline,
)
from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")


def parse_source(source):
    source = textwrap.dedent(source)
    return SourceFile("<mem>", "mem.py", source, ast.parse(source))


class TestAnnotations:
    def test_trailing_annotation_with_reason(self):
        module = parse_source("x = 1  # unguarded: single writer\n")
        assert module.annotation(1, "unguarded") == "single writer"

    def test_bare_marker_is_empty_string(self):
        module = parse_source("x = 1  # hot-loop\n")
        assert module.annotation(1, "hot-loop") == ""

    def test_absent_annotation_is_none(self):
        module = parse_source("x = 1  # a plain comment\n")
        assert module.annotation(1, "unguarded") is None

    def test_own_line_comment_above_counts(self):
        module = parse_source(
            """\
            # async-ok: bounded in-memory read
            x = read()
            """
        )
        assert module.annotation_near(2, "async-ok") == "bounded in-memory read"

    def test_trailing_comment_does_not_leak_to_next_line(self):
        # Regression: a trailing annotation on line N must not suppress or
        # declare anything about line N+1.
        module = parse_source(
            """\
            a = 1  # guarded-by: _lock
            b = 2
            """
        )
        assert module.annotation_near(1, "guarded-by") == "_lock"
        assert module.annotation_near(2, "guarded-by") is None

    def test_trailing_note_text_invalidates_annotation(self):
        # The annotation grammar is strict: extra prose after a bare marker
        # makes it unrecognizable rather than silently parsed.
        module = parse_source("x = 1  # unguarded (see docs)\n")
        assert module.annotation(1, "unguarded") is None


class TestBaseline:
    def make_finding(self, code="LD001", line=3):
        return Finding(code=code, path="pkg/mod.py", line=line,
                       message="field read without lock", checker="lock-discipline")

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline([self.make_finding()], path)
        assert load_baseline(path) == {("LD001", "pkg/mod.py", "field read without lock")}

    def test_fingerprint_is_line_independent(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline([self.make_finding(line=3)], path)
        baseline = load_baseline(path)
        moved = self.make_finding(line=99)
        fresh, suppressed = apply_baseline([moved], baseline)
        assert fresh == [] and suppressed == 1

    def test_unbaselined_finding_stays_fresh(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline([self.make_finding()], path)
        other = self.make_finding(code="LD002")
        fresh, suppressed = apply_baseline([other], load_baseline(path))
        assert fresh == [other] and suppressed == 0

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestRunner:
    def test_parse_error_is_reported_not_fatal(self, tmp_path):
        (tmp_path / "broken.py").write_text("def nope(:\n")
        (tmp_path / "racy.py").write_text(
            (open(os.path.join(FIXTURES, "lock_violations.py")).read())
        )
        findings, errors = run_checkers([str(tmp_path)], default_checkers())
        assert len(errors) == 1 and "broken.py" in errors[0]
        assert any(f.code == "LD001" for f in findings)

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("")
        (tmp_path / "real.py").write_text("")
        rels = [rel for _, rel in iter_python_files(str(tmp_path))]
        assert rels == ["real.py"]

    def test_all_codes_covers_every_checker(self):
        codes = all_codes()
        for prefix in ("LD", "HL", "AB", "PS"):
            assert any(code.startswith(prefix) for code in codes)


class TestLintCommand:
    def test_violations_exit_1(self, capsys):
        exit_code = main(["lint", os.path.join(FIXTURES, "lock_violations.py")])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "LD001" in out and "finding(s)" in out

    def test_clean_tree_exit_0(self, capsys):
        exit_code = main(["lint", os.path.join(FIXTURES, "lock_clean.py")])
        assert exit_code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format_is_parseable(self, capsys):
        exit_code = main(
            ["lint", os.path.join(FIXTURES, "hot_violations.py"), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["summary"]["findings"] == len(payload["findings"])
        assert {"code", "path", "line", "message", "checker"} <= set(payload["findings"][0])

    def test_fail_on_filters_exit_code(self, capsys):
        # The file only seeds LD codes, so failing on PS001 alone passes.
        path = os.path.join(FIXTURES, "lock_violations.py")
        assert main(["lint", path, "--fail-on", "PS001"]) == 0
        assert main(["lint", path, "--fail-on", "LD001,PS001"]) == 1
        capsys.readouterr()

    def test_unknown_fail_on_code_exit_2(self, capsys):
        exit_code = main(["lint", FIXTURES, "--fail-on", "XX999"])
        assert exit_code == 2
        assert "unknown" in capsys.readouterr().err

    def test_missing_path_exit_2(self, capsys):
        exit_code = main(["lint", os.path.join(FIXTURES, "no_such_dir")])
        assert exit_code == 2
        capsys.readouterr()

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        path = os.path.join(FIXTURES, "async_violations.py")
        assert main(["lint", path, "--write-baseline", baseline]) == 0
        assert main(["lint", path, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_baselined_run_reports_suppressed_count(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        path = os.path.join(FIXTURES, "async_violations.py")
        main(["lint", path, "--write-baseline", baseline])
        result = run_lint([path], baseline_path=baseline)
        assert result.findings == [] and result.suppressed == 6
