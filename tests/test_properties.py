"""Property-based tests (hypothesis) for core data structures and invariants."""

import random
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dtd.automaton import build_automaton
from repro.dtd.model import (
    Choice,
    ContentParticle,
    ElementDecl,
    Name,
    OneOrMore,
    Optional_,
    Sequence,
    ZeroOrMore,
)
from repro.runtime.buffers import BufferManager
from repro.xmlstream.parser import parse_events
from repro.xmlstream.serializer import escape_attribute, escape_text, serialize_tree
from repro.xmlstream.tree import XMLElement, build_tree, parse_tree, tree_to_events

# --------------------------------------------------------------------- trees

_TAGS = ["a", "b", "c", "item", "node"]
_TEXTS = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;:!?&<>\"'",
    min_size=1,
    max_size=20,
)
_ATTR_VALUES = st.text(
    alphabet=string.ascii_letters + string.digits + " &<>\"'",
    max_size=12,
)


@st.composite
def xml_trees(draw, depth=3):
    """Random XML trees with text, attributes, and nested elements."""
    tag = draw(st.sampled_from(_TAGS))
    attr_names = draw(st.lists(st.sampled_from(["x", "y", "z"]), unique=True, max_size=2))
    attrs = {name: draw(_ATTR_VALUES) for name in attr_names}
    element = XMLElement(tag, attrs)
    if depth <= 0:
        if draw(st.booleans()):
            element.append_text(draw(_TEXTS))
        return element
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.booleans()):
            element.append(draw(xml_trees(depth=depth - 1)))
        else:
            element.append_text(draw(_TEXTS))
    return element


class TestXMLRoundTrips:
    @given(xml_trees())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_round_trip(self, tree):
        text = serialize_tree(tree)
        reparsed = parse_tree(text, keep_whitespace=True)
        assert reparsed.deep_equal(tree)

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_tree_events_tree_round_trip(self, tree):
        rebuilt = build_tree(tree_to_events(tree, document=True))
        assert rebuilt.deep_equal(tree)

    @given(_TEXTS)
    @settings(max_examples=60, deadline=None)
    def test_text_escaping_round_trips(self, text):
        parsed = parse_tree(f"<a>{escape_text(text)}</a>", keep_whitespace=True)
        assert parsed.string_value() == text

    @given(_ATTR_VALUES)
    @settings(max_examples=60, deadline=None)
    def test_attribute_escaping_round_trips(self, value):
        parsed = parse_tree(f'<a v="{escape_attribute(value)}"/>')
        assert parsed.get("v") == value

    @given(xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_size_estimate_is_monotone_in_children(self, tree):
        base = tree.size_estimate()
        tree.append(XMLElement("extra"))
        assert tree.size_estimate() > base


# ------------------------------------------------------------ content models


@st.composite
def content_particles(draw, depth=2) -> ContentParticle:
    labels = ["a", "b", "c", "d"]
    if depth <= 0:
        return Name(draw(st.sampled_from(labels)))
    kind = draw(st.sampled_from(["name", "seq", "choice", "star", "plus", "opt"]))
    if kind == "name":
        return Name(draw(st.sampled_from(labels)))
    if kind in ("seq", "choice"):
        parts = tuple(
            draw(content_particles(depth=depth - 1))
            for _ in range(draw(st.integers(min_value=2, max_value=3)))
        )
        return Sequence(parts) if kind == "seq" else Choice(parts)
    inner = draw(content_particles(depth=depth - 1))
    if kind == "star":
        return ZeroOrMore(inner)
    if kind == "plus":
        return OneOrMore(inner)
    return Optional_(inner)


def sample_word(particle: ContentParticle, rng: random.Random, budget=8):
    """Sample one word from the language of ``particle``."""
    if isinstance(particle, Name):
        return [particle.name]
    if isinstance(particle, Sequence):
        word = []
        for part in particle.parts:
            word.extend(sample_word(part, rng, budget))
        return word
    if isinstance(particle, Choice):
        return sample_word(rng.choice(particle.parts), rng, budget)
    if isinstance(particle, ZeroOrMore):
        repeats = rng.randint(0, 2) if budget > 0 else 0
        word = []
        for _ in range(repeats):
            word.extend(sample_word(particle.part, rng, budget - 2))
        return word
    if isinstance(particle, OneOrMore):
        repeats = rng.randint(1, 2) if budget > 0 else 1
        word = []
        for _ in range(repeats):
            word.extend(sample_word(particle.part, rng, budget - 2))
        return word
    if isinstance(particle, Optional_):
        if rng.random() < 0.5:
            return []
        return sample_word(particle.part, rng, budget)
    return []


class TestContentModelProperties:
    @given(content_particles(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_sampled_words_are_accepted(self, particle, seed):
        rng = random.Random(seed)
        automaton = build_automaton(ElementDecl("x", particle))
        for _ in range(3):
            word = sample_word(particle, rng)
            assert automaton.accepts(word), (particle.to_dtd_syntax(), word)

    @given(content_particles(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_cardinality_constraint_is_sound(self, particle, seed):
        rng = random.Random(seed)
        for _ in range(3):
            word = sample_word(particle, rng)
            for label in set(word):
                assert word.count(label) <= particle.max_count(label)

    @given(content_particles(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_order_constraint_is_sound(self, particle, seed):
        from repro.dtd.schema import DTD

        rng = random.Random(seed)
        dtd = DTD([ElementDecl("x", particle)], root="x")
        constraints = dtd.constraints()
        labels = sorted(particle.labels())
        words = [sample_word(particle, rng) for _ in range(4)]
        for before in labels:
            for after in labels:
                if not constraints.order_holds("x", before, after):
                    continue
                for word in words:
                    positions_before = [i for i, l in enumerate(word) if l == before]
                    positions_after = [i for i, l in enumerate(word) if l == after]
                    if positions_before and positions_after:
                        assert max(positions_before) < min(positions_after) or before == after

    @given(content_particles())
    @settings(max_examples=60, deadline=None)
    def test_nullable_agrees_with_automaton(self, particle):
        automaton = build_automaton(ElementDecl("x", particle))
        assert automaton.accepts([]) == particle.nullable()


# --------------------------------------------------------------- buffers


class TestBufferManagerProperties:
    @given(st.lists(st.integers(min_value=-200, max_value=300), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_peak_equals_max_running_total(self, deltas):
        manager = BufferManager()
        running = 0
        expected_peak = 0
        for delta in deltas:
            if delta >= 0:
                manager.grow(delta)
                running += delta
            else:
                manager.release(-delta)
                running = max(0, running + delta)
            expected_peak = max(expected_peak, running)
            assert manager.current_bytes == running
        assert manager.peak_bytes == expected_peak


# ------------------------------------------------------------ engine parity


class TestEngineAgreementProperties:
    @given(
        num_books=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=5_000),
        conform_to=st.sampled_from(["strong", "weak"]),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_flux_and_dom_agree_on_random_bibliographies(self, num_books, seed, conform_to):
        from repro.engines.dom_engine import DomEngine
        from repro.engines.flux_engine import FluxEngine
        from repro.workloads.bibgen import generate_bibliography
        from repro.workloads.dtds import BIB_DTD_STRONG, BIB_DTD_WEAK
        from repro.workloads.queries import get_query

        dtd = BIB_DTD_STRONG if conform_to == "strong" else BIB_DTD_WEAK
        document = generate_bibliography(num_books=num_books, seed=seed, conform_to=conform_to)
        query = get_query("BIB-Q3").xquery
        flux = FluxEngine(dtd).execute(query, document)
        dom = DomEngine().execute(query, document)
        assert flux.output == dom.output
        assert flux.peak_buffer_bytes <= dom.peak_buffer_bytes


# ------------------------------------------------------- fleet differential


class TestFleetDifferentialProperties:
    """Random fleets of aliased + distinct queries vs solo runs.

    Hypothesis drives the fleet shape (how many base structures, how many
    total registrations), the execution mode, and the feed chunking; the
    differential harness asserts every subscriber's shared output is
    byte-identical to an independent solo run of its exact query text.
    """

    @given(
        bases=st.integers(min_value=1, max_value=4),
        total=st.integers(min_value=1, max_value=10),
        execution=st.sampled_from(["inline", "threads", "async"]),
        cuts=st.lists(st.integers(min_value=1, max_value=5_000), max_size=6),
        num_books=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_fleets_match_solo_under_random_chunkings(
        self, bases, total, execution, cuts, num_books
    ):
        from repro.bench.fleets import (
            make_fleet,
            run_shared,
            run_shared_async,
            run_solo,
        )
        from repro.workloads.bibgen import generate_bibliography
        from repro.workloads.dtds import BIB_DTD_STRONG
        from repro.workloads.queries import queries_for_workload

        base_texts = [
            spec.xquery for spec in queries_for_workload("bib")[:bases]
        ]
        fleet = make_fleet(base_texts, total)
        document = generate_bibliography(num_books=num_books, seed=11)
        chunking = cuts or None
        if execution == "async":
            shared = run_shared_async(
                fleet, document, dtd=BIB_DTD_STRONG, chunking=chunking
            )
        else:
            shared, service = run_shared(
                fleet,
                document,
                dtd=BIB_DTD_STRONG,
                execution=execution,
                chunking=chunking,
            )
            # The pass collapsed the fleet to its distinct structures.
            assert service.metrics.last_pass.structures == min(bases, total)
        solo = run_solo(fleet, document, dtd=BIB_DTD_STRONG)
        assert set(shared) == set(solo)
        for key, expected in solo.items():
            assert shared[key] == expected, key
