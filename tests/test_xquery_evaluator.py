"""Unit tests for the reference tree evaluator."""

import pytest

from repro.errors import EvaluationError
from repro.xmlstream.serializer import serialize_tree
from repro.xmlstream.tree import parse_tree
from repro.xquery.evaluator import (
    TreeEvaluator,
    compare_atomic,
    effective_boolean_value,
    evaluate_query_on_tree,
    make_document_node,
    string_value,
)
from repro.xquery.parser import parse_xquery


@pytest.fixture
def bib_tree(paper_document):
    return parse_tree(paper_document)


def run(query, tree):
    return evaluate_query_on_tree(parse_xquery(query), tree)


def as_xml(items):
    return "".join(
        serialize_tree(item) if hasattr(item, "tag") else string_value(item) for item in items
    )


class TestPathEvaluation:
    def test_child_steps(self, bib_tree):
        items = run("$ROOT/bib/book/title", bib_tree)
        assert [item.string_value() for item in items] == [
            "TCP/IP Illustrated", "Data on the Web", "Digital Typography",
        ]

    def test_attribute_step(self, bib_tree):
        items = run("$ROOT/bib/book/@year", bib_tree)
        assert items == ["1994", "2000", "1999"]

    def test_text_step(self, bib_tree):
        items = run("$ROOT/bib/book/price/text()", bib_tree)
        assert items == ["65.95", "39.95", "50.00"]

    def test_descendant_step(self, bib_tree):
        items = run("$ROOT//author", bib_tree)
        assert len(items) == 4

    def test_wildcard_step(self, bib_tree):
        items = run("$ROOT/bib/book/*", bib_tree)
        assert len(items) == 14

    def test_missing_path_is_empty(self, bib_tree):
        assert run("$ROOT/bib/book/isbn", bib_tree) == []

    def test_unbound_variable_raises(self, bib_tree):
        with pytest.raises(EvaluationError):
            run("$nope/title", bib_tree)


class TestFLWREvaluation:
    def test_for_loop(self, bib_tree):
        items = run("for $b in $ROOT/bib/book return $b/title", bib_tree)
        assert len(items) == 3

    def test_for_with_where(self, bib_tree):
        items = run(
            "for $b in $ROOT/bib/book where $b/price > 50 return $b/title", bib_tree
        )
        assert [i.string_value() for i in items] == ["TCP/IP Illustrated"]

    def test_attribute_where(self, bib_tree):
        items = run(
            'for $b in $ROOT/bib/book where $b/@year = "2000" return $b/title', bib_tree
        )
        assert [i.string_value() for i in items] == ["Data on the Web"]

    def test_nested_loops_form_pairs(self, bib_tree):
        items = run(
            "for $b in $ROOT/bib/book return for $a in $b/author return $a", bib_tree
        )
        assert len(items) == 4

    def test_join_between_branches(self, bib_tree):
        items = run(
            'for $b in $ROOT/bib/book '
            'for $c in $ROOT/bib/book '
            'where $b/publisher = $c/publisher and $b/@year < $c/@year '
            "return <pair>{ $b/title }{ $c/title }</pair>",
            bib_tree,
        )
        assert items == []  # distinct publishers in the fixture

    def test_let_binding(self, bib_tree):
        items = run("let $books := $ROOT/bib/book return $books/title", bib_tree)
        assert len(items) == 3


class TestConstructorsAndConditionals:
    def test_constructor_copies_nodes(self, bib_tree):
        items = run("<x>{ $ROOT/bib/book/title }</x>", bib_tree)
        assert as_xml(items) == (
            "<x><title>TCP/IP Illustrated</title><title>Data on the Web</title>"
            "<title>Digital Typography</title></x>"
        )

    def test_constructor_with_attributes(self, bib_tree):
        items = run('<x kind="list">{ "text" }</x>', bib_tree)
        assert as_xml(items) == '<x kind="list">text</x>'

    def test_atomic_values_space_separated(self, bib_tree):
        items = run('<x>{ ("a", "b") }</x>', bib_tree)
        assert as_xml(items) == "<x>a b</x>"

    def test_if_then_else(self, bib_tree):
        items = run(
            'if (exists($ROOT/bib/book/editor)) then "edited" else "plain"', bib_tree
        )
        assert items == ["edited"]

    def test_if_false_branch(self, bib_tree):
        items = run('if ($ROOT/bib/book/price > 1000) then "rich" else "ok"', bib_tree)
        assert items == ["ok"]

    def test_paper_q3_output(self, bib_tree, paper_q3):
        items = run(paper_q3, bib_tree)
        xml = as_xml(items)
        assert xml.startswith("<results><result><title>TCP/IP Illustrated</title>")
        assert "<author>Abiteboul</author><author>Buneman</author><author>Suciu</author>" in xml


class TestComparisonSemantics:
    def test_existential_comparison(self, bib_tree):
        # At least one author called Suciu.
        assert run('$ROOT/bib/book/author = "Suciu"', bib_tree) == [True]
        assert run('$ROOT/bib/book/author = "Nobody"', bib_tree) == [False]

    def test_numeric_coercion(self):
        assert compare_atomic("<", "9", "10")
        assert compare_atomic(">", 10, "9.5")
        assert compare_atomic("=", "1.0", 1)

    def test_string_comparison_when_not_numeric(self):
        assert compare_atomic("<", "abc", "abd")
        assert not compare_atomic("=", "abc", "ABC")

    def test_unsupported_operator_raises(self):
        with pytest.raises(EvaluationError):
            compare_atomic("~", 1, 2)

    def test_effective_boolean_value(self):
        assert not effective_boolean_value([])
        assert effective_boolean_value(["x"])
        assert not effective_boolean_value([""])
        assert not effective_boolean_value([0])
        assert effective_boolean_value([0, 1])  # multi-item sequences are true

    def test_functions(self, bib_tree):
        assert run("exists($ROOT/bib/book)", bib_tree) == [True]
        assert run("empty($ROOT/bib/journal)", bib_tree) == [True]
        assert run("string($ROOT/bib/book/price)", bib_tree)[0] == "65.95"
        assert run("true()", bib_tree) == [True]
        assert run("not(false())", bib_tree) == [True]


class TestDocumentNode:
    def test_make_document_node_wraps_root(self, bib_tree):
        doc = make_document_node(bib_tree)
        assert doc.tag == "#document"
        assert doc.child_elements("bib")[0] is bib_tree

    def test_string_value_formatting(self):
        assert string_value(3.0) == "3"
        assert string_value(3.5) == "3.5"
        assert string_value("x") == "x"
