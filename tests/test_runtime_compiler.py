"""Unit tests for the FluX → physical plan compiler."""

import pytest

from repro.core.optimizer import compile_xquery
from repro.errors import PlanError
from repro.core.flux import FluxQuery, FProcessStream, OnHandler
from repro.runtime.compiler import QueryCompiler, compile_flux
from repro.runtime.plan import (
    ConstructorOp,
    OnFirstHandlerOp,
    OnHandlerOp,
    ProcessStreamOp,
    SequenceOp,
)
from repro.xquery.parser import parse_xquery
from repro.core.flux import FBufferedExpr


def plan_for(query, dtd):
    optimized = compile_xquery(query, dtd)
    return compile_flux(optimized.flux, optimized.dtd)


def find_ops(op, op_type):
    found = []
    stack = [op]
    while stack:
        current = stack.pop()
        if isinstance(current, op_type):
            found.append(current)
        stack.extend(current.children())
    return found


class TestCompilation:
    def test_q3_strong_plan_shape(self, paper_dtd, paper_q3):
        plan = plan_for(paper_q3, paper_dtd)
        streams = find_ops(plan.root, ProcessStreamOp)
        assert {s.element_type for s in streams} == {"#document", "bib", "book"}
        book = next(s for s in streams if s.element_type == "book")
        assert set(book.on_index) == {"title", "author"}
        assert book.buffer_labels == frozenset()
        assert not book.buffer_whole
        assert len(plan.conditions) == 0

    def test_q3_weak_plan_registers_condition(self, paper_weak_dtd, paper_q3):
        plan = plan_for(paper_q3, paper_weak_dtd)
        streams = find_ops(plan.root, ProcessStreamOp)
        book = next(s for s in streams if s.element_type == "book")
        assert book.buffer_labels == frozenset({"author"})
        on_first = [h for h in book.handlers if isinstance(h, OnFirstHandlerOp)]
        assert len(on_first) == 1
        assert on_first[0].condition_id is not None
        assert len(plan.conditions) == 1

    def test_handler_indexes_follow_order(self, paper_weak_dtd, paper_q3):
        plan = plan_for(paper_q3, paper_weak_dtd)
        book = next(
            s for s in find_ops(plan.root, ProcessStreamOp) if s.element_type == "book"
        )
        assert [h.index for h in book.handlers] == list(range(len(book.handlers)))
        assert book.on_index["title"] == 0

    def test_operator_count_and_describe(self, paper_dtd, paper_q3):
        plan = plan_for(paper_q3, paper_dtd)
        assert plan.operator_count() >= 5
        description = plan.describe()
        assert "physical plan" in description
        assert "buffer description forest" in description

    def test_without_dtd_conditions_not_registered(self, paper_q3):
        plan = plan_for(paper_q3, None)
        assert len(plan.conditions) == 0
        on_first = find_ops(plan.root, OnFirstHandlerOp)
        assert on_first
        assert all(h.condition_id is None or h.always_satisfied for h in on_first)

    def test_duplicate_streaming_handlers_rejected(self, paper_dtd):
        handlers = (
            OnHandler("title", "t", FBufferedExpr(parse_xquery("$t"))),
            OnHandler("title", "u", FBufferedExpr(parse_xquery("$u"))),
        )
        query = FluxQuery(FProcessStream("b", "book", handlers), paper_dtd)
        with pytest.raises(PlanError):
            QueryCompiler(paper_dtd).compile(query)

    def test_constructor_attributes_preserved(self, paper_dtd):
        plan = plan_for('<out kind="x">{ for $b in $ROOT/bib/book return <y/> }</out>', paper_dtd)
        constructors = find_ops(plan.root, ConstructorOp)
        out = next(c for c in constructors if c.name == "out")
        assert out.attributes == (("kind", "x"),)
