"""Regression tests for the SharedPass cross-thread state transitions.

``abort()`` is the one SharedPass entry point documented as callable from
any thread (a pool driver may abort a pass its worker is feeding), so the
aborted/closed flips are lock-protected test-and-sets.  These tests pin
the two effects that the ``_state_lock`` makes exactly-once — the
``pass.abort`` log event and the service's active-pass slot release — and
prove the locking leaves pass output byte-identical to a solo engine run.
"""

import threading

from repro.engines.flux_engine import FluxEngine
from repro.obs import MemoryLogger, Observability
from repro.service import QueryService
from repro.service.session import SharedPass

from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3


def make_service(obs=None):
    service = QueryService(PAPER_FIGURE1_DTD, obs=obs)
    service.register(PAPER_Q3, key="q")
    return service


class TestAbortStorm:
    def test_concurrent_aborts_log_pass_abort_once(self):
        logger = MemoryLogger()
        service = make_service(obs=Observability(logger=logger))
        shared_pass = service.open_pass()
        barrier = threading.Barrier(8)

        def storm():
            barrier.wait()
            shared_pass.abort()

        threads = [threading.Thread(target=storm) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        abort_events = [e for e in logger.events if e["event"] == "pass.abort"]
        assert len(abort_events) == 1
        assert shared_pass.aborted

    def test_concurrent_aborts_release_the_slot_once(self):
        closes = []
        service = make_service()
        registrations = list(service._registrations.values())
        shared_pass = SharedPass(
            registrations,
            service.dtd,
            service.validate,
            on_close=closes.append,
        )
        barrier = threading.Barrier(8)

        def storm():
            barrier.wait()
            shared_pass.abort()

        threads = [threading.Thread(target=storm) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert closes == [shared_pass]

    def test_abort_after_finish_does_not_reclose(self):
        closes = []
        service = make_service()
        registrations = list(service._registrations.values())
        shared_pass = SharedPass(
            registrations,
            service.dtd,
            service.validate,
            on_close=closes.append,
        )
        shared_pass.feed(PAPER_DOCUMENT)
        results = shared_pass.finish()
        assert "q" in results
        shared_pass.abort()
        assert closes == [shared_pass]

    def test_aborted_pass_frees_the_service_for_a_new_pass(self):
        service = make_service()
        shared_pass = service.open_pass()
        threads = [threading.Thread(target=shared_pass.abort) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = service.run_pass(PAPER_DOCUMENT)
        assert results["q"].output


class TestOutputUnchangedByLocking:
    def test_pass_output_is_byte_identical_to_solo_engine(self):
        solo = FluxEngine(PAPER_FIGURE1_DTD).execute(PAPER_Q3, PAPER_DOCUMENT)
        service = make_service()
        shared = service.run_pass(PAPER_DOCUMENT)["q"]
        assert shared.output == solo.output

    def test_output_identical_after_an_aborted_predecessor(self):
        service = make_service()
        doomed = service.open_pass()
        doomed.feed(PAPER_DOCUMENT[: len(PAPER_DOCUMENT) // 2])
        doomed.abort()
        solo = FluxEngine(PAPER_FIGURE1_DTD).execute(PAPER_Q3, PAPER_DOCUMENT)
        assert service.run_pass(PAPER_DOCUMENT)["q"].output == solo.output
