"""Seeded async-blocking violations for the golden checker tests.

Line numbers are asserted exactly in tests/test_analysis_checkers.py —
do not reflow this file without updating them.
"""
import time


class AsyncFrontend:
    async def serve(self, conn, lock):
        time.sleep(0.1)
        payload = conn.recv()
        handle = open("plan.bin")
        lock.acquire()
        data = handle.read()  # async-ok
        await lock.acquire()
        return payload, data
