"""Seeded pickle-safety violations for the golden checker tests.

Line numbers are asserted exactly in tests/test_analysis_checkers.py —
do not reflow this file without updating them.
"""
from dataclasses import dataclass
from threading import Lock
from typing import List


@dataclass(frozen=True)
class StepNode:
    __slots__ = ("name",)
    name: str


@dataclass
class CompiledQueryPlan:
    steps: List[StepNode]
    guard: Lock

    def __getstate__(self):
        return {}


class ShippedExtra(CompiledQueryPlan):  # pickle-ok
    pass


class Unreachable:
    guard: Lock  # not plan-reachable: no finding
