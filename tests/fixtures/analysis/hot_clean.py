"""A marked hot-loop function the purity checker must pass clean."""


class HoistedSink:
    def consume(self, events):  # hot-loop
        limit = self._limit
        counts = self._counts
        total = 0
        for event in events:
            total += 1
            counts[event] = counts.get(event, 0) + 1
            if limit and total > limit:
                # hot-loop-ok: overflow path — once per document at most
                self._overflow = [event]
        return total
