"""Seeded hot-loop purity violations for the golden checker tests.

Line numbers are asserted exactly in tests/test_analysis_checkers.py —
do not reflow this file without updating them.
"""


class EventSink:
    def consume(self, events):  # hot-loop
        total = 0
        for event in events:
            box = [event]
            if isinstance(event, tuple):
                continue
            try:
                total += len(box)
            except TypeError:
                pass
            if self._limit and total > self._limit:
                break
        return total

    def bare_excuse(self):  # hot-loop
        return {"a": 1}  # hot-loop-ok

    def cold_path(self, events):
        return [list(event) for event in events]  # unmarked: no findings
