"""Async code the blocking checker must pass without findings."""


class CooperativeFrontend:
    async def serve(self, conn, lock):
        await lock.acquire()
        # async-ok: bounded read of an in-memory buffer
        data = conn.recv()

        def drain(handle):  # sync helper runs in an executor
            return handle.read()

        return data, drain

    def sync_path(self, handle):
        return handle.read()  # not async: out of scope
