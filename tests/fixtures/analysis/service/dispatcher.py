"""Fixture whose path suffix matches REQUIRED_HOT: route lost its marker.

Only ``SharedProjectionIndex.route`` is unmarked, so the checker must
report exactly one HL005 here.
"""


class SharedProjectionIndex:
    def route(self, event):
        return 0

    def _route_start(self, event):  # hot-loop
        return 0


class SharedDispatcher:
    def dispatch(self, events):  # hot-loop
        return None
