"""A class the lock-discipline checker must pass without findings."""
import threading


class DisciplinedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._label = "idle"

    def increment(self):
        with self._lock:
            self._count += 1

    def snapshot(self):
        with self._lock:
            return self._count

    def peek_racy(self):  # unguarded: approximate read for logs is fine
        return self._count

    def peek_annotated(self):
        return self._count  # unguarded: approximate read for logs is fine

    def _bump_locked(self):
        self._count += 1

    def rename(self, label):
        self._label = label
