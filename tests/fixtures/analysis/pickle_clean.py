"""A plan graph the pickle-safety checker must pass without findings."""
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SafeNode:
    __slots__ = ("name",)
    name: str

    def __getstate__(self):
        return {"name": self.name}

    def __setstate__(self, state):
        object.__setattr__(self, "name", state["name"])


@dataclass
class PlanArtifact:
    nodes: Tuple[SafeNode, ...]
    payload: bytes


class Debuggable:  # pickle-ok: debug handle, never shipped to workers
    pass


@dataclass
class Wrapper(PlanArtifact):
    note: str
    debug: "Debuggable"
