"""Seeded lock-discipline violations for the golden checker tests.

Line numbers are asserted exactly in tests/test_analysis_checkers.py —
do not reflow this file without updating them.
"""
import threading


class RacyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self._count = 0
        self._history = []

    def increment(self):
        with self._lock:
            self._count += 1
            self._history.append(self._count)

    def peek(self):
        return self._count

    def wrong_lock(self):
        with self._aux:
            return self._count

    def declare_phantom(self):
        self._total = 0  # guarded-by: _missing

    def bare_reason(self):
        return self._count  # unguarded
