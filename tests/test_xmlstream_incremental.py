"""Incremental (push-mode) parsing: feed()/close() equals a one-shot parse."""

import io

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import EndElement, StartDocument, StartElement, Text
from repro.xmlstream.parser import StreamingXMLParser, parse_events

from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD


DOCUMENTS = [
    "<a/>",
    "<a>text</a>",
    '<a x="1" y="two"><b/><c>mid</c>tail</a>',
    "<a><!-- comment --><b>x</b><?pi data?></a>",
    "<a><![CDATA[raw < text]]></a>",
    "<a>&amp;&lt;&#65;&#x42;</a>",
    f"<!DOCTYPE bib [{PAPER_FIGURE1_DTD}]>\n{PAPER_DOCUMENT}",
    '<?xml version="1.0"?>\n<root><nested><deep>value</deep></nested></root>',
]


def push_parse(document, size):
    parser = StreamingXMLParser.incremental()
    events = []
    for start in range(0, len(document), size):
        events.extend(parser.feed(document[start : start + size]))
    events.extend(parser.close())
    return parser, events


class TestFeedEqualsOneShot:
    @pytest.mark.parametrize("document", DOCUMENTS)
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 64, 100000])
    def test_chunking_is_invisible(self, document, size):
        _, events = push_parse(document, size)
        assert events == list(parse_events(document))

    def test_doctype_is_captured(self):
        document = f"<!DOCTYPE bib [{PAPER_FIGURE1_DTD}]>\n{PAPER_DOCUMENT}"
        parser, _ = push_parse(document, 5)
        assert parser.doctype_name == "bib"
        assert "<!ELEMENT bib" in parser.doctype_internal_subset

    def test_keep_whitespace(self):
        document = "<a> <b/> </a>"
        parser = StreamingXMLParser.incremental(keep_whitespace=True)
        events = parser.feed(document) + parser.close()
        assert events == list(parse_events(document, keep_whitespace=True))
        assert any(isinstance(e, Text) for e in events)

    def test_events_arrive_as_soon_as_complete(self):
        parser = StreamingXMLParser.incremental()
        first = parser.feed("<a><b>he")
        assert first == [StartDocument(), StartElement("a", ()), StartElement("b", ())]
        second = parser.feed("llo</b>")
        assert second == [Text("hello"), EndElement("b")]
        assert parser.feed("</a>") == [EndElement("a")]

    def test_doctype_documents_stream_instead_of_buffering_to_close(self):
        # A DOCTYPE used to stall push-mode parsing for the rest of the
        # document (its scan requested more input than any feed supplies),
        # silently buffering everything until close().  Events must flow —
        # and the consumed prefix must be dropped — while feeding.
        body = "<book><title>t</title></book>" * 6000
        document = f"<!DOCTYPE bib [{PAPER_FIGURE1_DTD}]>\n<bib>{body}</bib>"
        parser = StreamingXMLParser.incremental()
        events_before_close = 0
        max_buffered = 0
        for start in range(0, len(document), 4096):
            events_before_close += len(parser.feed(document[start : start + 4096]))
            max_buffered = max(max_buffered, len(parser._buffer))
        parser.close()
        assert parser.doctype_name == "bib"
        assert events_before_close > 10000
        assert max_buffered < len(document) // 2

    def test_chunk_spanning_constructs_parse_in_linear_time(self):
        # The scan-resume memo must survive the _find("<") that re-enters a
        # stalled construct on every feed(); without it, a CDATA section (or
        # comment) spanning K chunks rescans from its start each time, O(K^2).
        import time

        payload = "x" * (1 << 22)  # 4 MB
        document = f"<a><![CDATA[{payload}]]></a>"
        parser = StreamingXMLParser.incremental()
        started = time.perf_counter()
        events = []
        for start in range(0, len(document), 1024):
            events.extend(parser.feed(document[start : start + 1024]))
        events.extend(parser.close())
        elapsed = time.perf_counter() - started
        assert events == list(parse_events(document))
        # Quadratic behaviour takes ~30s here; linear well under a second.
        assert elapsed < 5.0

    def test_file_like_source_with_tiny_chunks_still_works(self):
        document = f"<!DOCTYPE bib [{PAPER_FIGURE1_DTD}]>\n{PAPER_DOCUMENT}"
        # chunk_size=3 splits "<!DOCTYPE" across reads; the discriminating
        # lookahead must request more instead of misparsing the declaration.
        parser = StreamingXMLParser(io.StringIO(document), chunk_size=3)
        assert list(parser.events()) == list(parse_events(document))
        assert parser.doctype_name == "bib"


class TestPushModeErrors:
    def test_close_on_unclosed_elements(self):
        parser = StreamingXMLParser.incremental()
        parser.feed("<a><b>")
        with pytest.raises(XMLSyntaxError):
            parser.close()

    def test_close_without_root(self):
        parser = StreamingXMLParser.incremental()
        parser.feed("<!-- only a comment -->")
        with pytest.raises(XMLSyntaxError):
            parser.close()

    def test_multiple_roots_detected_mid_stream(self):
        parser = StreamingXMLParser.incremental()
        parser.feed("<a/>")
        with pytest.raises(XMLSyntaxError):
            parser.feed("<b/>")

    def test_error_is_deferred_until_the_completed_prefix_is_delivered(self):
        # A one-shot parse yields five events before failing on "</x>"; a
        # single feed() of the same text must deliver the same prefix and
        # surface the error on the next call.
        document = "<a><b/></a></x>"
        one_shot = []
        with pytest.raises(XMLSyntaxError):
            for event in parse_events(document):
                one_shot.append(event)
        parser = StreamingXMLParser.incremental()
        prefix = parser.feed(document)
        assert prefix == one_shot
        with pytest.raises(XMLSyntaxError):
            parser.close()

    def test_feed_after_close_rejected(self):
        parser = StreamingXMLParser.incremental()
        parser.feed("<a/>")
        parser.close()
        with pytest.raises(ValueError):
            parser.feed("more")

    def test_events_requires_a_source(self):
        with pytest.raises(ValueError):
            list(StreamingXMLParser.incremental().events())

    def test_feed_requires_push_mode(self):
        with pytest.raises(ValueError):
            StreamingXMLParser("<a/>").feed("x")
        with pytest.raises(ValueError):
            StreamingXMLParser("<a/>").close()
