"""Observability wired through the service, pools, and worker processes.

The acceptance bar for the observability layer, end to end:

* with ``obs=None`` (the default), an instrumented service produces
  byte-identical output to the pre-observability code path;
* with metrics enabled, *one* registry snapshot describes the whole
  system — pass counters, stage latency histograms with percentiles,
  service/pool lifetime totals, plan-cache counters — in JSON and in
  parseable Prometheus text;
* with tracing enabled, every stage span of a document carries the
  document's trace id: across ``ServicePool`` worker threads, and across
  ``ProcessServicePool`` pipes, where worker-side spans (``pass.*``)
  merge into the parent's sink under the same trace id as the parent's
  ``pool.shard`` — including across an injected worker crash-respawn,
  whose ``pool.respawn`` / re-``pool.ship`` spans join the crashed
  document's trace;
* lifecycle events (register, pass start/finish, faults, respawns,
  shipping) land in the structured log exactly once each.
"""

import pytest

from repro.errors import WorkerCrashError
from repro.obs import (
    MemoryLogger,
    MemorySink,
    MetricsRegistry,
    Observability,
    Tracer,
)
from repro.obs.validate import validate_prometheus_text
from repro.service import ProcessServicePool, QueryService, ServicePool
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import BIB_DTD_STRONG
from tests.conftest import PAPER_DOCUMENT, PAPER_FIGURE1_DTD, PAPER_Q3

TITLES_QUERY = "<titles>{ for $b in $ROOT/bib/book return $b/title }</titles>"
PASS_STAGES = {"pass.parse", "pass.route", "pass.dispatch", "pass.evaluate", "pass.emit"}
CRASH = "CRASH-THIS-WORKER"


def full_obs():
    """A hub with every component live (profiler excluded: not re-entrant)."""
    sink = MemorySink()
    return (
        Observability(
            metrics=MetricsRegistry(), tracer=Tracer(sink), logger=MemoryLogger()
        ),
        sink,
    )


class TestServiceObservability:
    def test_instrumented_output_is_byte_identical(self):
        plain = QueryService(PAPER_FIGURE1_DTD)
        plain.register(PAPER_Q3, key="q")
        expected = plain.run_pass(PAPER_DOCUMENT)["q"].output

        obs, _ = full_obs()
        observed = QueryService(PAPER_FIGURE1_DTD, obs=obs)
        observed.register(PAPER_Q3, key="q")
        assert observed.run_pass(PAPER_DOCUMENT)["q"].output == expected

    def test_one_snapshot_describes_the_whole_system(self):
        obs, _ = full_obs()
        service = QueryService(PAPER_FIGURE1_DTD, obs=obs)
        service.register(PAPER_Q3, key="q")
        service.run_pass(PAPER_DOCUMENT)

        # What the CLI does at --metrics-out time: fold the pull-style
        # lifetime totals and cache counters beside the push-style series.
        obs.metrics.set_from_dict("repro_service", service.metrics.as_dict())
        service.plan_cache.register_metrics(obs.metrics)
        snap = obs.metrics.snapshot()

        assert snap["repro_passes_total"]["values"][0]["value"] == 1
        outcomes = {
            v["labels"]["outcome"]: v["value"]
            for v in snap["repro_events_total"]["values"]
        }
        assert outcomes["forwarded"] > 0
        stages = {
            v["labels"]["stage"]
            for v in snap["repro_stage_duration_seconds"]["values"]
        }
        assert stages == {"parse", "route", "dispatch", "evaluate", "emit"}
        for sample in snap["repro_stage_duration_seconds"]["values"]:
            assert sample["count"] == 1
            assert "p95" in sample
        assert snap["repro_service_passes_completed"]["values"][0]["value"] == 1
        assert snap["repro_plan_cache_misses"]["values"][0]["value"] == 1
        assert validate_prometheus_text(obs.metrics.to_prometheus()) == []

    def test_stage_spans_share_the_pass_trace(self):
        obs, sink = full_obs()
        service = QueryService(PAPER_FIGURE1_DTD, obs=obs)
        service.register(PAPER_Q3, key="q")
        service.run_pass(PAPER_DOCUMENT)

        spans = sink.spans
        by_name = {span["name"]: span for span in spans}
        assert set(by_name) == PASS_STAGES | {"pass"}
        assert len({span["trace_id"] for span in spans}) == 1
        pass_span = by_name["pass"]
        for name in PASS_STAGES:
            assert by_name[name]["parent_id"] == pass_span["span_id"]
        # Stage durations are bounded by the whole pass (each stage is
        # timed inside it), modulo clock granularity.
        assert by_name["pass"]["duration_s"] >= 0

    def test_lifecycle_events_are_logged_once_each(self):
        obs, _ = full_obs()
        service = QueryService(PAPER_FIGURE1_DTD, obs=obs)
        service.register(PAPER_Q3, key="q")
        service.run_pass(PAPER_DOCUMENT)
        service.unregister("q")

        log = obs.logger
        (register,) = log.find("service.register")
        assert register["key"] == "q" and register["from_cache"] is False
        assert len(log.find("pass.start")) == 1
        (finish,) = log.find("pass.finish")
        assert finish["results"] == 1
        (unregister,) = log.find("service.unregister")
        assert unregister["key"] == "q"

    def test_aborted_pass_logs_abort_not_finish(self):
        obs, _ = full_obs()
        service = QueryService(PAPER_FIGURE1_DTD, obs=obs)
        service.register(PAPER_Q3, key="q")
        with pytest.raises(Exception):
            service.run_pass("<bib><unclosed>")
        assert len(obs.logger.find("pass.abort")) == 1
        assert obs.logger.find("pass.finish") == []

    def test_service_lifetime_totals_fold_every_pass(self):
        service = QueryService(PAPER_FIGURE1_DTD)
        service.register(PAPER_Q3, key="q")
        elapsed, pruned = 0.0, 0
        for outcome in service.serve([PAPER_DOCUMENT, PAPER_DOCUMENT]):
            elapsed += outcome.metrics.elapsed_seconds
            pruned += outcome.metrics.subtrees_pruned
        totals = service.metrics
        assert totals.elapsed_seconds_total == pytest.approx(elapsed)
        assert totals.subtrees_pruned_total == pruned
        assert totals.as_dict()["elapsed_seconds_total"] == pytest.approx(elapsed)
        assert "subtrees_pruned_total" in totals.as_dict()


class TestThreadPoolObservability:
    def test_pool_spans_and_logs(self):
        obs, sink = full_obs()
        pool = ServicePool(PAPER_FIGURE1_DTD, workers=2, obs=obs)
        pool.register(PAPER_Q3, key="q")
        served = list(pool.serve([PAPER_DOCUMENT, PAPER_DOCUMENT, PAPER_DOCUMENT]))
        assert all(outcome.ok for outcome in served)

        spans = sink.spans
        shards = [s for s in spans if s["name"] == "pool.shard"]
        assert len(shards) == 3
        for shard in shards:
            # Every worker-thread pass span joins its document's trace.
            trace = [s for s in spans if s["trace_id"] == shard["trace_id"]]
            assert {s["name"] for s in trace} == PASS_STAGES | {"pass", "pool.shard"}
        # One mirrored registration logs once — at pool level, not per worker.
        assert len(obs.logger.find("pool.register")) == 1
        assert obs.logger.find("service.register") == []

    def test_pool_fault_is_logged_with_its_trace(self):
        obs, sink = full_obs()
        pool = ServicePool(PAPER_FIGURE1_DTD, workers=2, obs=obs)
        pool.register(PAPER_Q3, key="q")
        served = list(pool.serve(["<bib><broken>", PAPER_DOCUMENT]))
        assert sorted(outcome.ok for outcome in served) == [False, True]
        (fault,) = obs.logger.find("pool.fault")
        errored = [s for s in sink.spans
                   if s["name"] == "pool.shard" and s.get("outcome") == "error"]
        assert len(errored) == 1
        assert fault["trace_id"] == errored[0]["trace_id"]

    def test_pool_metrics_aggregate_new_totals(self):
        pool = ServicePool(PAPER_FIGURE1_DTD, workers=2)
        pool.register(PAPER_Q3, key="q")
        list(pool.serve([PAPER_DOCUMENT, PAPER_DOCUMENT]))
        totals = pool.metrics
        assert totals.elapsed_seconds_total > 0
        assert totals.subtrees_pruned_total >= 0
        assert "elapsed_seconds_total" in totals.as_dict()


class TestProcessPoolObservability:
    """The headline criterion: one merged trace across process pipes."""

    @pytest.fixture(scope="class")
    def served_run(self):
        documents = [
            generate_bibliography(num_books=4, seed=seed) for seed in (1, 2, 3)
        ]
        documents[1] = documents[1].replace("</bib>", f"<!--{CRASH}--></bib>")
        obs, sink = full_obs()
        with ProcessServicePool(
            BIB_DTD_STRONG,
            workers=2,
            start_method="fork",
            obs=obs,
            _crash_marker=CRASH,
        ) as pool:
            pool.register(TITLES_QUERY, key="t")
            served = list(pool.serve(documents))
            metrics = pool.metrics
        return obs, sink.spans, served, metrics

    def test_worker_spans_merge_under_the_parent_trace(self, served_run):
        _, spans, served, _ = served_run
        ok = [o for o in served if o.ok]
        assert len(ok) == 2
        shards = {
            s["trace_id"]: s
            for s in spans
            if s["name"] == "pool.shard" and s.get("outcome") != "error"
        }
        assert len(shards) == 2
        for trace_id in shards:
            names = {s["name"] for s in spans if s["trace_id"] == trace_id}
            # Worker-side pass spans, recorded in another process, share
            # the trace id of the parent-side shard span.
            assert names == PASS_STAGES | {"pass", "pool.shard"}

    def test_crash_respawn_spans_join_the_crashed_documents_trace(self, served_run):
        obs, spans, served, _ = served_run
        (failure,) = [o for o in served if not o.ok]
        assert isinstance(failure.error, WorkerCrashError)
        (errored_shard,) = [
            s for s in spans
            if s["name"] == "pool.shard" and s.get("outcome") == "error"
        ]
        trace = [s for s in spans if s["trace_id"] == errored_shard["trace_id"]]
        names = sorted(s["name"] for s in trace)
        # The crashed document's trace: its failed shard, the respawn of
        # its worker, and the re-shipped plan — no pass spans (the worker
        # died mid-pass and its span buffer died with it).
        assert "pool.respawn" in names
        assert "pool.ship" in names
        assert not any(name.startswith("pass") for name in names)
        (fault,) = [
            e for e in obs.logger.find("pool.fault")
            if e.get("error") == "WorkerCrashError"
        ]
        assert fault["trace_id"] == errored_shard["trace_id"]
        (respawn,) = obs.logger.find("pool.respawn")
        assert respawn["trace_id"] == errored_shard["trace_id"]
        assert respawn["exitcode"] == 3

    def test_worker_stage_durations_fold_into_parent_histograms(self, served_run):
        obs, _, served, metrics = served_run
        snap = obs.metrics.snapshot()
        stages = {
            v["labels"]["stage"]: v
            for v in snap["repro_stage_duration_seconds"]["values"]
        }
        assert set(stages) == {"parse", "route", "dispatch", "evaluate", "emit"}
        ok_documents = sum(1 for o in served if o.ok)
        assert stages["evaluate"]["count"] == ok_documents
        assert snap["repro_passes_total"]["values"][0]["value"] == ok_documents
        # The pool aggregate folds the shipped-home pass metrics, new
        # lifetime fields included.
        assert metrics.elapsed_seconds_total > 0
        assert metrics.documents_failed == 1

    def test_plan_shipping_is_logged(self, served_run):
        obs, _, _, metrics = served_run
        ships = obs.logger.find("pool.ship")
        # Initial fleet (2 workers x 1 query structure) plus the respawn
        # re-ship.  Shipping is per *structure*, so the logged key is the
        # structure key, identical across all three sends.
        assert len(ships) == metrics.ship_count == 3
        assert len({e["key"] for e in ships}) == 1
