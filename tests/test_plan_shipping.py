"""Serializable plan artifacts and plan-cache persistence.

Two properties keep plan shipping and warm-starting honest:

* a compiled plan that takes a pickle round-trip (directly, or through a
  :class:`PlanArtifact`, or through a cache snapshot on disk) evaluates
  **byte-identically** to the plan that never left the process — across
  the bib and XMark workloads;
* a warm-started cache serves those plans as hits without a single
  optimizer run (``misses == 0``), with the ``preloaded`` counter
  reporting what the snapshot spared.
"""

import pickle

import pytest

from repro.bench.fleets import alias_query
from repro.core.optimizer import OptimizerPipeline
from repro.engines.flux_engine import FluxEngine
from repro.runtime.compiler import CompiledQueryPlan, compile_query
from repro.runtime.plan_cache import PlanArtifact, PlanCache, cache_key
from repro.service import QueryService
from repro.workloads.bibgen import generate_bibliography
from repro.workloads.dtds import AUCTION_DTD, BIB_DTD_STRONG
from repro.workloads.queries import queries_for_workload
from repro.workloads.xmark import generate_auction_site

WORKLOADS = {
    "bib": (BIB_DTD_STRONG, queries_for_workload("bib"),
            lambda: generate_bibliography(num_books=12, seed=42)),
    "xmark": (AUCTION_DTD, queries_for_workload("auction"),
              lambda: generate_auction_site(scale=0.1, seed=42)),
}


def _workload(name):
    dtd_text, specs, make_document = WORKLOADS[name]
    return dtd_text, specs, make_document()


class TestPlanPickleRoundTrips:
    @pytest.mark.parametrize("workload", ["bib", "xmark"])
    def test_round_tripped_plans_evaluate_byte_identically(self, workload):
        dtd_text, specs, document = _workload(workload)
        pipeline = OptimizerPipeline(dtd_text)
        for spec in specs:
            plan = compile_query(spec.xquery, pipeline=pipeline)
            restored = pickle.loads(pickle.dumps(plan))
            assert isinstance(restored, CompiledQueryPlan)
            assert restored.source == plan.source
            assert restored.pipeline_config == plan.pipeline_config

            # Evaluate the original and the round-tripped plan over the
            # same document through identical services; outputs must be
            # byte-identical.
            outputs = []
            for candidate in (plan, restored):
                service = QueryService(dtd_text, execution="inline")
                service.register_compiled(candidate, key="q")
                outputs.append(service.run_pass(document)["q"].output)
            assert outputs[0] == outputs[1], spec.key
            # And both must match a solo engine run of the query text.
            solo = FluxEngine(dtd_text).execute(spec.xquery, document).output
            assert outputs[1] == solo, spec.key

    @pytest.mark.parametrize("workload", ["bib", "xmark"])
    def test_artifact_key_is_the_cache_key(self, workload):
        dtd_text, specs, _ = _workload(workload)
        pipeline = OptimizerPipeline(dtd_text)
        plan = compile_query(specs[0].xquery, pipeline=pipeline)
        artifact = PlanArtifact.from_plan(plan)
        assert artifact.key == cache_key(
            plan.source, plan.dtd, plan.pipeline_config
        )
        restored = artifact.load_plan()
        assert restored.source == plan.source
        assert len(artifact.payload) > 0

    def test_artifact_rejects_foreign_payload(self):
        artifact = PlanArtifact(
            source="q", dtd_fingerprint="f", pipeline_config="c",
            payload=pickle.dumps({"not": "a plan"}),
        )
        with pytest.raises(TypeError):
            artifact.load_plan()


class TestRegisterCompiled:
    def test_registers_without_touching_cache_or_pipeline(self):
        dtd_text, specs, document = _workload("bib")
        plan = compile_query(specs[0].xquery, pipeline=OptimizerPipeline(dtd_text))
        service = QueryService(dtd_text, execution="inline")
        registration = service.register_compiled(plan, key="shipped")
        assert registration.key == "shipped"
        assert service.plan_cache.stats.misses == 0
        assert service.plan_cache.stats.hits == 0
        assert len(service.plan_cache) == 0
        assert service.run_pass(document)["shipped"].output

    def test_rejects_plan_compiled_under_another_schema(self):
        bib_plan = compile_query(
            queries_for_workload("bib")[0].xquery,
            pipeline=OptimizerPipeline(BIB_DTD_STRONG),
        )
        auction_service = QueryService(AUCTION_DTD)
        with pytest.raises(ValueError, match="DTD"):
            auction_service.register_compiled(bib_plan, key="wrong")

    def test_replacement_counts_like_register(self):
        dtd_text, specs, _ = _workload("bib")
        pipeline = OptimizerPipeline(dtd_text)
        plan_a = compile_query(specs[0].xquery, pipeline=pipeline)
        plan_b = compile_query(specs[1].xquery, pipeline=pipeline)
        service = QueryService(dtd_text)
        service.register_compiled(plan_a, key="q")
        service.register_compiled(plan_b, key="q")
        assert service.metrics.queries_registered == 2
        assert service.metrics.queries_replaced == 1
        assert len(service) == 1


class TestCacheSnapshots:
    def _compiled_cache(self, count=3):
        cache = PlanCache(capacity=16)
        pipeline = OptimizerPipeline(BIB_DTD_STRONG)
        specs = queries_for_workload("bib")[:count]
        for spec in specs:
            cache.get_or_compile(spec.xquery, pipeline)
        return cache, specs

    def test_dump_load_round_trip_warm_starts(self, tmp_path):
        cache, specs = self._compiled_cache()
        path = str(tmp_path / "plans.bin")
        assert cache.dump(path) == len(specs)

        fresh = PlanCache(capacity=16)
        assert fresh.load(path) == len(specs)
        assert fresh.stats.preloaded == len(specs)
        assert len(fresh) == len(specs)
        # Every query is now a hit: zero compilations after a warm start.
        pipeline = OptimizerPipeline(BIB_DTD_STRONG)
        for spec in specs:
            plan, from_cache = fresh.get_or_compile(spec.xquery, pipeline)
            assert from_cache
        assert fresh.stats.misses == 0
        assert fresh.stats.hits == len(specs)

    def test_loaded_plans_evaluate_byte_identically(self, tmp_path):
        cache, specs = self._compiled_cache(count=2)
        path = str(tmp_path / "plans.bin")
        cache.dump(path)
        fresh = PlanCache(capacity=16)
        fresh.load(path)
        document = generate_bibliography(num_books=10, seed=5)
        for spec in specs:
            service = QueryService(
                BIB_DTD_STRONG, plan_cache=fresh, execution="inline"
            )
            service.register(spec.xquery, key="q")
            output = service.run_pass(document)["q"].output
            solo = FluxEngine(BIB_DTD_STRONG).execute(spec.xquery, document).output
            assert output == solo, spec.key
        assert fresh.stats.misses == 0

    def test_load_respects_capacity_keeping_most_recent(self, tmp_path):
        cache, specs = self._compiled_cache(count=3)
        path = str(tmp_path / "plans.bin")
        cache.dump(path)
        tiny = PlanCache(capacity=2)
        assert tiny.load(path) == 3
        assert len(tiny) == 2
        # The dump is LRU-first, so the two most recently used plans of
        # the dumping cache survive in the loader.
        pipeline = OptimizerPipeline(BIB_DTD_STRONG)
        plan, from_cache = tiny.get_or_compile(specs[-1].xquery, pipeline)
        assert from_cache
        assert tiny.stats.evictions == 1

    def test_dump_is_atomic_no_temp_left_behind(self, tmp_path):
        cache, _ = self._compiled_cache(count=1)
        path = tmp_path / "plans.bin"
        cache.dump(str(path))
        assert path.exists()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "plans.bin"]
        assert leftovers == []

    def test_load_rejects_garbage_and_wrong_format(self, tmp_path):
        garbage = tmp_path / "garbage.bin"
        garbage.write_bytes(b"this is not a snapshot")
        cache = PlanCache()
        with pytest.raises(ValueError):
            cache.load(str(garbage))

        wrong = tmp_path / "wrong.bin"
        wrong.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a plan-cache snapshot"):
            cache.load(str(wrong))

        versioned = tmp_path / "versioned.bin"
        versioned.write_bytes(
            pickle.dumps(
                {"format": PlanCache.SNAPSHOT_FORMAT, "version": 99,
                 "artifacts": []}
            )
        )
        with pytest.raises(ValueError, match="version"):
            cache.load(str(versioned))
        assert len(cache) == 0

    def test_torn_plan_payload_is_a_value_error(self, tmp_path):
        # The error contract is ValueError even when the snapshot envelope
        # is fine but a plan payload inside it is torn (or from a build
        # whose classes moved): callers like the CLI catch ValueError, not
        # raw pickle internals.
        cache, _ = self._compiled_cache(count=1)
        artifacts = cache.artifacts()
        torn = PlanArtifact(
            source=artifacts[0].source,
            dtd_fingerprint=artifacts[0].dtd_fingerprint,
            pipeline_config=artifacts[0].pipeline_config,
            payload=artifacts[0].payload[: len(artifacts[0].payload) // 2],
        )
        path = tmp_path / "torn.bin"
        path.write_bytes(
            pickle.dumps(
                {"format": PlanCache.SNAPSHOT_FORMAT,
                 "version": PlanCache.SNAPSHOT_VERSION,
                 "artifacts": [torn]}
            )
        )
        with pytest.raises(ValueError, match="failed to load"):
            PlanCache().load(str(path))

    def test_missing_file_is_an_error_not_an_empty_cache(self, tmp_path):
        cache = PlanCache()
        with pytest.raises(FileNotFoundError):
            cache.load(str(tmp_path / "never-written.bin"))


class TestSnapshotStructureSharing:
    """Version-2 snapshots write one artifact per structure, not per key.

    A fleet of alias registrations interns to one canonical plan in the
    cache; the snapshot must carry that plan exactly once (unique
    artifacts plus ``entries`` alias records), and a load must restore the
    sharing — alias keys hitting the *same* plan object — rather than
    inflating the file and the loaded cache with N copies.
    """

    ALIASES = 4

    def _interned_cache(self):
        cache = PlanCache(capacity=16)
        pipeline = OptimizerPipeline(BIB_DTD_STRONG)
        base = queries_for_workload("bib")[0].xquery
        texts = [alias_query(base, variant) for variant in range(self.ALIASES)]
        for text in texts:
            cache.get_or_compile(text, pipeline)
        assert cache.stats.interned == self.ALIASES - 1
        return cache, pipeline, texts

    def test_dump_writes_shared_plans_exactly_once(self, tmp_path):
        cache, _, texts = self._interned_cache()
        path = str(tmp_path / "plans.bin")
        # dump() reports *artifacts written*: one for four alias entries.
        assert cache.dump(path) == 1
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
        assert snapshot["version"] == PlanCache.SNAPSHOT_VERSION
        assert len(snapshot["artifacts"]) == 1
        assert len(snapshot["entries"]) == len(texts)
        assert {index for _, index in snapshot["entries"]} == {0}

    def test_load_restores_the_sharing(self, tmp_path):
        cache, pipeline, texts = self._interned_cache()
        path = str(tmp_path / "plans.bin")
        cache.dump(path)
        fresh = PlanCache(capacity=16)
        assert fresh.load(path) == len(texts)
        assert fresh.stats.preloaded == len(texts)
        assert len(fresh) == len(texts)
        assert fresh.structure_count() == 1
        plans = []
        for text in texts:
            plan, from_cache = fresh.get_or_compile(text, pipeline)
            assert from_cache
            plans.append(plan)
        # Every alias key answers with the same object — the sharing took
        # the disk round-trip, it was not re-established by interning here.
        assert all(plan is plans[0] for plan in plans)
        assert fresh.stats.interned == 0
        assert fresh.stats.misses == 0

    def test_loaded_alias_plans_evaluate_byte_identically(self, tmp_path):
        cache, _, texts = self._interned_cache()
        path = str(tmp_path / "plans.bin")
        cache.dump(path)
        fresh = PlanCache(capacity=16)
        fresh.load(path)
        document = generate_bibliography(num_books=8, seed=9)
        solo = FluxEngine(BIB_DTD_STRONG).execute(texts[0], document).output
        for text in texts:
            service = QueryService(
                BIB_DTD_STRONG, plan_cache=fresh, execution="inline"
            )
            service.register(text, key="q")
            assert service.run_pass(document)["q"].output == solo
        assert fresh.stats.misses == 0

    def test_version_1_snapshots_still_load(self, tmp_path):
        # A v1 snapshot has artifacts only — one key each, no alias
        # records.  Back-compat: it loads, every artifact on its own key.
        cache, _, texts = self._interned_cache()
        artifacts = cache.artifacts()
        path = tmp_path / "v1.bin"
        path.write_bytes(
            pickle.dumps(
                {"format": PlanCache.SNAPSHOT_FORMAT, "version": 1,
                 "artifacts": [artifacts[0]]}
            )
        )
        fresh = PlanCache()
        assert fresh.load(str(path)) == 1
        assert len(fresh) == 1
        assert fresh.structure_count() == 1
