"""Unit tests for the benchmark harness and reporting."""

import pytest

from repro.bench.harness import BenchmarkHarness, Measurement, OutputMismatchError, run_comparison
from repro.bench.reporting import format_series, format_table, series_by
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.engines.projection_engine import ProjectionEngine
from repro.workloads.dtds import BIB_DTD_STRONG
from repro.workloads.queries import get_query


@pytest.fixture(scope="module")
def engines():
    return {
        "flux": FluxEngine(BIB_DTD_STRONG),
        "projection": ProjectionEngine(BIB_DTD_STRONG),
        "dom": DomEngine(BIB_DTD_STRONG),
    }


class TestHarness:
    def test_run_produces_one_row_per_engine(self, engines, small_bibliography):
        rows = run_comparison(
            engines, get_query("BIB-Q3").xquery, small_bibliography, "Q3", "bib"
        )
        assert len(rows) == 3
        assert {row.engine for row in rows} == {"flux", "projection", "dom"}
        assert all(row.document_bytes == len(small_bibliography) for row in rows)

    def test_flux_wins_on_memory(self, engines, small_bibliography):
        rows = run_comparison(
            engines, get_query("BIB-Q3").xquery, small_bibliography, "Q3", "bib"
        )
        by_engine = {row.engine: row for row in rows}
        assert (
            by_engine["flux"].peak_buffer_bytes
            < by_engine["projection"].peak_buffer_bytes
            < by_engine["dom"].peak_buffer_bytes
        )

    def test_output_mismatch_detected(self, small_bibliography):
        class BrokenEngine(DomEngine):
            name = "broken"

            def execute(self, query, document):
                result = super().execute(query, document)
                result.output += "<!-- tampered -->"
                return result

        harness = BenchmarkHarness({"dom": DomEngine(), "broken": BrokenEngine()})
        with pytest.raises(OutputMismatchError):
            harness.run(get_query("BIB-Q3").xquery, small_bibliography, "Q3", "bib")

    def test_run_matrix(self, engines, small_bibliography):
        harness = BenchmarkHarness(engines)
        rows = harness.run_matrix(
            {"Q3": get_query("BIB-Q3").xquery, "Q4": get_query("BIB-Q4").xquery},
            {"bib-20": small_bibliography},
        )
        assert len(rows) == 6
        assert len(harness.measurements) == 6

    def test_measurement_helpers(self):
        measurement = Measurement(
            engine="flux",
            query="Q3",
            document="bib",
            document_bytes=1000,
            peak_buffer_bytes=100,
            elapsed_seconds=0.5,
            output_bytes=10,
            events_processed=42,
        )
        assert measurement.buffer_fraction == pytest.approx(0.1)
        assert measurement.as_dict()["engine"] == "flux"


class TestReporting:
    @pytest.fixture
    def measurements(self):
        rows = []
        for engine, memory in [("flux", 10), ("projection", 500), ("dom", 2000)]:
            for size in (1000, 2000):
                rows.append(
                    Measurement(
                        engine=engine,
                        query="Q3",
                        document=f"bib-{size}",
                        document_bytes=size,
                        peak_buffer_bytes=memory * size // 1000,
                        elapsed_seconds=0.001 * size,
                        output_bytes=size // 2,
                        events_processed=size,
                    )
                )
        return rows

    def test_format_table_contains_engines_and_values(self, measurements):
        table = format_table(measurements, metric="peak_buffer_bytes", title="memory")
        assert "memory" in table
        assert "flux" in table and "dom" in table
        assert "B" in table

    def test_format_table_unknown_metric_raises(self, measurements):
        with pytest.raises(KeyError):
            format_table(measurements, metric="nonexistent")

    def test_series_by_groups_and_sorts(self, measurements):
        series = series_by(measurements)
        assert set(series) == {"flux", "projection", "dom"}
        assert series["flux"] == sorted(series["flux"])
        assert len(series["flux"]) == 2

    def test_format_series_table(self, measurements):
        text = format_series(measurements, title="scaling")
        assert "scaling" in text
        assert "document_bytes" in text
        assert text.count("\n") >= 3

    def test_time_formatting(self, measurements):
        table = format_table(measurements, metric="elapsed_seconds")
        assert "s" in table
