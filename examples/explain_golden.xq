<results>
{ for $b in $ROOT/bib/book return
  <result> { $b/title } { $b/author } </result> }
</results>
