"""Compare the three engines on the bibliography workload.

Run with::

    python examples/bibliography_comparison.py [num_books]

Runs every catalogued bibliography query (XMP-style Q1–Q6) on a generated
bibliography with the FluX engine, the projection baseline and the DOM
baseline, checks that all three produce identical results, and prints the
memory/runtime comparison tables — a small-scale version of experiments
T1/T2 from EXPERIMENTS.md.
"""

import sys

from repro import DomEngine, FluxEngine, ProjectionEngine
from repro.bench import BenchmarkHarness, format_table
from repro.workloads import BIB_DTD_STRONG, generate_bibliography, queries_for_workload


def main() -> None:
    num_books = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    document = generate_bibliography(num_books=num_books, seed=7)
    print(f"bibliography: {num_books} books, {len(document)} bytes\n")

    engines = {
        "flux": FluxEngine(BIB_DTD_STRONG),
        "projection": ProjectionEngine(BIB_DTD_STRONG),
        "dom": DomEngine(BIB_DTD_STRONG),
    }
    harness = BenchmarkHarness(engines)

    for spec in queries_for_workload("bib"):
        print(f"running {spec.key}: {spec.title}")
        harness.run(spec.xquery, document, spec.key, f"bib-{num_books}")
    print()

    print(format_table(harness.measurements, metric="peak_buffer_bytes",
                       title="peak buffer memory per query"))
    print()
    print(format_table(harness.measurements, metric="elapsed_seconds",
                       title="evaluation runtime per query"))
    print()
    print("(all engines produced identical outputs — the harness verifies this)")


if __name__ == "__main__":
    main()
