"""Quickstart: compile and run an XQuery over a streaming XML document.

Run with::

    python examples/quickstart.py

The example follows the paper's running query (XMP Q3): list the title and
authors of every book, grouped in a ``result`` element.  It shows the three
things a user of the library touches:

1. a DTD (schema information is what enables the optimizer),
2. the :class:`repro.FluxEngine` (compile once, execute over any document),
3. the compiled query's FluX form and buffer requirements.
"""

from repro import FluxEngine
from repro.workloads import BIB_DTD_STRONG, generate_bibliography, get_query


def main() -> None:
    # 1. The schema: Figure 1 of the paper (title precedes authors, a book has
    #    at most one publisher, authors and editors never co-occur).
    dtd = BIB_DTD_STRONG

    # 2. A document.  Any XML string or file object works; here we generate a
    #    small bibliography that conforms to the DTD.
    document = generate_bibliography(num_books=5, seed=42)
    print(f"input document: {len(document)} bytes, 5 books\n")

    # 3. The query: XMP Q3, the paper's running example.
    query = get_query("BIB-Q3").xquery
    print("XQuery:")
    print(query)

    engine = FluxEngine(dtd)
    compiled = engine.compile(query)

    print("FluX query produced by the optimizer:")
    print(compiled.flux_syntax)
    print()
    print("buffer description forest (paths that must be buffered):")
    print(compiled.buffer_description)
    print()

    result = compiled.execute(document)
    print("result (first 300 characters):")
    print(result.output[:300] + ("..." if len(result.output) > 300 else ""))
    print()
    print(f"peak buffered bytes : {result.peak_buffer_bytes}")
    print(f"events processed    : {result.stats.events_processed}")
    print(f"evaluation time     : {result.stats.elapsed_seconds * 1000:.2f} ms")


if __name__ == "__main__":
    main()
