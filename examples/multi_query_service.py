"""Walkthrough: serving many standing queries with one shared document scan.

Run with::

    python examples/multi_query_service.py

The paper's engine evaluates one schema-scheduled query per pass over the
stream.  The multi-query service generalizes that to a serving setup: N
registered queries are executed by one shared scan — one parse, one
validation, one projection filter — with push-based ingestion, so the
document can arrive in arbitrary chunks.  The example shows:

1. registering the whole bibliography query catalogue with a
   :class:`repro.QueryService` (plan-cache misses, then hits),
2. a one-shot shared pass (``run_pass``) and the events it saves versus
   independent engine runs,
3. push-based ingestion (``open_pass`` / ``feed`` / ``finish``) with the
   document arriving in 1 kB chunks,
4. that every result is byte-identical to a solo ``FluxEngine`` run,
5. per-query routing — each query receives only the events *its* profile
   admits, not the fleet union — and the threadless inline scheduler
   (``execution="inline"``) producing the same bytes with zero worker
   threads,
6. the long-lived serving loop (``serve``): one service over a stream of
   documents with a query registered mid-loop, and the same loop driven by
   the asyncio front end (:class:`repro.AsyncQueryService`).
"""

import asyncio

from repro import AsyncQueryService, FluxEngine, QueryService
from repro.workloads import BIB_DTD_STRONG, generate_bibliography
from repro.workloads.queries import queries_for_workload


def main() -> None:
    dtd = BIB_DTD_STRONG
    document = generate_bibliography(num_books=100, seed=42)
    specs = queries_for_workload("bib")
    print(f"document: {len(document)} bytes; standing queries: {len(specs)}\n")

    # 1. Register the catalogue.  Compilation goes through the plan cache,
    #    keyed by (query text, DTD fingerprint): re-registering is free.
    service = QueryService(dtd)
    for spec in specs:
        service.register(spec.xquery, key=spec.key)
    service.register(specs[0].xquery, key="Q1-again")  # cache hit
    cache = service.plan_cache.stats
    print(f"plan cache: {cache.misses} compilations, {cache.hits} hits\n")

    # 2. One shared pass executes every registered plan concurrently.
    results = service.run_pass(document)
    metrics = service.metrics.last_pass
    print("shared pass over one scan:")
    print(f"  parser events          : {metrics.parser_events}")
    print(f"  saved vs. solo runs    : {metrics.events_saved_vs_solo}")
    print(f"  pruned by projection   : {metrics.events_pruned}")
    print(f"  union forwarded        : {metrics.events_forwarded}")
    print(f"  wall time              : {metrics.elapsed_seconds * 1000:.1f} ms\n")
    for key in sorted(results):
        result = results[key]
        routed = metrics.per_query_forwarded.get(key, 0)
        print(f"  [{key:<9}] {len(result.output):>6} B output, "
              f"peak buffer {result.peak_buffer_bytes} B, "
              f"routed {routed}/{metrics.events_forwarded} events")

    # 3. Push-based ingestion: the same pass, document arriving in chunks.
    shared_pass = service.open_pass()
    for start in range(0, len(document), 1024):
        shared_pass.feed(document[start : start + 1024])
    chunked_results = shared_pass.finish()
    assert all(
        chunked_results[key].output == results[key].output for key in results
    )
    print("\npush-based ingestion (1 kB chunks) produced identical results")

    # 4. Byte-identical to solo execution of each query.
    engine = FluxEngine(dtd)
    for spec in specs:
        solo = engine.execute(spec.xquery, document)
        assert results[spec.key].output == solo.output
    print("every shared result is byte-identical to its solo FluxEngine run")

    # 5. The inline scheduler: same pass, no worker threads — the
    #    re-entrant evaluators are round-robined on this very thread.
    import threading

    inline_service = QueryService(dtd, execution="inline")
    for spec in specs:
        inline_service.register(spec.xquery, key=spec.key)
    threads_before = threading.active_count()
    inline_results = inline_service.run_pass(document)
    assert threading.active_count() == threads_before
    assert all(
        inline_results[key].output == results[key].output
        for key in inline_results
    )
    print("inline execution (zero worker threads) produced identical results")

    # 6. The serving loop: one long-lived service, many documents, plans
    #    compiled once; registrations may change between passes.
    stream = [generate_bibliography(num_books=n, seed=n) for n in (20, 30, 40)]
    loop_service = QueryService(dtd, execution="inline")
    loop_service.register(specs[0].xquery, key=specs[0].key)
    for served in loop_service.serve(stream):
        print(f"\nserved document {served.index}: "
              f"{served.metrics.parser_events} events, "
              f"{len(served.results)} queries")
        if served.index == 0:
            loop_service.register(specs[1].xquery, key=specs[1].key)
            print(f"  registered {specs[1].key} mid-loop "
                  "(next pass picks it up)")
    totals = loop_service.metrics
    print(f"serve loop: {totals.passes_completed} passes, "
          f"{loop_service.plan_cache.stats.misses} compilations total")

    # ...and the same loop asyncio-native: coroutine ingestion over the
    # inline scheduler, one await point per chunk, no worker threads.
    async_service = AsyncQueryService(dtd)
    for spec in specs:
        async_service.register(spec.xquery, key=spec.key)

    async def drive():
        outputs = {}
        async for served in async_service.serve(stream):
            outputs[served.index] = served.results
        return outputs

    async_outputs = asyncio.run(drive())
    assert len(async_outputs) == len(stream)
    print("async serve loop produced results for every document")


if __name__ == "__main__":
    main()
