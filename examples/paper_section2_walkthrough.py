"""Walkthrough of Section 2 of the paper: the same XQuery under two DTDs.

Run with::

    python examples/paper_section2_walkthrough.py

The paper's Section 2 develops FluX around one observation: how much an
engine must buffer for XMP Q3 depends entirely on what the DTD guarantees
about the order of a book's children.

* Under the weak DTD ``book (title|author)*`` the titles of a book must be
  output before its authors (XQuery semantics), but the stream may interleave
  them — so the authors of the *current* book are buffered until the book
  closes, and nothing more.
* Under the strong DTD of Figure 1, ``title`` precedes all authors, so both
  can be copied to the output as they arrive; no buffering at all.

This script compiles the query against both DTDs, prints the two FluX
queries (they match the ones shown in the paper), runs them on matching
documents and reports the buffering behaviour.
"""

from repro import DomEngine, FluxEngine, compile_xquery

WEAK_DTD = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
"""

STRONG_DTD = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

#: XMP Q3 exactly as printed in the paper.
QUERY = """
<results>
{ for $b in $ROOT/bib/book return
  <result> { $b/title } { $b/author } </result> }
</results>
"""

#: A document in which authors arrive *before* the title of the first book —
#: valid for the weak DTD only.
WEAK_DOCUMENT = (
    "<bib>"
    "<book><author>Buneman</author><title>Semistructured Data</title>"
    "<author>Suciu</author></book>"
    "<book><title>Streams</title><author>Koch</author></book>"
    "</bib>"
)

#: The same bibliographic content, ordered as Figure 1 requires.
STRONG_DOCUMENT = (
    "<bib>"
    "<book year=\"1999\"><title>Semistructured Data</title>"
    "<author>Buneman</author><author>Suciu</author>"
    "<publisher>MK</publisher><price>40.00</price></book>"
    "<book year=\"2004\"><title>Streams</title><author>Koch</author>"
    "<publisher>VLDB</publisher><price>10.00</price></book>"
    "</bib>"
)


def show(dtd_name: str, dtd: str, document: str) -> None:
    print("=" * 72)
    print(f"DTD: {dtd_name}")
    print("=" * 72)
    compiled = compile_xquery(QUERY, dtd)
    print("FluX translation:")
    print(compiled.flux.to_flux_syntax())
    print()
    print("scheduling:", compiled.scheduling_report.summary())

    engine = FluxEngine(dtd)
    result = engine.execute(QUERY, document)
    reference = DomEngine().execute(QUERY, document)
    print("buffer description forest:")
    print(engine.compile(QUERY).buffer_description)
    print()
    print("output:", result.output)
    print("matches the conventional (DOM) engine:", result.output == reference.output)
    print(f"peak buffered bytes: {result.peak_buffer_bytes} "
          f"(document is {len(document)} bytes; DOM engine buffers "
          f"{reference.peak_buffer_bytes})")
    print()


def main() -> None:
    show("weak — book (title|author)*", WEAK_DTD, WEAK_DOCUMENT)
    show("strong — Figure 1", STRONG_DTD, STRONG_DOCUMENT)
    print(
        "Note how the weak DTD forces an `on-first past(title,author)` handler\n"
        "(the authors of one book are buffered), while the strong DTD's order\n"
        "constraint lets both titles and authors stream straight to the output."
    )


if __name__ == "__main__":
    main()
