"""Streaming queries over an auction site (XMark-style workload).

Run with::

    python examples/auction_stream.py [scale]

The auction DTD orders the document's top-level sections (regions, people,
open auctions, closed auctions), which gives the optimizer cross-section
order constraints.  The script runs three increasingly demanding queries:

* A1 — names of the items on offer: fully streaming, zero buffering;
* A4 — open auctions that already have bidders: bounded per-auction
  buffering (the bidder existence test needs the bidders of the *current*
  auction only);
* A3 — a value join between people and closed auctions: this genuinely needs
  document sections in memory; the buffer description forest shows exactly
  which ones.
"""

import sys

from repro import FluxEngine
from repro.workloads import AUCTION_DTD, generate_auction_site, get_query


def run(engine: FluxEngine, key: str, document: str) -> None:
    spec = get_query(key)
    compiled = engine.compile(spec.xquery)
    result = compiled.execute(document)
    print("=" * 72)
    print(f"{spec.key}: {spec.title}")
    print("-" * 72)
    print("buffer description forest:")
    print(compiled.buffer_description)
    print()
    print(f"peak buffered bytes : {result.peak_buffer_bytes} "
          f"({100.0 * result.peak_buffer_bytes / len(document):.1f}% of the document)")
    print(f"evaluation time     : {result.stats.elapsed_seconds * 1000:.2f} ms")
    preview = result.output[:200]
    print(f"output preview      : {preview}{'...' if len(result.output) > 200 else ''}")
    print()


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    document = generate_auction_site(scale=scale, seed=99)
    print(f"auction site at scale {scale}: {len(document)} bytes\n")
    engine = FluxEngine(AUCTION_DTD)
    for key in ("AUC-A1", "AUC-A4", "AUC-A3"):
        run(engine, key, document)


if __name__ == "__main__":
    main()
