#!/usr/bin/env python3
"""CI smoke test for the observability CLI surface.

Runs ``python -m repro multi`` with ``--metrics-out``, ``--trace-out``
and ``--log-json`` on a small generated bib workload, once through the
plain serve loop and once through the process pool, then validates every
emitted artifact with the same validators the golden tests use
(:mod:`repro.obs.validate`):

* the metrics snapshot parses as JSON and carries the headline families;
* the ``.prom`` twin passes the Prometheus text-exposition validator;
* the trace file is span JSON-lines, one trace id per served document,
  with the pool run's worker-side pass spans joined to parent traces;
* the log file is event JSON-lines with the backend's lifecycle events
  (pass start/finish for the serve loop; register/ship for the pool,
  whose workers keep pass events in-process);
* ``repro stats`` pretty-prints the snapshot and exits 0.

Exits nonzero with a problem listing on any failure.  Run from anywhere:
``python scripts/ci_obs_smoke.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.obs.validate import (  # noqa: E402
    LOG_KEYS,
    TRACE_KEYS,
    validate_json_lines,
    validate_prometheus_text,
)
from repro.workloads.bibgen import generate_bibliography  # noqa: E402
from repro.workloads.dtds import BIB_DTD_STRONG  # noqa: E402
from repro.workloads.queries import queries_for_workload  # noqa: E402

DOCUMENTS = 3


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_cli(argv, problems, label):
    proc = subprocess.run(
        [sys.executable, "-m", "repro"] + argv,
        capture_output=True,
        text=True,
        env=_cli_env(),
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        problems.append(
            f"{label}: exit {proc.returncode}\nstderr:\n{proc.stderr[-2000:]}"
        )
    return proc


def _check_artifacts(base, backend, problems):
    prefix = f"multi[{backend}]"

    metrics_path = os.path.join(base, "metrics.json")
    try:
        with open(metrics_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        problems.append(f"{prefix}: metrics snapshot unreadable: {exc}")
        snapshot = {}
    if snapshot:
        for family in ("repro_passes_total", "repro_stage_duration_seconds"):
            if family not in snapshot:
                problems.append(f"{prefix}: metrics snapshot lacks {family}")
        summary_prefix = "repro_pool" if backend == "processes" else "repro_service"
        if not any(name.startswith(summary_prefix) for name in snapshot):
            problems.append(
                f"{prefix}: metrics snapshot lacks {summary_prefix}_* lifetime totals"
            )

    with open(metrics_path + ".prom", "r", encoding="utf-8") as handle:
        prom_problems = validate_prometheus_text(handle.read())
    problems.extend(f"{prefix}: prom: {p}" for p in prom_problems)

    trace_path = os.path.join(base, "trace.jsonl")
    with open(trace_path, "r", encoding="utf-8") as handle:
        trace_lines = handle.read().splitlines()
    problems.extend(
        f"{prefix}: trace: {p}"
        for p in validate_json_lines(trace_lines, TRACE_KEYS)
    )
    spans = [json.loads(line) for line in trace_lines if line.strip()]
    traces = {}
    for span in spans:
        traces.setdefault(span.get("trace_id"), set()).add(span.get("name"))
    document_traces = [names for names in traces.values() if "pass" in names]
    if len(document_traces) != DOCUMENTS:
        problems.append(
            f"{prefix}: trace: expected {DOCUMENTS} document traces, "
            f"got {len(document_traces)}"
        )
    for names in document_traces:
        if "pass.route" not in names:
            problems.append(
                f"{prefix}: trace: a document trace lacks stage spans: {sorted(names)}"
            )
        if backend == "processes" and "pool.shard" not in names:
            problems.append(
                f"{prefix}: trace: worker-side pass spans did not merge "
                f"under the parent shard trace: {sorted(names)}"
            )

    log_path = os.path.join(base, "log.jsonl")
    with open(log_path, "r", encoding="utf-8") as handle:
        log_lines = handle.read().splitlines()
    problems.extend(
        f"{prefix}: log: {p}" for p in validate_json_lines(log_lines, LOG_KEYS)
    )
    events = {
        json.loads(line).get("event") for line in log_lines if line.strip()
    }
    # Worker-side pass lifecycle events stay in the worker (only spans and
    # metrics are forwarded), so the pool's parent-side log carries the
    # pool lifecycle instead.
    expected = (
        {"pool.register", "pool.ship"}
        if backend == "processes"
        else {"service.register", "pass.start", "pass.finish"}
    )
    missing = expected - events
    if missing:
        problems.append(f"{prefix}: log: lifecycle events missing: {sorted(missing)}")


def main() -> int:
    problems = []
    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as tmp:
        query_dir = os.path.join(tmp, "queries")
        os.makedirs(query_dir)
        for spec in queries_for_workload("bib")[:3]:
            with open(os.path.join(query_dir, f"{spec.key}.xq"), "w",
                      encoding="utf-8") as handle:
                handle.write(spec.xquery)
        dtd_path = os.path.join(tmp, "bib.dtd")
        with open(dtd_path, "w", encoding="utf-8") as handle:
            handle.write(BIB_DTD_STRONG)
        documents = []
        for index in range(DOCUMENTS):
            path = os.path.join(tmp, f"doc{index}.xml")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(generate_bibliography(num_books=20, seed=7 + index))
            documents.append(path)

        for backend in ("serve-loop", "processes"):
            base = os.path.join(tmp, backend)
            os.makedirs(base)
            argv = [
                "multi",
                "--queries", query_dir,
                "--dtd", dtd_path,
                "--documents", *documents,
                "--output-dir", os.path.join(base, "out"),
                "--metrics-out", os.path.join(base, "metrics.json"),
                "--trace-out", os.path.join(base, "trace.jsonl"),
                "--log-json", os.path.join(base, "log.jsonl"),
            ]
            if backend == "processes":
                argv += ["--workers", "2", "--backend", "processes"]
            before = len(problems)
            _run_cli(argv, problems, f"multi[{backend}]")
            if len(problems) == before:
                _check_artifacts(base, backend, problems)
                stats = _run_cli(
                    ["stats", os.path.join(base, "metrics.json")],
                    problems, f"stats[{backend}]",
                )
                if stats.returncode == 0 and "repro_passes_total" not in stats.stdout:
                    problems.append(
                        f"stats[{backend}]: pretty-printed snapshot lacks "
                        "repro_passes_total"
                    )
            print(f"[obs-smoke] {backend}: "
                  + ("FAIL" if len(problems) > before else "ok"))

    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"[obs-smoke] FAILED with {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    print("[obs-smoke] all backends emitted valid metrics, traces, and logs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
