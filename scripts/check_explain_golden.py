#!/usr/bin/env python3
"""Golden-output check for ``repro explain`` (run by the CI docs job).

Renders the analyzer report for ``examples/explain_golden.xq`` against
``examples/explain_golden.dtd`` and byte-compares it with the committed
``examples/explain_golden.explain.txt``.  The report is cut at the
"== Optimizer timings ==" section (wall-clock numbers vary run to run);
everything the docs show — plan DAG, buffer-bound classes, predicted
cost, chosen execution mode — is golden.  The machine-dependent policy
inputs (CPU count, document size/count) are pinned on the command line
so the report is identical on every runner.

Usage:
    python scripts/check_explain_golden.py            # compare (exit 1 on drift)
    python scripts/check_explain_golden.py --update   # rewrite the golden file
"""

import argparse
import difflib
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
QUERY = os.path.join(ROOT, "examples", "explain_golden.xq")
DTD = os.path.join(ROOT, "examples", "explain_golden.dtd")
GOLDEN = os.path.join(ROOT, "examples", "explain_golden.explain.txt")
TIMINGS_MARKER = "== Optimizer timings =="

# Pinned policy inputs: the mode decision must not depend on the runner.
EXPLAIN_ARGS = [
    "--cpus", "2",
    "--document-bytes", str(1 << 20),
    "--document-count", "8",
]


def render() -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "explain", "-q", QUERY, "-d", DTD]
        + EXPLAIN_ARGS,
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        raise SystemExit(f"repro explain exited {completed.returncode}")
    report = completed.stdout
    if TIMINGS_MARKER in report:
        report = report[: report.index(TIMINGS_MARKER)]
    return report.rstrip() + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the golden file"
    )
    args = parser.parse_args()

    report = render()
    if args.update:
        with open(GOLDEN, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {os.path.relpath(GOLDEN, ROOT)}")
        return 0

    try:
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = handle.read()
    except OSError as exc:
        print(f"golden file missing: {exc}", file=sys.stderr)
        return 1
    if report == golden:
        print("explain golden output matches")
        return 0
    sys.stderr.write(
        "".join(
            difflib.unified_diff(
                golden.splitlines(keepends=True),
                report.splitlines(keepends=True),
                fromfile="examples/explain_golden.explain.txt (committed)",
                tofile="repro explain (current)",
            )
        )
    )
    print(
        "explain output drifted from the golden file; regenerate with "
        "`python scripts/check_explain_golden.py --update` and commit the "
        "diff if the change is intended",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
