#!/usr/bin/env python3
"""Check that code references in the repo's documentation resolve.

Documentation rots silently; this keeps the architecture book *and* the
README honest.  Two kinds of backtick-quoted references are checked
against the working tree, in every document, in one run — all broken
references are listed together rather than stopping at the first
offending file:

* **paths** (anything containing ``/`` or ending in ``.py``/``.md``) must
  exist relative to the repository root; bare ``*.py`` filenames may also
  live in ``benchmarks/``, ``scripts/``, or ``tests/``;
* **symbols** (``ClassName.method``-style dotted names, plus a list of
  bare class names the documents lean on) must be defined somewhere under
  ``src/`` — checked textually (``class X`` / ``def y``), so the script
  needs no imports and runs on any Python.  Dotted references that name a
  module (``repro.runtime.plan_cache``) resolve against ``src/`` as a
  module path instead.

Exit status 0 when everything resolves; 1 with a listing otherwise.
Run from the repository root (CI does):  ``python scripts/check_docs_refs.py``.
"""

from __future__ import annotations

import builtins
import os
import re
import sys
from typing import List

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = (
    os.path.join("docs", "ARCHITECTURE.md"),
    "README.md",
)
#: Directories a bare ``something.py`` reference may resolve into.
_SCRIPT_DIRS = ("", "benchmarks", "scripts", "tests")

#: Bare backticked names that must exist as `class <name>` under src/.
_CLASS_LIKE = re.compile(r"^[A-Z][A-Za-z0-9]+$")
#: Lint finding codes (`LD001`): must exist as string literals under src/.
_FINDING_CODE = re.compile(r"^[A-Z]{2}\d{3}$")
#: A finding-code family (`LD0xx`): shorthand, never checked literally.
_CODE_FAMILY = re.compile(r"^[A-Z]{2}\dxx$")
#: Dotted references: `Owner.member` or `pkg.mod.Symbol`.
_DOTTED = re.compile(r"^[A-Za-z_][\w.]*\.[A-Za-z_]\w*$")
#: References that are CLI flags, literals, or prose — never checked.
_SKIP = re.compile(
    r"^(-|--|python |PYTHONPATH|dict$|await |async |fluxrepro\b|repro )"
)
#: Stdlib roots: `time.sleep`-style references are the language's, not ours.
_STDLIB_ROOTS = {"time", "threading", "asyncio", "ast", "tokenize", "io",
                 "os", "sys", "json", "pickle", "re"}


def _source_text() -> str:
    chunks = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(ROOT, "src")):
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                with open(path, "r", encoding="utf-8") as handle:
                    chunks.append(handle.read())
    return "\n".join(chunks)


def _is_path(ref: str) -> bool:
    return ("/" in ref and " " not in ref) or ref.endswith((".py", ".md"))


def _path_resolves(ref: str) -> bool:
    if "*" in ref:
        return True  # glob patterns describe families, not files
    if os.path.exists(os.path.join(ROOT, ref)):
        return True
    if "/" not in ref:
        return any(
            os.path.exists(os.path.join(ROOT, where, ref)) for where in _SCRIPT_DIRS
        )
    return False


def _module_resolves(ref: str) -> bool:
    """``repro.runtime.plan_cache`` → ``src/repro/runtime/plan_cache[.py]``."""
    base = os.path.join(ROOT, "src", *ref.split("."))
    return os.path.isdir(base) or os.path.exists(base + ".py")


def check_document(relpath: str, source: str) -> "tuple[int, List[str]]":
    """Returns (references checked, failure lines) for one document."""
    doc = os.path.join(ROOT, relpath)
    if not os.path.exists(doc):
        return 0, [f"{relpath}: document is missing"]
    with open(doc, "r", encoding="utf-8") as handle:
        text = handle.read()
    failures: List[str] = []
    checked = 0
    for ref in sorted(set(re.findall(r"`([^`\n]+)`", text))):
        ref = ref.strip()
        if not ref or ref.startswith(".") or _SKIP.search(ref):
            continue
        if _CODE_FAMILY.match(ref):
            continue
        if _FINDING_CODE.match(ref):
            checked += 1
            if f'"{ref}"' not in source:
                failures.append(f"{relpath}: finding code not defined under src/: {ref}")
        elif _is_path(ref):
            checked += 1
            if not _path_resolves(ref):
                failures.append(f"{relpath}: path does not exist: {ref}")
        elif _DOTTED.match(ref):
            if ref.split(".", 1)[0] in _STDLIB_ROOTS:
                continue
            checked += 1
            if _module_resolves(ref):
                continue
            # The trailing member must be defined somewhere under src/
            # (method, function, class, or module attribute).
            member = ref.split("(")[0].split(".")[-1]
            if not re.search(
                rf"^\s*(?:class|def|async def)\s+{re.escape(member)}\b"
                rf"|^\s*{re.escape(member)}\s*[:=]"
                rf"|^{re.escape(member)}\s*=",
                source,
                re.MULTILINE,
            ):
                failures.append(f"{relpath}: symbol not found under src/: {ref} ({member})")
        elif _CLASS_LIKE.match(ref):
            if hasattr(builtins, ref):
                continue  # `ValueError` & co. are the language's, not ours
            checked += 1
            if not re.search(rf"^\s*class\s+{re.escape(ref)}\b", source, re.MULTILINE):
                failures.append(f"{relpath}: class not found under src/: {ref}")
    return checked, failures


def main() -> int:
    source = _source_text()
    failures: List[str] = []
    checked = 0
    for relpath in DOCS:
        doc_checked, doc_failures = check_document(relpath, source)
        checked += doc_checked
        failures.extend(doc_failures)
    for failure in failures:
        print(failure, file=sys.stderr)
    print(
        f"checked {checked} references across {len(DOCS)} documents, "
        f"{len(failures)} unresolved"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
