#!/usr/bin/env python3
"""Check that code references in docs/ARCHITECTURE.md resolve.

Documentation rots silently; this keeps the architecture book honest.  Two
kinds of backtick-quoted references are checked against the working tree:

* **paths** (anything containing ``/`` or ending in ``.py``/``.md``) must
  exist relative to the repository root;
* **symbols** (``ClassName.method``-style dotted names, plus a list of
  bare class names the document leans on) must be defined somewhere under
  ``src/`` — checked textually (``class X`` / ``def y``), so the script
  needs no imports and runs on any Python.

Exit status 0 when everything resolves; 1 with a listing otherwise.
Run from the repository root (CI does):  ``python scripts/check_docs_refs.py``.
"""

from __future__ import annotations

import builtins
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC = os.path.join(ROOT, "docs", "ARCHITECTURE.md")

#: Bare backticked names that must exist as `class <name>` under src/.
_CLASS_LIKE = re.compile(r"^[A-Z][A-Za-z0-9]+$")
#: Dotted references: `Owner.member` or `pkg.mod.Symbol`.
_DOTTED = re.compile(r"^[A-Za-z_][\w.]*\.[A-Za-z_]\w*$")
#: References that are CLI flags, literals, or prose — never checked.
_SKIP = re.compile(r"^(-|--|python |PYTHONPATH|dict$|await |async )")


def _source_text() -> str:
    chunks = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(ROOT, "src")):
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                with open(path, "r", encoding="utf-8") as handle:
                    chunks.append(handle.read())
    return "\n".join(chunks)


def _is_path(ref: str) -> bool:
    return ("/" in ref and " " not in ref) or ref.endswith((".py", ".md"))


def main() -> int:
    if not os.path.exists(DOC):
        print(f"missing {DOC}", file=sys.stderr)
        return 1
    with open(DOC, "r", encoding="utf-8") as handle:
        text = handle.read()
    source = _source_text()
    failures = []
    checked = 0
    for ref in sorted(set(re.findall(r"`([^`\n]+)`", text))):
        ref = ref.strip()
        if not ref or _SKIP.search(ref):
            continue
        if _is_path(ref):
            checked += 1
            if not os.path.exists(os.path.join(ROOT, ref)):
                failures.append(f"path does not exist: {ref}")
        elif _DOTTED.match(ref):
            # The trailing member must be defined somewhere under src/
            # (method, function, class, or module attribute).
            member = ref.split("(")[0].split(".")[-1]
            checked += 1
            if not re.search(
                rf"^\s*(?:class|def|async def)\s+{re.escape(member)}\b"
                rf"|^\s*{re.escape(member)}\s*[:=]"
                rf"|^{re.escape(member)}\s*=",
                source,
                re.MULTILINE,
            ):
                failures.append(f"symbol not found under src/: {ref} ({member})")
        elif _CLASS_LIKE.match(ref):
            if hasattr(builtins, ref):
                continue  # `ValueError` & co. are the language's, not ours
            checked += 1
            if not re.search(rf"^\s*class\s+{re.escape(ref)}\b", source, re.MULTILINE):
                failures.append(f"class not found under src/: {ref}")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} references, {len(failures)} unresolved")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
