"""Compatibility shim: the plan cache moved to :mod:`repro.runtime.plan_cache`.

The cache used to live here, in the service layer, while ``FluxEngine`` kept
a private unbounded ``dict`` of compiled plans.  Unifying the two would have
forced an ``engines → service`` import, the wrong direction for the layering
(the service is built *on* the engines' runtime, not under it), so the cache
now lives beside the compiler in ``repro.runtime`` and both layers share it.
This module re-exports the public names so existing imports keep working;
new code should import from :mod:`repro.runtime.plan_cache` directly.
"""

from repro.runtime.plan_cache import (
    DEFAULT_PIPELINE_CONFIG,
    NO_DTD_FINGERPRINT,
    CacheStats,
    PlanCache,
    cache_key,
    dtd_fingerprint,
)

__all__ = [
    "DEFAULT_PIPELINE_CONFIG",
    "NO_DTD_FINGERPRINT",
    "CacheStats",
    "PlanCache",
    "cache_key",
    "dtd_fingerprint",
]
