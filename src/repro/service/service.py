"""The multi-query streaming service.

The paper's engine evaluates *one* schema-scheduled query per document scan.
:class:`QueryService` turns that into a serving architecture: N standing
XQuery registrations cost one parse of the XML stream, not N —

* **register** compiles each query through the shared
  :class:`~repro.core.optimizer.OptimizerPipeline`, behind the LRU
  :class:`~repro.runtime.plan_cache.PlanCache` keyed by
  ``(query text, DTD fingerprint)`` — the same cache type the solo
  :class:`~repro.engines.flux_engine.FluxEngine` compiles through, so a
  cache instance can be shared across engines and services;
* **run_pass / open_pass** execute *all* registered plans in a single
  shared pass over the document: one incremental parser feed, one shared
  validation, a union projection-path index that skips events irrelevant to
  every query once (see :mod:`repro.service.dispatcher`), and one
  push-based FluX runtime per query consuming the fan-out.

Ingestion is push-based and resumable: ``open_pass()`` returns a
:class:`~repro.service.session.SharedPass` whose ``feed(text)`` accepts
document chunks as they arrive (a socket, a file tail, ...) and whose
``finish()`` yields one byte-identical-to-solo
:class:`~repro.engines.base.QueryResult` per query.

The service is *long-lived*: :meth:`QueryService.serve` runs one shared
pass per document of a stream of documents, reusing the registered (and
cached) plans across passes while starting fresh per-query
:class:`~repro.runtime.evaluator.EvaluatorSession` runtimes for each
document.  Registrations may change between passes — each pass snapshots
the registrations current when it opens — and the service guards itself
against overlapping passes: it serves exactly one pass at a time and
:meth:`open_pass` raises :class:`~repro.errors.PassInProgressError` while
one is in flight.

Thread-safety contract: registration (``register``/``unregister``) and pass
execution are designed for a single driving thread; the plan cache below
them is fully thread-safe, so concurrent *compilation* (e.g. registering
the same query from several services sharing a cache) is safe, but one
``QueryService`` instance must not be driven from two threads at once.
"""

from __future__ import annotations

import io
import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.core.optimizer import OptimizerPipeline
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.engines.base import QueryResult
from repro.errors import PassInProgressError
from repro.obs import Observability
from repro.runtime.compiler import CompiledQueryPlan
from repro.runtime.evaluator import EXECUTION_MODES
from repro.runtime.plan_cache import PlanCache, dtd_fingerprint, structure_key
from repro.service.metrics import PassMetrics, ServiceMetrics
from repro.service.session import PlanStructure, RegisteredQuery, SharedPass

#: Default read granularity when a pass ingests a file-like document.
_READ_CHUNK = 1 << 16


class _NullContext:
    """``with`` block placeholder when no profiler is attached."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc_value, traceback):
        return None


_NULL_CONTEXT = _NullContext()


@dataclass
class ServedDocument:
    """One document's outcome inside a serving loop.

    ``index`` is the document's position in the served sequence, ``results``
    maps registration keys to byte-identical-to-solo query results, and
    ``metrics`` is the pass's own accounting (the cumulative totals live on
    :attr:`QueryService.metrics`).

    A :class:`~repro.service.pool.ServicePool` adds two tags: ``worker`` is
    the pool worker that served the document (``None`` when served by a
    plain :meth:`QueryService.serve` loop), and a document that failed
    mid-pass is *fault-isolated* — delivered with ``outcome == "error"``,
    the exception on ``error``, empty ``results``, and the failed pass's
    partial ``metrics`` — instead of exhausting the whole loop.
    :meth:`QueryService.serve` itself never yields error outcomes; it
    aborts and propagates, as documented there.
    """

    index: int
    results: Dict[str, QueryResult]
    metrics: PassMetrics
    #: ``"ok"`` or ``"error"`` (the latter only from a pool's serve loop).
    outcome: str = "ok"
    #: The exception that aborted this document's pass, when ``outcome``
    #: is ``"error"``.
    error: Optional[BaseException] = None
    #: Pool worker id that served the document; ``None`` outside a pool.
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


class QueryService:
    """Shared single-pass execution of many standing XQuery registrations.

    Parameters
    ----------
    dtd:
        The schema of the served documents (a :class:`DTD`, DTD source
        text, or ``None``).  All registered queries are compiled under it.
    validate:
        Whether each pass validates the document against the DTD.  The
        check runs once per pass, in the shared dispatcher, instead of once
        per query as N solo engine runs would.
    plan_cache:
        An existing :class:`PlanCache` to share (e.g. across services
        serving different schemas); by default the service owns a fresh
        cache of ``cache_size`` plans.
    execution:
        How each pass drives its per-query runtimes: ``"threads"`` (one
        worker thread per query behind a bounded channel, the PR 1 model)
        or ``"inline"`` (re-entrant evaluations round-robined on the
        feeding thread — no worker threads, no channel hand-off).
    dedup:
        Whether structurally identical registrations (same
        :func:`~repro.runtime.plan_cache.structure_key`: identical
        computation up to variable renaming and whitespace, same DTD
        fingerprint and pipeline config) share one
        :class:`~repro.service.session.PlanStructure` — evaluated once per
        pass, results fanned out to every subscriber.  Structures are
        refcounted: unregistering (or replacing) one alias never tears
        down a structure another registration still uses.  ``False``
        restores one private structure per registration (the pre-dedup
        cost model), which the fleet bench uses as its baseline.
    obs:
        An optional :class:`~repro.obs.Observability` hub.  With the
        default ``None`` the service runs the pre-instrumentation code
        paths unchanged; with a hub, passes record stage latency
        histograms and counters into its metrics registry, emit spans to
        its tracer, lifecycle events (register/unregister, pass
        start/finish/abort) go to its JSON-lines logger, and its profiler
        (if any) wraps each pass driven by :meth:`run_pass`/:meth:`serve`.
    """

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        validate: bool = True,
        plan_cache: Optional[PlanCache] = None,
        cache_size: int = 128,
        execution: str = "threads",
        obs: Optional[Observability] = None,
        dedup: bool = True,
    ):
        if isinstance(dtd, str):
            dtd = parse_dtd(dtd)
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {execution!r}; expected one of {EXECUTION_MODES}"
            )
        self.dtd = dtd
        self.validate = validate
        self.execution = execution
        self.obs = obs
        self.pipeline = OptimizerPipeline(dtd)
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(cache_size)
        self.dedup = dedup
        self.metrics = ServiceMetrics()
        self._registrations: "Dict[str, RegisteredQuery]" = {}
        #: Live shared structures by structure key (``dedup=True`` only);
        #: entries leave when their last subscriber unregisters.
        self._structures: "Dict[str, PlanStructure]" = {}
        self._counter = 0
        # Weak on purpose: the service must not keep an abandoned pass
        # alive, or its finalizer (which aborts and releases the per-query
        # workers) could never run.
        self._active_pass_ref: Optional["weakref.ref[SharedPass]"] = None

    # ------------------------------------------------------- registration

    def _acquire_structure(self, entry: "CompiledQueryPlan") -> Optional[PlanStructure]:
        """Subscribe one new registration to its shared structure.

        Returns the live :class:`PlanStructure` for ``entry`` (creating it
        on first subscription) with its refcount already incremented, or
        ``None`` with ``dedup=False`` — the registration then builds a
        private structure of its own.
        """
        if not self.dedup:
            return None
        skey = structure_key(entry)
        structure = self._structures.get(skey)
        if structure is None:
            structure = PlanStructure(skey, entry)
            self._structures[skey] = structure
            self.metrics.structures_registered += 1
        else:
            self.metrics.queries_deduped += 1
        structure.refcount += 1
        return structure

    def _release_structure(self, registration: RegisteredQuery) -> None:
        """Drop one registration's subscription; tear down at refcount 0."""
        structure = registration.structure
        structure.refcount -= 1
        if (
            structure.refcount == 0
            and self._structures.get(structure.skey) is structure
        ):
            del self._structures[structure.skey]
            self.metrics.structures_released += 1

    @property
    def structures(self) -> "Dict[str, PlanStructure]":
        """Live shared structures by key (read-only view by convention)."""
        return dict(self._structures)

    def register(self, query: str, key: Optional[str] = None) -> RegisteredQuery:
        """Register a standing query, compiling it through the plan cache.

        ``key`` names the registration (and its results); by default keys
        are ``q1``, ``q2``, ...  Re-registering an existing key replaces
        that query: the displaced registration is counted in
        ``metrics.queries_replaced``, keeping the live-query invariant
        ``queries_registered - queries_unregistered - queries_replaced ==
        len(service)``.  An already-open pass is unaffected — it holds a
        snapshot of the registrations taken when it was opened.
        """
        if key is None:
            self._counter += 1
            key = f"q{self._counter}"
        entry, from_cache = self.plan_cache.get_or_compile(query, self.pipeline)
        registration = RegisteredQuery(
            key,
            entry,
            from_cache=from_cache,
            structure=self._acquire_structure(entry),
            # Echo what this registrant submitted: under plan-cache
            # interning, entry.source may be an alias's spelling.
            source=query,
        )
        displaced = self._registrations.get(key)
        if displaced is not None:
            self.metrics.queries_replaced += 1
            self._release_structure(displaced)
        self._registrations[key] = registration
        self.metrics.queries_registered += 1
        if self.obs is not None:
            self.obs.log("service.register", key=key, from_cache=from_cache)
        return registration

    def register_compiled(
        self,
        entry: "CompiledQueryPlan",
        key: Optional[str] = None,
        source: Optional[str] = None,
    ) -> RegisteredQuery:
        """Register an *already compiled* plan — no cache, no optimizer.

        The receiving half of plan shipping: a
        :class:`~repro.service.process_pool.ProcessServicePool` worker
        reconstructs plans from the artifacts the parent shipped and
        registers them here, so the worker process never parses or
        optimizes a query.  The plan must have been compiled under this
        service's schema — a fingerprint mismatch raises ``ValueError``,
        because a plan bakes its DTD's constraints into scheduling and
        buffering and is *wrong* (not merely suboptimal) under another
        schema.  Also usable anywhere else a compiled plan is already in
        hand (e.g. registering a plan pulled from a warm-started cache).
        """
        fingerprint = dtd_fingerprint(self.dtd)
        entry_fingerprint = dtd_fingerprint(entry.dtd)
        if entry_fingerprint != fingerprint:
            raise ValueError(
                f"compiled plan was built under DTD {entry_fingerprint[:12]}..., "
                f"but this service serves DTD {fingerprint[:12]}..."
            )
        if key is None:
            self._counter += 1
            key = f"q{self._counter}"
        registration = RegisteredQuery(
            key,
            entry,
            from_cache=True,
            structure=self._acquire_structure(entry),
            # A shipped alias carries its registrant's own spelling; the
            # artifact's entry may hold the structure's canonical text.
            source=source,
        )
        displaced = self._registrations.get(key)
        if displaced is not None:
            self.metrics.queries_replaced += 1
            self._release_structure(displaced)
        self._registrations[key] = registration
        self.metrics.queries_registered += 1
        if self.obs is not None:
            self.obs.log("service.register", key=key, shipped=True)
        return registration

    def register_all(self, queries: Iterable[str]) -> List[RegisteredQuery]:
        """Register several queries at once (autogenerated keys)."""
        return [self.register(query) for query in queries]

    def unregister(self, key: str) -> None:
        """Remove a standing query; unknown keys raise ``KeyError``.

        Releases the registration's subscription on its shared structure —
        the structure itself survives while other aliases still hold it.
        """
        registration = self._registrations.pop(key)
        self.metrics.queries_unregistered += 1
        self._release_structure(registration)
        if self.obs is not None:
            self.obs.log("service.unregister", key=key)

    @property
    def registrations(self) -> "Dict[str, RegisteredQuery]":
        """The current registrations, by key (read-only view by convention)."""
        return dict(self._registrations)

    def __len__(self) -> int:
        return len(self._registrations)

    # ---------------------------------------------------------- execution

    @property
    def active_pass(self) -> Optional[SharedPass]:
        """The pass currently in flight, or ``None``.

        The service serves one shared pass at a time: while this is not
        ``None``, :meth:`open_pass` (and therefore :meth:`run_pass` and
        :meth:`serve`) raises :class:`~repro.errors.PassInProgressError`.
        The slot frees itself when the pass finishes or aborts (including
        via its context manager or finalizer), or when an abandoned pass is
        garbage collected.
        """
        if self._active_pass_ref is None:
            return None
        shared_pass = self._active_pass_ref()
        if shared_pass is None:
            self._active_pass_ref = None
        return shared_pass

    def _pass_closed(self, shared_pass: SharedPass) -> None:
        # Callback from the pass's first finish/abort; a pass that failed
        # mid-construction closes too, before it ever occupied the slot.
        if self._active_pass_ref is not None:
            current = self._active_pass_ref()
            if current is shared_pass or current is None:
                self._active_pass_ref = None

    def open_pass(self, chunk_size: int = 256, trace_id: Optional[str] = None) -> SharedPass:
        """Open a push-based shared pass over one document.

        Feed document text with :meth:`SharedPass.feed` as it arrives and
        call :meth:`SharedPass.finish` for the per-query results.  A
        finished pass folds itself into :attr:`metrics`, however it was
        driven.  The pass executes a *snapshot* of the current
        registrations: queries registered, replaced, or unregistered while
        the pass is open do not affect it.

        One pass at a time: opening a second pass while :attr:`active_pass`
        is still in flight raises
        :class:`~repro.errors.PassInProgressError` — finish or abort the
        active pass first.  (The pass owns shared mutable state — parser
        position, per-query sessions — so overlapping passes on one service
        cannot be made safe; open a second service sharing the
        :attr:`plan_cache` to scan two documents concurrently.)
        """
        if self.active_pass is not None:
            raise PassInProgressError(
                "a shared pass is already in flight on this service; "
                "finish() or abort() it before opening another"
            )
        shared_pass = SharedPass(
            list(self._registrations.values()),
            self.dtd,
            self.validate,
            chunk_size=chunk_size,
            on_complete=self.metrics.record_pass,
            execution=self.execution,
            on_close=self._pass_closed,
            obs=self.obs,
            trace_id=trace_id,
        )
        self._active_pass_ref = weakref.ref(shared_pass)
        return shared_pass

    def _feed_document(
        self, shared_pass: SharedPass, document: Union[str, io.TextIOBase]
    ) -> None:
        """Push one whole document (text or file-like) into ``shared_pass``."""
        if isinstance(document, str):
            shared_pass.feed(document)
            return
        while True:
            chunk = document.read(_READ_CHUNK)
            if not chunk:
                break
            shared_pass.feed(chunk)

    def run_pass(self, document: Union[str, io.TextIOBase]) -> Dict[str, QueryResult]:
        """Run all registered queries over ``document`` in one shared scan.

        ``document`` is XML text or a file-like object (read incrementally).
        Returns ``{registration key: QueryResult}``; each result is
        byte-identical to a solo ``FluxEngine.execute`` of that query.
        """
        shared_pass = self.open_pass()
        try:
            with self._maybe_profile():
                self._feed_document(shared_pass, document)
                results = shared_pass.finish()
        except BaseException:
            shared_pass.abort()
            raise
        self._record_observations(shared_pass, results)
        return results

    def _maybe_profile(self):
        """The pass profiler as a context manager, or a no-op without one."""
        if self.obs is not None and self.obs.profiler is not None:
            return self.obs.profiler
        return _NULL_CONTEXT

    def _record_observations(
        self, shared_pass: SharedPass, results: Dict[str, QueryResult]
    ) -> None:
        """Fold one finished pass into the plan cache's observation sidecar.

        One record per plan *structure* (aliases share calibration): the
        representative registration's routed-event count, the pass's
        document size and elapsed time, and the alias group's worst
        measured buffer peak.  These are what
        :func:`repro.analysis.query.cost.apply_observations` uses to
        replace modeled figures with measured ones in ``repro explain``
        and auto mode selection; persisted by ``PlanCache.dump``.
        """
        metrics = shared_pass.metrics
        seen: set = set()
        for registration in shared_pass.registrations:
            skey = registration.structure.skey
            if skey in seen:
                continue
            seen.add(skey)
            result = results.get(registration.key)
            if result is None:
                continue
            self.plan_cache.observe(
                registration.entry,
                events_routed=float(
                    metrics.per_query_forwarded.get(registration.key, 0)
                ),
                document_bytes=float(metrics.document_bytes),
                elapsed_seconds=metrics.elapsed_seconds,
                peak_buffer_bytes=max(
                    results[reg.key].peak_buffer_bytes
                    for reg in shared_pass.registrations
                    if reg.structure.skey == skey and reg.key in results
                ),
            )

    def serve(
        self,
        documents: Iterable[Union[str, io.TextIOBase]],
        chunk_size: int = 256,
    ) -> Iterator[ServedDocument]:
        """Serve a stream of documents: one shared pass per document.

        The long-lived serving loop.  ``documents`` is any iterable of XML
        texts or file-like objects; for each one the service opens a pass
        over the *current* registrations, runs every registered plan (fresh
        per-query runtimes per document; compiled plans are reused from the
        registrations), and yields a :class:`ServedDocument`.  Because this
        is a generator, callers may register, unregister, or replace
        queries between ``next()`` steps — the next document picks up the
        changed registrations, while per-pass metrics and the cumulative
        :attr:`metrics` stay consistent:

        >>> loop = service.serve(documents)            # doctest: +SKIP
        >>> first = next(loop)                         # doctest: +SKIP
        >>> service.register(new_query, key="extra")   # doctest: +SKIP
        >>> second = next(loop)                        # includes "extra"

        Serving an empty service raises ``ValueError`` — checked *before*
        the next document is pulled from the iterator, so the offending
        document is not silently consumed: a caller that catches the error,
        registers a query, and re-``serve``s the same iterator resumes at
        exactly the document that tripped it.  (The check runs at every
        step, so a service emptied mid-loop fails at the next step even if
        the stream happens to be exhausted.)  A document that fails
        mid-pass aborts that pass (releasing its slot and workers) and
        propagates the error; the generator is then exhausted — decide in
        the caller whether to re-``serve`` the remaining documents, or use
        a :class:`~repro.service.pool.ServicePool`, whose serving loop
        isolates the failure instead.  Single-driver like everything on the
        service: drive the generator from one thread.
        """
        iterator = iter(documents)
        index = 0
        while True:
            if not self._registrations:
                raise ValueError(
                    f"serve(): no queries registered when document {index} arrived"
                )
            try:
                document = next(iterator)
            except StopIteration:
                return
            shared_pass = self.open_pass(chunk_size=chunk_size)
            try:
                with self._maybe_profile():
                    self._feed_document(shared_pass, document)
                    results = shared_pass.finish()
            except BaseException:
                shared_pass.abort()
                raise
            self._record_observations(shared_pass, results)
            yield ServedDocument(
                index=index, results=results, metrics=shared_pass.metrics
            )
            index += 1

    # ----------------------------------------------------------- reporting

    def stats_summary(self) -> Dict[str, object]:
        """Service metrics plus plan-cache counters, for logs and benches."""
        summary = self.metrics.as_dict()
        summary["plan_cache"] = self.plan_cache.stats.as_dict()
        summary["plan_cache"]["size"] = len(self.plan_cache)
        return summary
