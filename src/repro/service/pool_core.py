"""The sharding core shared by every service-pool backend.

Three pool backends shard a document stream across N mirrored serving
loops — worker threads (:class:`~repro.service.pool.ServicePool`), asyncio
tasks (:class:`~repro.service.pool.AsyncServicePool`), and worker
*processes* (:class:`~repro.service.process_pool.ProcessServicePool`).
They differ in where the workers run; everything else is the same
architecture, and lives here:

* **one mirrored registration surface** — ``register`` / ``unregister`` /
  ``register_all`` fan a change out to every worker under one key, so each
  worker's snapshot at pass-open time is identical, while compilation cost
  does not fan out: every backend compiles through one shared
  :class:`~repro.runtime.plan_cache.PlanCache` in the *driving* process
  (the process backend then ships the compiled artifacts instead of
  letting workers recompile);
* **the one-serve-loop-at-a-time guard** — a second ``serve`` raises
  ``RuntimeError``, and registrations are rejected while a loop runs
  (mutating N mirrors under a running shard would tear the mirror);
* **delivered-outcome accounting** — ok/failed counters by worker id,
  updated as results are *yielded* (a result drained away by a closed loop
  was never served to anyone), aggregated into
  :class:`~repro.service.metrics.PoolMetrics` together with the backend's
  worker metrics and plan-shipping counters.

:class:`PoolCore` is the backend-agnostic core; :class:`ServiceBackedPool`
specializes it for backends whose workers are in-process service objects
(threads, asyncio).  The process backend extends :class:`PoolCore`
directly — its workers live in other processes, so the parent mirrors
their registrations symbolically and rebuilds their metrics from the
results they ship back.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.obs import Observability
from repro.runtime.plan_cache import PlanCache
from repro.service.metrics import PoolMetrics, ServiceMetrics
from repro.service.session import RegisteredQuery


class PoolCore:
    """Registration mirroring, serve-loop guarding, and outcome accounting.

    Subclasses implement the backend hooks:

    * :meth:`_mirror_register` / :meth:`_mirror_unregister` — apply one
      registration change to every worker mirror;
    * :attr:`registrations` / :meth:`__len__` — the mirrored view;
    * :meth:`_worker_metrics` — one cumulative
      :class:`~repro.service.metrics.ServiceMetrics` per worker slot, for
      aggregation;
    * optionally :meth:`_ship_stats` — cumulative ``(count, bytes)`` of
      plan artifacts shipped to workers (zero for in-process backends).
    """

    def __init__(self, dtd: Union[DTD, str, None], workers: int,
                 plan_cache: Optional[PlanCache], cache_size: int,
                 obs: Optional[Observability] = None):
        if workers < 1:
            raise ValueError("a service pool needs at least one worker")
        if isinstance(dtd, str):
            dtd = parse_dtd(dtd)
        self.dtd = dtd
        #: Optional observability hub.  The pool logs its own lifecycle
        #: (register/unregister, fault isolation, respawns) and emits
        #: shard-level spans; pass-level instrumentation happens wherever
        #: the backend actually runs its passes.
        self.obs = obs
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(cache_size)
        self._counter = 0
        self._serving = False
        # Delivered-outcome counters by worker id, cumulative across
        # loops; updated as results are *yielded* (a result drained away
        # by a closed loop was never served to anyone).
        self._documents_ok: Dict[int, int] = {}
        self._documents_failed: Dict[int, int] = {}
        self._counter_lock = threading.Lock()

    # ---------------------------------------------------------- back hooks

    def _mirror_register(self, query: str, key: str) -> RegisteredQuery:
        """Register ``query`` under ``key`` on every worker mirror."""
        raise NotImplementedError

    def _mirror_unregister(self, key: str) -> None:
        """Remove ``key`` from every worker mirror (``key`` exists)."""
        raise NotImplementedError

    def _worker_metrics(self) -> List[ServiceMetrics]:
        """One cumulative service-metrics snapshot per worker slot."""
        raise NotImplementedError

    def _ship_stats(self) -> Tuple[int, int]:
        """Cumulative ``(artifacts shipped, payload bytes shipped)``."""
        return (0, 0)

    @property
    def registrations(self) -> Dict[str, RegisteredQuery]:
        """The mirrored registrations, by key."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.registrations)

    @property
    def workers(self) -> int:
        """Pool size — how many documents may be in flight at once."""
        return len(self._worker_metrics())

    # ------------------------------------------------------- registration

    def _check_mutable(self) -> None:
        if self._serving:
            raise RuntimeError(
                "cannot change pool registrations while a serve loop is "
                "running; finish (or close) the loop first"
            )

    def register(self, query: str, key: Optional[str] = None) -> RegisteredQuery:
        """Register ``query`` on every worker under one ``key``.

        Compiled once through the shared cache; the returned
        :class:`RegisteredQuery` is the first mirror's (all mirrors share
        the same compiled plan entry).  Raises ``RuntimeError`` while a
        serve loop is running.
        """
        self._check_mutable()
        if key is None:
            self._counter += 1
            key = f"q{self._counter}"
        registration = self._mirror_register(query, key)
        if self.obs is not None:
            self.obs.log(
                "pool.register", key=key, from_cache=registration.from_cache
            )
        return registration

    def register_all(self, queries: Iterable[str]) -> List[RegisteredQuery]:
        """Register several queries at once (autogenerated keys)."""
        return [self.register(query) for query in queries]

    def unregister(self, key: str) -> None:
        """Remove a standing query from every worker; unknown keys raise
        ``KeyError``.  Raises ``RuntimeError`` while a serve loop is
        running."""
        self._check_mutable()
        if key not in self.registrations:
            raise KeyError(key)
        self._mirror_unregister(key)
        if self.obs is not None:
            self.obs.log("pool.unregister", key=key)

    # -------------------------------------------------- serve-loop guards

    def _begin_serving(self) -> None:
        if self._serving:
            raise RuntimeError(
                "a serve loop is already running on this pool; one shard "
                "at a time — finish (or close) it before starting another"
            )
        if not len(self):
            raise ValueError("serve(): no queries registered on the pool")
        self._serving = True

    def _end_serving(self) -> None:
        self._serving = False

    def _record_outcome(self, worker_id: int, ok: bool) -> None:
        with self._counter_lock:
            counters = self._documents_ok if ok else self._documents_failed
            counters[worker_id] = counters.get(worker_id, 0) + 1

    # ----------------------------------------------------------- reporting

    @property
    def metrics(self) -> PoolMetrics:
        """A fresh aggregate of the workers' cumulative metrics."""
        with self._counter_lock:
            ok = dict(self._documents_ok)
            failed = dict(self._documents_failed)
        ship_count, ship_bytes = self._ship_stats()
        return PoolMetrics.aggregate(
            self._worker_metrics(), ok, failed,
            ship_count=ship_count, ship_bytes=ship_bytes,
        )

    def stats_summary(self) -> Dict[str, object]:
        """Pool metrics plus shared plan-cache counters, for logs/benches."""
        summary = self.metrics.as_dict()
        summary["plan_cache"] = self.plan_cache.stats.as_dict()
        summary["plan_cache"]["size"] = len(self.plan_cache)
        return summary


class ServiceBackedPool(PoolCore):
    """A pool whose worker mirrors are in-process service objects.

    The thread and asyncio backends put N ``QueryService`` /
    ``AsyncQueryService`` instances in ``self._services``; the mirrored
    registration surface fans out to them directly, and their live
    ``metrics`` objects are the aggregation source.
    """

    def __init__(self, dtd: Union[DTD, str, None], workers: int,
                 plan_cache: Optional[PlanCache], cache_size: int,
                 obs: Optional[Observability] = None):
        super().__init__(dtd, workers, plan_cache, cache_size, obs=obs)
        self._services: List = []  # filled by the subclass

    def _mirror_register(self, query: str, key: str) -> RegisteredQuery:
        registrations = [
            service.register(query, key=key) for service in self._services
        ]
        return registrations[0]

    def _mirror_unregister(self, key: str) -> None:
        for service in self._services:
            service.unregister(key)

    def _worker_metrics(self) -> List[ServiceMetrics]:
        return [service.metrics for service in self._services]

    @property
    def registrations(self) -> Dict[str, RegisteredQuery]:
        """The mirrored registrations, by key (worker 0's view)."""
        return self._services[0].registrations

    def __len__(self) -> int:
        return len(self._services[0])

    @property
    def workers(self) -> int:
        return len(self._services)

    @property
    def services(self) -> List:
        """The worker services (read-only by convention; for inspection)."""
        return list(self._services)
