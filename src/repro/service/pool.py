"""Fault-isolated service pool: N serving loops, one plan cache.

A single :class:`~repro.service.service.QueryService` serves one shared
pass at a time — the pass owns the parser position and the per-query
sessions, so overlapping two documents on one service cannot be made safe
(:class:`~repro.errors.PassInProgressError` makes the constraint explicit).
:class:`ServicePool` hides it: the pool owns N worker ``QueryService``
instances that *mirror* each other's registrations and share one
:class:`~repro.runtime.plan_cache.PlanCache`, so

* **compilation is paid once per distinct query across the whole pool** —
  the first worker's registration misses and compiles, the remaining
  mirrors hit (or, registering concurrently, coalesce onto the leader's
  single-flight compilation; the cache's ``misses`` counter equals
  optimizer runs either way);
* **documents overlap**: :meth:`ServicePool.serve` shards the document
  stream across the workers — each worker thread pulls the next document
  from the shared source, runs its own pass, and the pool yields
  :class:`~repro.service.service.ServedDocument` results *as they
  complete*, tagged with the worker id and the document's source ``index``
  (completion order is not source order; sort by ``index`` if you need it);
* **failures are isolated**: a document that fails mid-pass aborts only
  its own worker's pass and is delivered as an error-tagged
  ``ServedDocument`` (``outcome == "error"``, the exception on ``error``),
  while every other document — including later ones on the same worker —
  is served normally, byte-identical to a solo run.  This fixes the
  all-or-nothing serving loop: ``QueryService.serve()`` aborts and
  propagates on the first bad document.

Under CPython's GIL the worker threads interleave rather than parallelize
CPU-bound evaluation; what the pool buys on one core is *ingestion
overlap* — while one worker waits on a slow document source (a socket, a
file tail, an upload), the others keep evaluating.  The S4 benchmark
(``benchmarks/bench_s4_pool_scaling.py``) measures both regimes honestly.
For CPU-bound streams that need hardware parallelism, the same
architecture is available over worker *processes*:
:class:`~repro.service.process_pool.ProcessServicePool` ships the compiled
plans to the workers instead of sharing them (see S5).

:class:`AsyncServicePool` is the same architecture for one event loop: N
:class:`~repro.service.async_service.AsyncQueryService` workers driven by
coroutine tasks, sharding a plain or async document iterable, each
document itself optionally an async chunk feed.

Concurrency contract: one serve loop at a time per pool (a second
``serve`` raises ``RuntimeError``), and registration (``register`` /
``unregister``) is single-driver *and* rejected while a serve loop is
running — the workers snapshot registrations when their passes open, and
mutating N mirrored services under a running loop would tear the mirror.
Register between loops (or before the first).  The serve loop is
backpressured: the result queue is bounded to the worker count, so a slow
consumer pauses the shard instead of buffering an unbounded stream's
results.  The plan cache below remains fully thread-safe and may be
shared with further pools, services, and engines.
"""

from __future__ import annotations

import asyncio
import io
import queue
import threading
import time
from typing import Iterable, Iterator, List, Optional, Union

from repro.dtd.schema import DTD
from repro.obs import Observability, new_trace_id
from repro.runtime.plan_cache import PlanCache
from repro.service.async_service import AsyncQueryService, _iter_documents
from repro.service.pool_core import ServiceBackedPool
from repro.service.service import QueryService, ServedDocument


class ServicePool(ServiceBackedPool):
    """N mirrored :class:`QueryService` workers sharding a document stream.

    Parameters
    ----------
    dtd:
        Schema shared by all workers (a :class:`DTD`, DTD text, or
        ``None``), parsed once.
    workers:
        Pool size — how many documents may be in flight at once.
    validate / execution:
        Forwarded to every worker ``QueryService`` (``execution`` picks how
        each worker drives its per-query runtimes: ``"threads"`` or
        ``"inline"``; the pool's own sharding threads are separate).
    plan_cache:
        An existing cache to share; by default the pool owns one cache of
        ``cache_size`` plans that all its workers compile through.

    Use :meth:`register` / :meth:`unregister` / :meth:`register_all`
    between serve loops, then :meth:`serve` to shard a stream.  The pool's
    cumulative accounting is :attr:`metrics` (a fresh
    :class:`~repro.service.metrics.PoolMetrics` aggregate per read);
    :meth:`stats_summary` adds the shared plan-cache counters.
    """

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        workers: int = 2,
        validate: bool = True,
        plan_cache: Optional[PlanCache] = None,
        cache_size: int = 128,
        execution: str = "threads",
        obs: Optional[Observability] = None,
    ):
        super().__init__(dtd, workers, plan_cache, cache_size, obs=obs)
        self.execution = execution
        worker_obs = obs.for_pool_worker() if obs is not None else None
        self._services = [
            QueryService(
                self.dtd,
                validate=validate,
                plan_cache=self.plan_cache,
                execution=execution,
                obs=worker_obs,
            )
            for _ in range(workers)
        ]

    def serve(
        self,
        documents: Iterable[Union[str, io.TextIOBase]],
        chunk_size: int = 256,
    ) -> Iterator[ServedDocument]:
        """Shard ``documents`` across the workers; yield results as they
        complete.

        Each worker thread repeatedly pulls the next document from the
        shared iterator (so a lazy source is consumed on demand) and runs
        one pass on its own service; the pool yields one
        :class:`ServedDocument` per document — tagged with ``worker`` and
        source ``index``, in *completion* order.  The result queue is
        bounded to the worker count, so a consumer slower than the shard
        pauses the workers (at most ``2 × workers`` documents are pulled
        beyond what the consumer has taken) instead of buffering an
        unbounded stream's results.

        **Fault isolation**: a document whose pass fails (malformed XML,
        validation, evaluation) is delivered as ``outcome == "error"``
        with the exception on ``error`` and the failed pass's partial
        metrics; the worker's pass slot is released by the abort, so the
        same worker accepts the next document.  Only an error raised by
        the *source iterator itself* (or a non-``Exception`` like
        ``KeyboardInterrupt``) propagates and ends the loop.

        Serving an empty pool raises ``ValueError`` before any document is
        pulled; a second ``serve`` while one is running raises
        ``RuntimeError``.  Closing the generator early stops the shard
        (workers finish their in-flight passes, then exit).  Registration
        changes are rejected while the loop runs.
        """
        source = enumerate(documents)  # before the guard: a bad argument
        self._begin_serving()          # must not lock the pool forever
        source_lock = threading.Lock()
        # Bounded: workers block here when the consumer lags (backpressure).
        output: "queue.Queue" = queue.Queue(maxsize=len(self._services))
        stop = threading.Event()

        def worker_loop(worker_id: int, service: QueryService) -> None:
            try:
                while not stop.is_set():
                    with source_lock:
                        try:
                            index, document = next(source)
                        except StopIteration:
                            break
                        except BaseException as exc:  # the source itself failed
                            output.put(("fatal", exc))
                            return
                    try:
                        served = self._serve_one(
                            service, worker_id, index, document, chunk_size
                        )
                    except BaseException as exc:  # non-Exception: propagate
                        output.put(("fatal", exc))
                        return
                    output.put(("served", served))
            finally:
                output.put(("done", worker_id))

        threads: List[threading.Thread] = []
        try:
            for worker_id, service in enumerate(self._services):
                thread = threading.Thread(
                    target=worker_loop,
                    args=(worker_id, service),
                    name=f"pool-worker-{worker_id}",
                    daemon=True,
                )
                threads.append(thread)
                thread.start()
            done = 0
            while done < len(threads):
                kind, payload = output.get()
                if kind == "done":
                    done += 1
                elif kind == "served":
                    # Counted at delivery, not completion: results a closed
                    # loop drains away were never served to anyone.
                    self._record_outcome(payload.worker, payload.ok)
                    yield payload
                else:  # "fatal"
                    raise payload
        finally:
            stop.set()
            # Keep draining while workers wind down: one may be blocked on
            # the bounded queue, and join() before its put() would deadlock.
            while any(thread.is_alive() for thread in threads):
                try:
                    output.get_nowait()
                except queue.Empty:
                    time.sleep(0.001)
            for thread in threads:
                thread.join()
            self._end_serving()

    def _serve_one(
        self,
        service: QueryService,
        worker_id: int,
        index: int,
        document: Union[str, io.TextIOBase],
        chunk_size: int,
    ) -> ServedDocument:
        """One worker pass over one document, fault-isolated.

        An ``Exception`` mid-pass aborts that pass (releasing the worker's
        slot and its per-query sessions) and is folded into an error-tagged
        :class:`ServedDocument`; anything harsher propagates to the caller.

        With tracing on, the whole shard — pass included — runs under one
        trace id minted here, and a ``pool.shard`` span brackets the
        worker's pass span; a fault-isolated failure is logged as
        ``pool.fault`` with the same trace id.
        """
        obs = self.obs
        tracing = obs is not None and obs.tracer is not None
        trace_id = new_trace_id() if tracing else None
        shard_span = (
            obs.tracer.span(
                "pool.shard", trace_id=trace_id, worker=worker_id, index=index
            )
            if tracing
            else None
        )
        try:
            shared_pass = service.open_pass(chunk_size=chunk_size, trace_id=trace_id)
            try:
                service._feed_document(shared_pass, document)
                results = shared_pass.finish()
            except Exception as exc:
                shared_pass.abort()
                # Drop the traceback: its frames pin the document text and
                # the aborted pass graph for the outcome's lifetime, and a
                # serving loop may accumulate many error outcomes.
                exc.__traceback__ = None
                if obs is not None:
                    obs.log(
                        "pool.fault",
                        worker=worker_id,
                        index=index,
                        error=type(exc).__name__,
                        trace_id=trace_id,
                    )
                if shard_span is not None:
                    shard_span.set(outcome="error")
                return ServedDocument(
                    index=index,
                    results={},
                    metrics=shared_pass.metrics,
                    outcome="error",
                    error=exc,
                    worker=worker_id,
                )
            except BaseException:
                shared_pass.abort()
                raise
            return ServedDocument(
                index=index,
                results=results,
                metrics=shared_pass.metrics,
                worker=worker_id,
            )
        finally:
            if shard_span is not None:
                shard_span.finish()


class AsyncServicePool(ServiceBackedPool):
    """The service pool on one event loop: N coroutine-driven workers.

    Mirrors :class:`ServicePool` — shared plan cache, mirrored
    registrations, fault-isolated sharded ``serve`` — with
    :class:`AsyncQueryService` workers and asyncio tasks instead of
    threads.  This is cooperative concurrency: CPU-bound evaluation still
    runs one chunk at a time on the loop's thread, but slow *delivery*
    (async document sources, per-document async chunk feeds) overlaps
    across the workers, which is exactly the serving-scenario win.

    ``documents`` may be a plain or async iterable; each document may be
    XML text, a synchronous file-like object, or an async iterable of text
    chunks (a connection).  All methods must be called from the event
    loop's thread; ``register``/``unregister`` between serve loops only.
    """

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        workers: int = 2,
        validate: bool = True,
        plan_cache: Optional[PlanCache] = None,
        cache_size: int = 128,
        obs: Optional[Observability] = None,
    ):
        super().__init__(dtd, workers, plan_cache, cache_size, obs=obs)
        worker_obs = obs.for_pool_worker() if obs is not None else None
        self._services = [
            AsyncQueryService(
                self.dtd,
                validate=validate,
                plan_cache=self.plan_cache,
                obs=worker_obs,
            )
            for _ in range(workers)
        ]

    async def serve(self, documents, chunk_size: int = 256):
        """Shard a (plain or async) document iterable across the workers.

        The async rendering of :meth:`ServicePool.serve`, with the same
        contract: results yielded as they complete, tagged with ``worker``
        and source ``index``; a failing document fault-isolated into an
        error-tagged :class:`ServedDocument`; an error from the source
        itself propagating; a bounded result queue pausing the workers
        when the consumer lags; one loop at a time (``RuntimeError``).
        """
        self._begin_serving()
        source = _iter_documents(documents)
        source_lock = asyncio.Lock()
        output: "asyncio.Queue" = asyncio.Queue(maxsize=len(self._services))
        next_index = [0]

        async def worker_loop(worker_id: int, service: AsyncQueryService) -> None:
            # Protocol: ("served", ...) per document, then exactly one
            # terminal message — "done" (source exhausted) or "fatal"
            # (source error / non-Exception from a pass).  A cancelled
            # worker sends nothing: the consumer is gone, and awaiting the
            # bounded queue during cancellation would deadlock the
            # shutdown gather.
            terminal = ("done", worker_id)
            while True:
                async with source_lock:
                    try:
                        document = await source.__anext__()
                    except StopAsyncIteration:
                        break
                    except asyncio.CancelledError:
                        raise
                    except BaseException as exc:  # the source failed
                        terminal = ("fatal", exc)
                        break
                    index = next_index[0]
                    next_index[0] += 1
                try:
                    served = await self._serve_one(
                        service, worker_id, index, document, chunk_size
                    )
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # non-Exception from a pass
                    terminal = ("fatal", exc)
                    break
                await output.put(("served", served))
            await output.put(terminal)

        tasks: List["asyncio.Task"] = []
        try:
            tasks = [
                asyncio.ensure_future(worker_loop(worker_id, service))
                for worker_id, service in enumerate(self._services)
            ]
            done = 0
            while done < len(tasks):
                kind, payload = await output.get()
                if kind == "done":
                    done += 1
                elif kind == "served":
                    # Counted at delivery, like the thread pool.
                    self._record_outcome(payload.worker, payload.ok)
                    yield payload
                else:  # "fatal"
                    raise payload
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            self._end_serving()

    async def _serve_one(
        self,
        service: AsyncQueryService,
        worker_id: int,
        index: int,
        document,
        chunk_size: int,
    ) -> ServedDocument:
        obs = self.obs
        tracing = obs is not None and obs.tracer is not None
        trace_id = new_trace_id() if tracing else None
        shard_span = (
            obs.tracer.span(
                "pool.shard", trace_id=trace_id, worker=worker_id, index=index
            )
            if tracing
            else None
        )
        try:
            shared_pass = service.open_pass(chunk_size=chunk_size, trace_id=trace_id)
            try:
                await service._feed_document(shared_pass, document)
                results = await shared_pass.finish()
            except Exception as exc:
                shared_pass.abort()
                # Drop the traceback: its frames pin the document text and
                # the aborted pass graph for the outcome's lifetime, and a
                # serving loop may accumulate many error outcomes.
                exc.__traceback__ = None
                if obs is not None:
                    obs.log(
                        "pool.fault",
                        worker=worker_id,
                        index=index,
                        error=type(exc).__name__,
                        trace_id=trace_id,
                    )
                if shard_span is not None:
                    shard_span.set(outcome="error")
                return ServedDocument(
                    index=index,
                    results={},
                    metrics=shared_pass.metrics,
                    outcome="error",
                    error=exc,
                    worker=worker_id,
                )
            except BaseException:
                shared_pass.abort()
                raise
            return ServedDocument(
                index=index,
                results=results,
                metrics=shared_pass.metrics,
                worker=worker_id,
            )
        finally:
            if shard_span is not None:
                shard_span.finish()
