"""Shared single-pass event dispatch for many compiled plans.

One :class:`~repro.xmlstream.parser.StreamingXMLParser` feed is fanned out
to N per-query FluX runtimes.  The dispatcher's job is to make the shared
scan cheaper than N independent scans *without changing any query's output
by a single byte*.  It does so with a **shared projection-path index**: the
union, over all registered queries, of

* the projection tree of the query (as in the projection baseline engine:
  every document-rooted path the query's paths can touch, with
  ``keep_subtree`` marking value uses), and
* plan-level interest extracted from the physical plan — handler dispatch
  labels, BDF buffer labels, whole-element buffering, stream-copied
  variables — and the element types carrying registered XSAX ``on-first``
  conditions.

Events are then filtered *once*, before fan-out:

* character data in regions no query's buffers or copies can observe is
  dropped;
* a whole element subtree is pruned when (a) it matches no node of the
  union projection tree, (b) its name is not interesting to any plan, and
  (c) its **parent's element type has no registered on-first condition in
  any plan**.

Rule (c) is what keeps pruning semantics-preserving: XSAX decides when an
``on-first past(...)`` event fires by stepping the parent's content-model
automaton on every child start tag, and the evaluator's output order depends
on exactly where those events appear in the stream.  Children of
condition-bearing elements are therefore always forwarded, even when
irrelevant to every query's data needs.  For elements without conditions,
delaying an always-satisfied handler from the arrival of a pruned child to
the next forwarded event cannot reorder output of *safe* FluX queries (the
safety check guarantees an on-first handler cannot fire while an
earlier-indexed handler still expects children), so pruning is invisible.

Per-query validation is disabled inside a shared pass; the dispatcher
validates the *unfiltered* stream once (``validate=True`` on the service),
which preserves the error behaviour of solo runs at a fifth of the cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.dtd.validator import StreamingValidator
from repro.engines.projection_engine import ProjectionNode, projection_paths
from repro.runtime.compiler import CompiledQueryPlan
from repro.runtime.plan import (
    CopyVarOp,
    OnHandlerOp,
    PlanOp,
    ProcessStreamOp,
)
from repro.service.metrics import PassMetrics
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xquery.analysis import WHOLE_SUBTREE


def _walk(op: PlanOp) -> Iterable[PlanOp]:
    yield op
    for child in op.children():
        for descendant in _walk(child):
            yield descendant


class PlanProfile:
    """Event interest of one compiled plan, derived statically.

    ``keep_names``: element names whose whole subtree (children *and* text)
    the runtime may materialize or copy — buffered labels, whole-buffered
    scope types, and stream-copied handler labels.
    ``interesting_names``: names that must reach the runtime (handler
    dispatch labels, scope element types, all of ``keep_names``).
    ``condition_types``: element types with registered on-first conditions.
    ``keep_everything``: conservative escape hatch — the plan copies a
    binding the walk cannot attribute to a label (e.g. ``$ROOT`` itself),
    so nothing may be filtered for it.
    """

    def __init__(self, entry: CompiledQueryPlan):
        self.entry = entry
        self.keep_names: Set[str] = set()
        self.interesting_names: Set[str] = set()
        self.condition_types: Set[str] = set(entry.plan.conditions.element_types())
        self.keep_everything = False
        self.projection: ProjectionNode = projection_paths(entry.optimized.parsed)

        bindings: Dict[str, Set[str]] = {}
        ops = list(_walk(entry.plan.root))
        for op in ops:
            if isinstance(op, OnHandlerOp):
                bindings.setdefault(op.var, set()).add(op.label)
        for op in ops:
            if isinstance(op, ProcessStreamOp):
                self.interesting_names.add(op.element_type)
                self.interesting_names.update(op.on_index)
                for label in op.buffer_labels:
                    if label == WHOLE_SUBTREE:
                        self.keep_everything = True
                    else:
                        self.keep_names.add(label)
                if op.buffer_whole:
                    self.keep_names.add(op.element_type)
            elif isinstance(op, CopyVarOp):
                labels = bindings.get(op.var)
                if labels:
                    self.keep_names.update(labels)
                else:
                    # Copy of the document ($ROOT) or of a binding outside
                    # this walk's label attribution: keep the entire stream.
                    self.keep_everything = True
        self.interesting_names.update(self.keep_names)


class _Frame:
    """Per-open-element state of the shared filter."""

    __slots__ = ("name", "matched", "kept")

    def __init__(self, name: str, matched: List[ProjectionNode], kept: bool):
        self.name = name
        self.matched = matched
        self.kept = kept


def _merge_projection(target: ProjectionNode, source: ProjectionNode) -> None:
    target.keep_subtree = target.keep_subtree or source.keep_subtree
    for label, child in source.children.items():
        _merge_projection(target.child(label), child)


def _projection_names(node: ProjectionNode, into: Set[str]) -> None:
    for label, child in node.children.items():
        into.add(label)
        _projection_names(child, into)


class SharedProjectionIndex:
    """Union interest of all registered plans, applied as an event filter.

    :meth:`admit` is a push-based stack machine over the single parsed
    stream: it returns ``True`` when the event must be fanned out to the
    per-query runtimes and ``False`` when it is skipped *once* for all of
    them, recording the savings in the pass metrics.
    """

    def __init__(self, profiles: Iterable[PlanProfile], metrics: Optional[PassMetrics] = None):
        profiles = list(profiles)
        self.metrics = metrics if metrics is not None else PassMetrics()
        self.projection = ProjectionNode()
        self.keep_names: Set[str] = set()
        self.interesting_names: Set[str] = set()
        self.condition_types: Set[str] = set()
        self.keep_everything = not profiles
        for profile in profiles:
            _merge_projection(self.projection, profile.projection)
            self.keep_names |= profile.keep_names
            self.interesting_names |= profile.interesting_names
            self.condition_types |= profile.condition_types
            self.keep_everything = self.keep_everything or profile.keep_everything
        _projection_names(self.projection, self.interesting_names)
        self._stack: List[_Frame] = []
        self._skip_depth = 0

    # ------------------------------------------------------------- filter

    def admit(self, event: Event) -> bool:
        """Whether ``event`` must be forwarded to the registered queries."""
        metrics = self.metrics
        metrics.parser_events += 1
        if self._skip_depth:
            metrics.events_pruned += 1
            if isinstance(event, StartElement):
                self._skip_depth += 1
            elif isinstance(event, EndElement):
                self._skip_depth -= 1
            return False
        if isinstance(event, StartElement):
            return self._admit_start(event)
        if isinstance(event, EndElement):
            if self._stack:
                self._stack.pop()
            metrics.events_forwarded += 1
            return True
        if isinstance(event, Text):
            if self.keep_everything or (self._stack and self._stack[-1].kept):
                metrics.events_forwarded += 1
                return True
            metrics.text_events_dropped += 1
            return False
        # StartDocument / EndDocument always reach every runtime.
        metrics.events_forwarded += 1
        return True

    def _admit_start(self, event: StartElement) -> bool:
        name = event.name
        if not self._stack:
            # The document root: the spine of every document-rooted path.
            node = self.projection.children.get(name)
            matched = [node] if node is not None else []
            kept = (
                self.keep_everything
                or self.projection.keep_subtree
                or name in self.keep_names
                or (node is not None and node.keep_subtree)
            )
            self._stack.append(_Frame(name, matched, kept))
            self.metrics.events_forwarded += 1
            return True
        parent = self._stack[-1]
        kept = self.keep_everything or parent.kept or name in self.keep_names
        matched: List[ProjectionNode] = []
        for node in parent.matched:
            child = node.children.get(name)
            if child is not None:
                matched.append(child)
                kept = kept or child.keep_subtree
        if (
            kept
            or matched
            or name in self.interesting_names
            or parent.name in self.condition_types
        ):
            self._stack.append(_Frame(name, matched, kept))
            self.metrics.events_forwarded += 1
            return True
        # Irrelevant to every query and invisible to every condition:
        # prune the whole subtree once, for all runtimes.
        self._skip_depth = 1
        self.metrics.subtrees_pruned += 1
        self.metrics.events_pruned += 1
        return False


class SharedDispatcher:
    """Filters one parsed event stream and fans it out to query sessions.

    The dispatcher owns the shared validation pass (one
    :class:`~repro.dtd.validator.StreamingValidator` over the *unfiltered*
    stream) and batches admitted events into chunks so the per-session
    channel hand-off cost is amortized.
    """

    def __init__(
        self,
        index: SharedProjectionIndex,
        sessions: List[object],
        validator: Optional[StreamingValidator] = None,
        chunk_size: int = 256,
    ):
        self.index = index
        self.sessions = sessions
        self.validator = validator
        self.chunk_size = chunk_size
        self._pending: List[Event] = []

    def dispatch(self, events: Iterable[Event]) -> None:
        """Filter ``events`` and forward the survivors to every session.

        Admitted events are buffered up to ``chunk_size`` across calls;
        :meth:`flush` hands the tail over (the pass calls it on finish).
        """
        for event in events:
            if self.validator is not None:
                self.validator.feed(event)
            if self.index.admit(event):
                self._pending.append(event)
                if len(self._pending) >= self.chunk_size:
                    self.flush()

    def flush(self) -> None:
        """Forward any buffered events to every session now."""
        chunk = self._pending
        if not chunk:
            return
        self._pending = []
        for session in self.sessions:
            session.feed(chunk)
