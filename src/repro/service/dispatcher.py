"""Shared single-pass event dispatch with per-query routing.

One :class:`~repro.xmlstream.parser.StreamingXMLParser` feed is fanned out
to N per-query FluX runtimes.  The dispatcher's job is to make the shared
scan cheaper than N independent scans *without changing any query's output
by a single byte*.  Each registered plan contributes a
:class:`PlanProfile` of static interest:

* the projection tree of the query (as in the projection baseline engine:
  every document-rooted path the query's paths can touch, with
  ``keep_subtree`` marking value uses), and
* plan-level interest extracted from the physical plan — handler dispatch
  labels, BDF buffer labels, whole-element buffering, stream-copied
  variables — and the element types carrying registered XSAX ``on-first``
  conditions.

Profiles are grouped by *plan structure* before they reach the index:
registrations whose plans are structurally identical (same
:func:`~repro.runtime.plan_cache.structure_key`) share one profile, one
routing bit, and one evaluation session, however many subscribers ride on
them.  The profiles of all groups are then merged into a single **path
trie** (:class:`_TrieNode`) plus per-name mask tables, so a single
stack-machine pass (:meth:`SharedProjectionIndex.route`) computes, **per
admitted event, a bitmask of exactly which groups need it** (bit *i* set
means group *i*'s session receives the event) with per-event cost bounded
by the number of *distinct* structures, not the registrant count.  Per
group:

* character data in regions that plan's buffers or copies cannot observe
  is not routed to it;
* a whole element subtree is not routed to a plan when (a) it matches no
  node of *that plan's* projection tree, (b) its name is not interesting
  to that plan, and (c) its **parent's element type has no on-first
  condition registered in that plan**;
* an event needed by *no* plan is pruned once, for all of them (the union
  fast path of PR 1), without even being buffered.

Rule (c) is what keeps pruning semantics-preserving — now *per plan*, not
just for the union: XSAX decides when an ``on-first past(...)`` event fires
by stepping the parent's content-model automaton on every child start tag,
and the evaluator's output order depends on exactly where those events
appear in the stream.  Children of an element carrying a condition in plan
*i* are therefore always routed to plan *i*, even when irrelevant to its
data needs (and independently *not* routed to a plan without such a
condition).  For elements without conditions, delaying an always-satisfied
handler from the arrival of a pruned child to the next forwarded event
cannot reorder output of *safe* FluX queries (the safety check guarantees
an on-first handler cannot fire while an earlier-indexed handler still
expects children), so routing is invisible: each plan sees exactly the
stream its own solo filter would have admitted.

Per-query validation is disabled inside a shared pass; the dispatcher
validates the *unfiltered* stream once (``validate=True`` on the service),
which preserves the error behaviour of solo runs at a fifth of the cost.

Thread-safety: everything in this module is per-pass state owned by the
single thread (or coroutine) feeding the pass.  :class:`PlanProfile` is the
exception — it is immutable after construction and hangs off a long-lived
registration, so it may be read by any number of later passes.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set

from repro.dtd.validator import StreamingValidator
from repro.engines.projection_engine import ProjectionNode, projection_paths
from repro.runtime.compiler import CompiledQueryPlan
from repro.runtime.plan import (
    CopyVarOp,
    OnHandlerOp,
    PlanOp,
    ProcessStreamOp,
)
from repro.service.metrics import PassMetrics
from repro.xmlstream.events import EndElement, Event, StartElement, Text
from repro.xquery.analysis import WHOLE_SUBTREE


def _walk(op: PlanOp) -> Iterable[PlanOp]:
    yield op
    for child in op.children():
        for descendant in _walk(child):
            yield descendant


class PlanProfile:
    """Event interest of one compiled plan, derived statically.

    ``keep_names``: element names whose whole subtree (children *and* text)
    the runtime may materialize or copy — buffered labels, whole-buffered
    scope types, and stream-copied handler labels.
    ``interesting_names``: names that must reach the runtime (handler
    dispatch labels, scope element types, all of ``keep_names``).
    ``condition_types``: element types with registered on-first conditions.
    ``keep_everything``: conservative escape hatch — the plan copies a
    binding the walk cannot attribute to a label (e.g. ``$ROOT`` itself),
    so nothing may be filtered for it.
    """

    def __init__(self, entry: CompiledQueryPlan):
        self.entry = entry
        self.keep_names: Set[str] = set()
        self.interesting_names: Set[str] = set()
        self.condition_types: Set[str] = set(entry.plan.conditions.element_types())
        self.keep_everything = False
        self.projection: ProjectionNode = projection_paths(entry.optimized.parsed)

        bindings: Dict[str, Set[str]] = {}
        ops = list(_walk(entry.plan.root))
        for op in ops:
            if isinstance(op, OnHandlerOp):
                bindings.setdefault(op.var, set()).add(op.label)
        for op in ops:
            if isinstance(op, ProcessStreamOp):
                self.interesting_names.add(op.element_type)
                self.interesting_names.update(op.on_index)
                for label in op.buffer_labels:
                    if label == WHOLE_SUBTREE:
                        self.keep_everything = True
                    else:
                        self.keep_names.add(label)
                if op.buffer_whole:
                    self.keep_names.add(op.element_type)
            elif isinstance(op, CopyVarOp):
                labels = bindings.get(op.var)
                if labels:
                    self.keep_names.update(labels)
                else:
                    # Copy of the document ($ROOT) or of a binding outside
                    # this walk's label attribution: keep the entire stream.
                    self.keep_everything = True
        self.interesting_names.update(self.keep_names)


class _TrieNode:
    """One document-rooted path of the merged projection trie.

    The per-group projection trees are folded into one trie at index
    construction: ``mask`` is the bitmask of groups whose projection tree
    has a node at exactly this path, ``keep_mask`` the subset whose node
    keeps the whole subtree.  Projection trees are document-rooted, so a
    path determines its matches for every group at once — the hot loop
    replaces the old per-plan matched-node lists with a single child
    lookup here, making the per-event cost independent of fleet size.
    Immutable after construction; shared freely by the pass's frames.
    """

    __slots__ = ("children", "mask", "keep_mask")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        self.mask = 0
        self.keep_mask = 0


def _merge_projection(trie: _TrieNode, node: ProjectionNode, bit: int) -> None:
    """Fold one group's projection tree into the merged trie."""
    for name, child in node.children.items():
        sub = trie.children.get(name)
        if sub is None:
            sub = trie.children[name] = _TrieNode()
        sub.mask |= bit
        if child.keep_subtree:
            sub.keep_mask |= bit
        _merge_projection(sub, child, bit)


class _Frame:
    """Per-open-element state of the shared routing machine.

    ``active`` is the bitmask of groups this element was routed to (a
    group that pruned an ancestor can never reappear below it); ``kept``
    marks the groups whose buffers/copies can observe this region's
    character data (keep-everything groups are folded in at the root and
    inherited); ``node`` is the merged-trie node this element's
    document-rooted path reached, or ``None`` once the path left every
    group's projection tree.
    """

    __slots__ = ("name", "node", "kept", "active")

    def __init__(self, name: str, node: Optional[_TrieNode], kept: int, active: int):
        self.name = name
        self.node = node
        self.kept = kept
        self.active = active


class SharedProjectionIndex:
    """Merged interest of all structure groups, applied as an event router.

    :meth:`route` is a push-based stack machine over the single parsed
    stream: it returns the bitmask of groups (in registration order) that
    need the event.  A zero mask means the event is skipped *once* for all
    of them; the savings — global and per subscriber — are recorded in the
    pass metrics (per-query counters are written by
    :meth:`finalize_metrics`, which expands each group's tally to all its
    subscriber keys).

    Construction merges every group's static interest into shared tables
    so the hot loop never iterates the groups: a path trie over the
    projection trees (:class:`_TrieNode`) and per-name group masks for
    keep/interesting/condition names.  All per-event work is a handful of
    dict lookups and mask operations whose width is the number of
    *distinct plan structures* — registering ten thousand aliases of one
    hundred structures routes on one-hundred-bit masks.

    ``keys`` names the subscribers: one entry per profile, each either a
    single key or a sequence of keys (the group's subscribers, fan-out
    handled downstream by the pass).

    Lifecycle: one index per pass, fed exactly one document's events in
    order by one driver; it is not reusable across documents (the element
    stack would be stale).  Not thread-safe — the owning pass serializes
    all calls.
    """

    def __init__(
        self,
        profiles: Iterable[PlanProfile],
        metrics: Optional[PassMetrics] = None,
        keys: Optional[List[object]] = None,
    ):
        profiles = list(profiles)
        self.metrics = metrics if metrics is not None else PassMetrics()
        if keys is None:
            key_groups: List[List[str]] = [[f"q{i}"] for i in range(len(profiles))]
        else:
            key_groups = [
                [group] if isinstance(group, str) else list(group) for group in keys
            ]
        if len(key_groups) != len(profiles):
            raise ValueError("one key (or key group) per profile required")
        #: Subscriber keys per group, in registration order.
        self.keys: List[List[str]] = key_groups
        self._count = len(profiles)
        self.full_mask = (1 << self._count) - 1
        self._keep_everything_mask = 0
        self._root_keep_mask = 0
        root = _TrieNode()
        keep_name_masks: Dict[str, int] = {}
        interesting_masks: Dict[str, int] = {}
        condition_masks: Dict[str, int] = {}
        for i, profile in enumerate(profiles):
            bit = 1 << i
            if profile.keep_everything:
                self._keep_everything_mask |= bit
            if profile.projection.keep_subtree:
                self._root_keep_mask |= bit
            _merge_projection(root, profile.projection, bit)
            for name in profile.keep_names:
                keep_name_masks[name] = keep_name_masks.get(name, 0) | bit
            interesting = set(profile.interesting_names)
            _projection_names(profile.projection, interesting)
            for name in interesting:
                interesting_masks[name] = interesting_masks.get(name, 0) | bit
            for name in profile.condition_types:
                condition_masks[name] = condition_masks.get(name, 0) | bit
        self._root = root
        # Per-name group masks, built once here so the event loop never
        # reconstructs a mask: route() only reads them with .get(name, 0).
        self._keep_name_masks = keep_name_masks
        self._interesting_masks = interesting_masks
        self._condition_masks = condition_masks
        self._stack: List[_Frame] = []
        self._skip_depth = 0
        # Tallied per distinct mask, expanded per group (then per
        # subscriber) by finalize_metrics() — cheaper than touching N
        # counters on every event.
        self._mask_counts: Dict[int, int] = {}

    @property
    def group_count(self) -> int:
        """Distinct structure groups (the routing-mask bit width)."""
        return self._count

    # ------------------------------------------------------------- router

    def route(self, event: Event) -> int:  # hot-loop
        """The bitmask of structure groups ``event`` must be forwarded to.

        The per-event function of the whole service — every lookup it
        repeats is paid once per parser event, so shared state is hoisted
        into locals and events are dispatched on exact class identity
        (the event vocabulary is closed: nothing subclasses
        :class:`StartElement`/:class:`EndElement`/:class:`Text`), which
        is cheaper than ``isinstance`` and keeps ROADMAP item 2's
        no-``isinstance`` rule.
        """
        metrics = self.metrics
        metrics.parser_events += 1
        cls = event.__class__
        if self._skip_depth:
            metrics.events_pruned += 1
            if cls is StartElement:
                self._skip_depth += 1
            elif cls is EndElement:
                self._skip_depth -= 1
            return 0
        stack = self._stack
        # hot-loop-ok: second loads sit on the mutually exclusive skip path
        if cls is StartElement:
            mask = self._route_start(event)
            if not mask:
                return 0
        elif cls is EndElement:  # hot-loop-ok: exclusive with the skip path
            # Exactly the plans that saw the start tag see the end tag, so
            # every per-plan stream stays well formed.
            mask = stack.pop().active if stack else self.full_mask
            metrics.events_forwarded += 1
        elif cls is Text:
            keep_everything = self._keep_everything_mask
            if stack:
                frame = stack[-1]
                mask = frame.active & (frame.kept | keep_everything)
            else:
                mask = keep_everything
            if not mask:
                metrics.text_events_dropped += 1
                return 0
            metrics.events_forwarded += 1
        else:
            # StartDocument / EndDocument always reach every runtime.
            mask = self.full_mask  # hot-loop-ok: twice per document only
            metrics.events_forwarded += 1
        counts = self._mask_counts
        counts[mask] = counts.get(mask, 0) + 1
        return mask

    def _route_start(self, event: StartElement) -> int:  # hot-loop
        name = event.name
        metrics = self.metrics
        stack = self._stack
        keep_mask_for = self._keep_name_masks.get
        if not stack:
            # The document root: the spine of every document-rooted path —
            # every group receives it.  One visit per pass.
            root_child = self._root.children.get(name)
            kept = (
                self._keep_everything_mask
                | self._root_keep_mask
                | keep_mask_for(name, 0)
            )
            if root_child is not None:
                kept |= root_child.keep_mask
            active = self.full_mask
            stack.append(_Frame(name, root_child, kept, active))  # hot-loop-ok: root only
            metrics.events_forwarded += 1
            return active
        parent = stack[-1]
        parent_node = parent.node
        kept = parent.kept | keep_mask_for(name, 0)
        match = 0
        node = None
        if parent_node is not None:
            node = parent_node.children.get(name)
            if node is not None:
                kept |= node.keep_mask
                match = node.mask
        active = parent.active & (
            kept
            | match
            | self._interesting_masks.get(name, 0)
            | self._condition_masks.get(parent.name, 0)
        )
        if active:
            # hot-loop-ok: one frame per retained open element (depth-bounded)
            stack.append(_Frame(name, node, kept, active))
            metrics.events_forwarded += 1
            return active
        # Irrelevant to every group and invisible to every condition:
        # prune the whole subtree once, for all runtimes.
        self._skip_depth = 1
        metrics.subtrees_pruned += 1
        metrics.events_pruned += 1
        return 0

    # ------------------------------------------------------------ metrics

    def per_group_forwarded(self) -> List[int]:
        """Events routed to each structure group so far, in order."""
        counts = [0] * self._count
        for mask, count in self._mask_counts.items():
            i = 0
            while mask:
                if mask & 1:
                    counts[i] += count
                mask >>= 1
                i += 1
        return counts

    def finalize_metrics(self) -> None:
        """Write the per-query routed/suppressed counters into the metrics.

        ``per_query_forwarded[key]`` counts the events routed to that
        query; ``per_query_pruned[key]`` counts the events some *other*
        query needed but this one did not — the routing win over PR 1's
        union filter, which would have delivered all
        ``events_forwarded`` events to every session.  Every subscriber of
        a structure group gets the group's tally: aliases ride the shared
        session, so they were routed exactly its events.
        """
        forwarded = self.metrics.events_forwarded
        per_forwarded = self.metrics.per_query_forwarded
        per_pruned = self.metrics.per_query_pruned
        for group_keys, routed in zip(self.keys, self.per_group_forwarded()):
            for key in group_keys:
                per_forwarded[key] = routed
                per_pruned[key] = forwarded - routed


def _projection_names(node: ProjectionNode, into: Set[str]) -> None:
    for label, child in node.children.items():
        into.add(label)
        _projection_names(child, into)


class SharedDispatcher:
    """Routes one parsed event stream to the sessions that need each event.

    The dispatcher owns the shared validation pass (one
    :class:`~repro.dtd.validator.StreamingValidator` over the *unfiltered*
    stream) and batches routed events into per-session chunks so the
    per-session hand-off cost is amortized.  Draining is round-robin in
    registration order: with inline sessions this *is* the scheduler — each
    ``feed`` re-enters that session's evaluation generator on this thread
    until it has consumed its chunk.

    Lifecycle: one dispatcher per pass; ``dispatch`` any number of times,
    then ``flush`` exactly once (the pass's ``finish`` does).  Not
    thread-safe — driven by the pass's single feeding thread; the sessions
    it feeds provide their own cross-thread hand-off in threads mode.
    """

    def __init__(
        self,
        index: SharedProjectionIndex,
        sessions: List[object],
        validator: Optional[StreamingValidator] = None,
        chunk_size: int = 256,
    ):
        self.index = index
        self.sessions = sessions
        self.validator = validator
        self.chunk_size = chunk_size
        self._pending: List[List[Event]] = [[] for _ in sessions]

    def dispatch(self, events: Iterable[Event]) -> None:  # hot-loop
        """Route ``events``, forwarding each survivor to the sessions whose
        routing bit is set.

        Routed events are buffered per session up to ``chunk_size`` across
        calls; :meth:`flush` hands the tails over (the pass calls it on
        finish).
        """
        route = self.index.route
        validator = self.validator
        pending = self._pending
        chunk_size = self.chunk_size
        sessions = self.sessions
        for event in events:
            if validator is not None:
                validator.feed(event)
            mask = route(event)
            while mask:
                bit = mask & -mask
                mask ^= bit
                i = bit.bit_length() - 1
                bucket = pending[i]
                bucket.append(event)
                if len(bucket) >= chunk_size:
                    # hot-loop-ok: one fresh bucket per chunk_size events
                    pending[i] = []
                    sessions[i].feed(bucket)

    def dispatch_timed(self, events: List[Event], times: Dict[str, float]) -> None:
        """:meth:`dispatch`, accumulating per-stage wall time into ``times``.

        The observability-enabled twin: routing time (``route``), session
        consumption time (``evaluate`` — in inline mode the fed session
        re-enters its evaluation generator right here), and the residual
        fan-out bookkeeping (``dispatch``) are separated with
        ``perf_counter`` pairs.  This per-event timing cost is exactly why
        the twin exists: :meth:`dispatch` stays byte-identical to the
        pre-observability hot loop, and passes opened without metrics or
        tracing never enter this method.
        """
        route = self.index.route
        validator = self.validator
        pending = self._pending
        chunk_size = self.chunk_size
        sessions = self.sessions
        perf = time.perf_counter
        route_s = 0.0
        evaluate_s = 0.0
        loop_started = perf()
        for event in events:
            if validator is not None:
                validator.feed(event)
            t0 = perf()
            mask = route(event)
            route_s += perf() - t0
            while mask:
                bit = mask & -mask
                mask ^= bit
                i = bit.bit_length() - 1
                bucket = pending[i]
                bucket.append(event)
                if len(bucket) >= chunk_size:
                    pending[i] = []
                    t1 = perf()
                    sessions[i].feed(bucket)
                    evaluate_s += perf() - t1
        total = perf() - loop_started
        times["route"] += route_s
        times["evaluate"] += evaluate_s
        times["dispatch"] += max(0.0, total - route_s - evaluate_s)

    def flush(self) -> None:
        """Forward any buffered events to their sessions now (round-robin)."""
        pending = self._pending
        for i, bucket in enumerate(pending):
            if bucket:
                pending[i] = []
                self.sessions[i].feed(bucket)

    def flush_timed(self, times: Dict[str, float]) -> None:
        """:meth:`flush`, charging the hand-offs to the ``evaluate`` stage."""
        pending = self._pending
        perf = time.perf_counter
        for i, bucket in enumerate(pending):
            if bucket:
                pending[i] = []
                t0 = perf()
                self.sessions[i].feed(bucket)
                times["evaluate"] += perf() - t0
