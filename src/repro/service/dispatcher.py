"""Shared single-pass event dispatch with per-query routing.

One :class:`~repro.xmlstream.parser.StreamingXMLParser` feed is fanned out
to N per-query FluX runtimes.  The dispatcher's job is to make the shared
scan cheaper than N independent scans *without changing any query's output
by a single byte*.  Each registered plan contributes a
:class:`PlanProfile` of static interest:

* the projection tree of the query (as in the projection baseline engine:
  every document-rooted path the query's paths can touch, with
  ``keep_subtree`` marking value uses), and
* plan-level interest extracted from the physical plan — handler dispatch
  labels, BDF buffer labels, whole-element buffering, stream-copied
  variables — and the element types carrying registered XSAX ``on-first``
  conditions.

A single stack-machine pass (:meth:`SharedProjectionIndex.route`) then
computes, **per admitted event, a bitmask of exactly which plans need it**
(bit *i* set means plan *i*'s session receives the event).  Per plan:

* character data in regions that plan's buffers or copies cannot observe
  is not routed to it;
* a whole element subtree is not routed to a plan when (a) it matches no
  node of *that plan's* projection tree, (b) its name is not interesting
  to that plan, and (c) its **parent's element type has no on-first
  condition registered in that plan**;
* an event needed by *no* plan is pruned once, for all of them (the union
  fast path of PR 1), without even being buffered.

Rule (c) is what keeps pruning semantics-preserving — now *per plan*, not
just for the union: XSAX decides when an ``on-first past(...)`` event fires
by stepping the parent's content-model automaton on every child start tag,
and the evaluator's output order depends on exactly where those events
appear in the stream.  Children of an element carrying a condition in plan
*i* are therefore always routed to plan *i*, even when irrelevant to its
data needs (and independently *not* routed to a plan without such a
condition).  For elements without conditions, delaying an always-satisfied
handler from the arrival of a pruned child to the next forwarded event
cannot reorder output of *safe* FluX queries (the safety check guarantees
an on-first handler cannot fire while an earlier-indexed handler still
expects children), so routing is invisible: each plan sees exactly the
stream its own solo filter would have admitted.

Per-query validation is disabled inside a shared pass; the dispatcher
validates the *unfiltered* stream once (``validate=True`` on the service),
which preserves the error behaviour of solo runs at a fifth of the cost.

Thread-safety: everything in this module is per-pass state owned by the
single thread (or coroutine) feeding the pass.  :class:`PlanProfile` is the
exception — it is immutable after construction and hangs off a long-lived
registration, so it may be read by any number of later passes.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set

from repro.dtd.validator import StreamingValidator
from repro.engines.projection_engine import ProjectionNode, projection_paths
from repro.runtime.compiler import CompiledQueryPlan
from repro.runtime.plan import (
    CopyVarOp,
    OnHandlerOp,
    PlanOp,
    ProcessStreamOp,
)
from repro.service.metrics import PassMetrics
from repro.xmlstream.events import EndElement, Event, StartElement, Text
from repro.xquery.analysis import WHOLE_SUBTREE


def _walk(op: PlanOp) -> Iterable[PlanOp]:
    yield op
    for child in op.children():
        for descendant in _walk(child):
            yield descendant


class PlanProfile:
    """Event interest of one compiled plan, derived statically.

    ``keep_names``: element names whose whole subtree (children *and* text)
    the runtime may materialize or copy — buffered labels, whole-buffered
    scope types, and stream-copied handler labels.
    ``interesting_names``: names that must reach the runtime (handler
    dispatch labels, scope element types, all of ``keep_names``).
    ``condition_types``: element types with registered on-first conditions.
    ``keep_everything``: conservative escape hatch — the plan copies a
    binding the walk cannot attribute to a label (e.g. ``$ROOT`` itself),
    so nothing may be filtered for it.
    """

    def __init__(self, entry: CompiledQueryPlan):
        self.entry = entry
        self.keep_names: Set[str] = set()
        self.interesting_names: Set[str] = set()
        self.condition_types: Set[str] = set(entry.plan.conditions.element_types())
        self.keep_everything = False
        self.projection: ProjectionNode = projection_paths(entry.optimized.parsed)

        bindings: Dict[str, Set[str]] = {}
        ops = list(_walk(entry.plan.root))
        for op in ops:
            if isinstance(op, OnHandlerOp):
                bindings.setdefault(op.var, set()).add(op.label)
        for op in ops:
            if isinstance(op, ProcessStreamOp):
                self.interesting_names.add(op.element_type)
                self.interesting_names.update(op.on_index)
                for label in op.buffer_labels:
                    if label == WHOLE_SUBTREE:
                        self.keep_everything = True
                    else:
                        self.keep_names.add(label)
                if op.buffer_whole:
                    self.keep_names.add(op.element_type)
            elif isinstance(op, CopyVarOp):
                labels = bindings.get(op.var)
                if labels:
                    self.keep_names.update(labels)
                else:
                    # Copy of the document ($ROOT) or of a binding outside
                    # this walk's label attribution: keep the entire stream.
                    self.keep_everything = True
        self.interesting_names.update(self.keep_names)


class _Frame:
    """Per-open-element state of the shared routing machine.

    ``active`` is the bitmask of plans this element was routed to (a plan
    that pruned an ancestor can never reappear below it); ``kept`` marks
    the active plans whose buffers/copies can observe this region's
    character data; ``matched`` holds, per plan, the projection-tree nodes
    the element's path has reached.
    """

    __slots__ = ("name", "matched", "kept", "active")

    def __init__(self, name: str, matched: List[List[ProjectionNode]], kept: int, active: int):
        self.name = name
        self.matched = matched
        self.kept = kept
        self.active = active


class SharedProjectionIndex:
    """Per-plan interest of all registered plans, applied as an event router.

    :meth:`route` is a push-based stack machine over the single parsed
    stream: it returns the bitmask of plans (in registration order) that
    need the event.  A zero mask means the event is skipped *once* for all
    of them; the savings — global and per query — are recorded in the pass
    metrics (per-query counters are written by :meth:`finalize_metrics`).

    Lifecycle: one index per pass, fed exactly one document's events in
    order by one driver; it is not reusable across documents (the element
    stack would be stale).  Not thread-safe — the owning pass serializes
    all calls.
    """

    def __init__(
        self,
        profiles: Iterable[PlanProfile],
        metrics: Optional[PassMetrics] = None,
        keys: Optional[List[str]] = None,
    ):
        profiles = list(profiles)
        self.metrics = metrics if metrics is not None else PassMetrics()
        self.keys = list(keys) if keys is not None else [f"q{i}" for i in range(len(profiles))]
        if len(self.keys) != len(profiles):
            raise ValueError("one key per profile required")
        self._count = len(profiles)
        self.full_mask = (1 << self._count) - 1
        self._projections = [profile.projection for profile in profiles]
        self._keep_names = [profile.keep_names for profile in profiles]
        self._interesting_names = [set(profile.interesting_names) for profile in profiles]
        self._condition_types = [profile.condition_types for profile in profiles]
        self._keep_everything_mask = 0
        for i, profile in enumerate(profiles):
            if profile.keep_everything:
                self._keep_everything_mask |= 1 << i
            _projection_names(profile.projection, self._interesting_names[i])
        self._stack: List[_Frame] = []
        self._skip_depth = 0
        # Tallied per distinct mask, expanded per plan by finalize_metrics()
        # (cheaper than touching N counters on every event).
        self._mask_counts: Dict[int, int] = {}

    # ------------------------------------------------------------- router

    def route(self, event: Event) -> int:  # hot-loop
        """The bitmask of plans ``event`` must be forwarded to.

        The per-event function of the whole service — every lookup it
        repeats is paid once per parser event, so shared state is hoisted
        into locals and events are dispatched on exact class identity
        (the event vocabulary is closed: nothing subclasses
        :class:`StartElement`/:class:`EndElement`/:class:`Text`), which
        is cheaper than ``isinstance`` and keeps ROADMAP item 2's
        no-``isinstance`` rule.
        """
        metrics = self.metrics
        metrics.parser_events += 1
        cls = event.__class__
        if self._skip_depth:
            metrics.events_pruned += 1
            if cls is StartElement:
                self._skip_depth += 1
            elif cls is EndElement:
                self._skip_depth -= 1
            return 0
        stack = self._stack
        # hot-loop-ok: second loads sit on the mutually exclusive skip path
        if cls is StartElement:
            mask = self._route_start(event)
            if not mask:
                return 0
        elif cls is EndElement:  # hot-loop-ok: exclusive with the skip path
            # Exactly the plans that saw the start tag see the end tag, so
            # every per-plan stream stays well formed.
            mask = stack.pop().active if stack else self.full_mask
            metrics.events_forwarded += 1
        elif cls is Text:
            keep_everything = self._keep_everything_mask
            if stack:
                frame = stack[-1]
                mask = frame.active & (frame.kept | keep_everything)
            else:
                mask = keep_everything
            if not mask:
                metrics.text_events_dropped += 1
                return 0
            metrics.events_forwarded += 1
        else:
            # StartDocument / EndDocument always reach every runtime.
            mask = self.full_mask  # hot-loop-ok: twice per document only
            metrics.events_forwarded += 1
        counts = self._mask_counts
        counts[mask] = counts.get(mask, 0) + 1
        return mask

    def _route_start(self, event: StartElement) -> int:  # hot-loop
        name = event.name
        metrics = self.metrics
        stack = self._stack
        keep_everything = self._keep_everything_mask
        keep_names = self._keep_names
        count = self._count
        no_nodes = _NO_NODES
        if not stack:
            # The document root: the spine of every document-rooted path —
            # every plan receives it.  One visit per pass, so this branch
            # may allocate freely.
            active = self.full_mask
            kept = keep_everything
            matched: List[List[ProjectionNode]] = []  # hot-loop-ok: root only
            for i in range(count):
                projection = self._projections[i]
                node = projection.children.get(name)
                plan_matched = [node] if node is not None else []  # hot-loop-ok: root only
                if (
                    projection.keep_subtree
                    or name in keep_names[i]
                    or (node is not None and node.keep_subtree)
                ):
                    kept |= 1 << i
                matched.append(plan_matched)
            stack.append(_Frame(name, matched, kept, active))  # hot-loop-ok: root only
            metrics.events_forwarded += 1
            return active
        parent = stack[-1]
        parent_matched = parent.matched
        parent_keep = parent.kept | keep_everything
        parent_name = parent.name
        interesting_names = self._interesting_names
        condition_types = self._condition_types
        active = 0
        kept = 0
        # hot-loop-ok: one frame state per open element, depth-bounded
        matched = [no_nodes] * count
        remaining = parent.active
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            i = bit.bit_length() - 1
            plan_kept = bool(bit & parent_keep) or name in keep_names[i]
            # The shared empty list covers the common no-match case; a
            # plan's first projection match must materialize its own list.
            plan_matched = no_nodes
            for node in parent_matched[i]:
                child = node.children.get(name)
                if child is not None:
                    if plan_matched:
                        plan_matched.append(child)
                    else:
                        plan_matched = [child]  # hot-loop-ok: first match only
                    plan_kept = plan_kept or child.keep_subtree
            if (
                plan_kept
                or plan_matched
                or name in interesting_names[i]
                or parent_name in condition_types[i]
            ):
                active |= bit
                if plan_kept:
                    kept |= bit
                matched[i] = plan_matched
        if active:
            # hot-loop-ok: one frame per retained open element (depth-bounded)
            stack.append(_Frame(name, matched, kept, active))
            metrics.events_forwarded += 1
            return active
        # Irrelevant to every query and invisible to every condition:
        # prune the whole subtree once, for all runtimes.
        self._skip_depth = 1
        metrics.subtrees_pruned += 1
        metrics.events_pruned += 1
        return 0

    # ------------------------------------------------------------ metrics

    def per_plan_forwarded(self) -> List[int]:
        """Events routed to each plan so far, in registration order."""
        counts = [0] * self._count
        for mask, count in self._mask_counts.items():
            i = 0
            while mask:
                if mask & 1:
                    counts[i] += count
                mask >>= 1
                i += 1
        return counts

    def finalize_metrics(self) -> None:
        """Write the per-query routed/suppressed counters into the metrics.

        ``per_query_forwarded[key]`` counts the events routed to that
        query; ``per_query_pruned[key]`` counts the events some *other*
        query needed but this one did not — the routing win over PR 1's
        union filter, which would have delivered all
        ``events_forwarded`` events to every session.
        """
        forwarded = self.metrics.events_forwarded
        for key, routed in zip(self.keys, self.per_plan_forwarded()):
            self.metrics.per_query_forwarded[key] = routed
            self.metrics.per_query_pruned[key] = forwarded - routed


#: Shared empty per-plan match list (most plans match nothing at most depths).
_NO_NODES: List[ProjectionNode] = []


def _projection_names(node: ProjectionNode, into: Set[str]) -> None:
    for label, child in node.children.items():
        into.add(label)
        _projection_names(child, into)


class SharedDispatcher:
    """Routes one parsed event stream to the sessions that need each event.

    The dispatcher owns the shared validation pass (one
    :class:`~repro.dtd.validator.StreamingValidator` over the *unfiltered*
    stream) and batches routed events into per-session chunks so the
    per-session hand-off cost is amortized.  Draining is round-robin in
    registration order: with inline sessions this *is* the scheduler — each
    ``feed`` re-enters that session's evaluation generator on this thread
    until it has consumed its chunk.

    Lifecycle: one dispatcher per pass; ``dispatch`` any number of times,
    then ``flush`` exactly once (the pass's ``finish`` does).  Not
    thread-safe — driven by the pass's single feeding thread; the sessions
    it feeds provide their own cross-thread hand-off in threads mode.
    """

    def __init__(
        self,
        index: SharedProjectionIndex,
        sessions: List[object],
        validator: Optional[StreamingValidator] = None,
        chunk_size: int = 256,
    ):
        self.index = index
        self.sessions = sessions
        self.validator = validator
        self.chunk_size = chunk_size
        self._pending: List[List[Event]] = [[] for _ in sessions]

    def dispatch(self, events: Iterable[Event]) -> None:  # hot-loop
        """Route ``events``, forwarding each survivor to the sessions whose
        routing bit is set.

        Routed events are buffered per session up to ``chunk_size`` across
        calls; :meth:`flush` hands the tails over (the pass calls it on
        finish).
        """
        route = self.index.route
        validator = self.validator
        pending = self._pending
        chunk_size = self.chunk_size
        sessions = self.sessions
        for event in events:
            if validator is not None:
                validator.feed(event)
            mask = route(event)
            while mask:
                bit = mask & -mask
                mask ^= bit
                i = bit.bit_length() - 1
                bucket = pending[i]
                bucket.append(event)
                if len(bucket) >= chunk_size:
                    # hot-loop-ok: one fresh bucket per chunk_size events
                    pending[i] = []
                    sessions[i].feed(bucket)

    def dispatch_timed(self, events: List[Event], times: Dict[str, float]) -> None:
        """:meth:`dispatch`, accumulating per-stage wall time into ``times``.

        The observability-enabled twin: routing time (``route``), session
        consumption time (``evaluate`` — in inline mode the fed session
        re-enters its evaluation generator right here), and the residual
        fan-out bookkeeping (``dispatch``) are separated with
        ``perf_counter`` pairs.  This per-event timing cost is exactly why
        the twin exists: :meth:`dispatch` stays byte-identical to the
        pre-observability hot loop, and passes opened without metrics or
        tracing never enter this method.
        """
        route = self.index.route
        validator = self.validator
        pending = self._pending
        chunk_size = self.chunk_size
        sessions = self.sessions
        perf = time.perf_counter
        route_s = 0.0
        evaluate_s = 0.0
        loop_started = perf()
        for event in events:
            if validator is not None:
                validator.feed(event)
            t0 = perf()
            mask = route(event)
            route_s += perf() - t0
            while mask:
                bit = mask & -mask
                mask ^= bit
                i = bit.bit_length() - 1
                bucket = pending[i]
                bucket.append(event)
                if len(bucket) >= chunk_size:
                    pending[i] = []
                    t1 = perf()
                    sessions[i].feed(bucket)
                    evaluate_s += perf() - t1
        total = perf() - loop_started
        times["route"] += route_s
        times["evaluate"] += evaluate_s
        times["dispatch"] += max(0.0, total - route_s - evaluate_s)

    def flush(self) -> None:
        """Forward any buffered events to their sessions now (round-robin)."""
        pending = self._pending
        for i, bucket in enumerate(pending):
            if bucket:
                pending[i] = []
                self.sessions[i].feed(bucket)

    def flush_timed(self, times: Dict[str, float]) -> None:
        """:meth:`flush`, charging the hand-offs to the ``evaluate`` stage."""
        pending = self._pending
        perf = time.perf_counter
        for i, bucket in enumerate(pending):
            if bucket:
                pending[i] = []
                t0 = perf()
                self.sessions[i].feed(bucket)
                times["evaluate"] += perf() - t0
