"""Multi-process service pool: plan shipping breaks the GIL cap.

The thread-backed :class:`~repro.service.pool.ServicePool` flatlines at
~1× on CPU-bound document streams — under CPython's GIL its workers
interleave evaluation instead of parallelizing it (S4 reports this
honestly).  :class:`ProcessServicePool` is the same pool architecture with
the workers moved into separate *processes*, where evaluation runs truly
in parallel on separate cores:

* **compile once, ship once per structure** — the parent compiles every
  registration through the shared
  :class:`~repro.runtime.plan_cache.PlanCache` (one optimizer run per
  distinct query, exactly like the in-process pools), dedups the results
  by :func:`~repro.runtime.plan_cache.structure_key`, and ships one
  :class:`~repro.runtime.plan_cache.PlanArtifact` — query source + DTD
  fingerprint + pickled plan — *per distinct structure* to each worker;
  registrations then subscribe to shipped structures by key, so 10k
  aliases of 100 structures cost 100 artifact sends per worker, not 10k.
  Workers rebuild each plan once with
  :meth:`~repro.runtime.plan_cache.PlanArtifact.load_plan` and register
  aliases against it with
  :meth:`~repro.service.service.QueryService.register_compiled`; they
  never parse, never optimize, and (under the default ``spawn`` start
  method) provably cannot be reusing the parent's in-memory plans.
  Shipping volume is reported as ``ship_count`` / ``ship_bytes`` on
  :class:`~repro.service.metrics.PoolMetrics` (artifact sends only —
  alias subscriptions are a few bytes and not counted).
* **sharding with backpressure** — :meth:`serve` assigns each document to
  an idle worker and yields :class:`~repro.service.service.ServedDocument`
  results as they complete, tagged with ``worker`` and source ``index``.
  The parent pulls a document from the source only when a worker is free,
  so at most ``workers`` documents are in flight beyond what the consumer
  has taken — the same bounded behaviour as the thread pool's result
  queue.
* **fault isolation, now including crashes** — a document whose pass
  raises is delivered as an error-tagged outcome (exception sanitized for
  the trip home), like the in-process pools.  Beyond them: a worker
  process that *dies* (segfault, OOM kill, ``os._exit``) is detected, its
  in-flight document is delivered as an error outcome carrying
  :class:`~repro.errors.WorkerCrashError`, and the slot is respawned with
  the full registration set re-shipped — the stream keeps serving.

**Why pipes, not a shared queue.**  Every cross-process channel here is a
single-writer/single-reader :func:`multiprocessing.Pipe`: the parent
writes a worker's inbox, the worker writes its own result pipe.  A shared
``multiprocessing.Queue`` would be simpler — and wrong: its write side is
guarded by a cross-process lock, and a worker that *dies* while holding
it (precisely the failure this pool must survive) poisons the queue for
every surviving worker, deadlocking the pool.  With per-worker pipes a
crash can corrupt only the dead worker's own channel, which is discarded
on respawn; the parent multiplexes with
:func:`multiprocessing.connection.wait` over the result pipes *and* the
process sentinels, so results and deaths are both events, not polls.

**Worker-side protocol.**  Each worker process hosts one ordinary
:class:`~repro.service.service.QueryService` and consumes a single FIFO
inbox carrying both control and work messages, in order::

    ("plan", skey, artifact)           rebuild + stash one structure's plan
    ("register", key, skey, source)    register an alias of a shipped plan
    ("unregister", key)                drop a registration
    ("drop", skey)                     discard a plan no registration uses
    ("doc", index, document, chunk)    run one pass, reply on the result pipe
    ("stop",)                          exit cleanly (EOF on the inbox, too)

Because registration messages and documents share one ordered channel, a
worker can never evaluate a document against a stale registration set —
the parent flushes registration changes (allowed only between serve
loops) before the next loop's documents enter the inbox.

**Document forms.**  A document may be XML text (shipped verbatim), a
:class:`DocumentSource` (a small picklable recipe — e.g.
:class:`FileDocument` — that the *worker* materializes, so bulky or
latency-bearing delivery happens in the worker, off the parent's dispatch
loop), or a file-like object (drained to text in the parent before
shipping — convenient, but delivery then serializes on the parent;
prefer a ``DocumentSource`` for streams whose delivery should overlap).

Choosing a backend: threads overlap *ingestion latency* and share plans
by reference — pick them when delivery dominates or documents are huge
and IPC would hurt.  Processes parallelize *evaluation* — pick them when
the stream is CPU-bound and cores are available.  The S5 benchmark
(``benchmarks/bench_s5_process_pool.py``) measures both pools on both
regimes.

Concurrency contract: identical to the other pools — one serve loop at a
time, registration only between loops, single driving thread.  The pool
holds OS resources (processes, pipes); ``close()`` releases them, the
pool is a context manager, and workers are daemonic as a last resort.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import pickle
import time
from multiprocessing import connection
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.optimizer import OptimizerPipeline
from repro.dtd.schema import DTD
from repro.errors import WorkerCrashError
from repro.obs import MemorySink, Observability, Tracer, new_trace_id
from repro.runtime.plan_cache import PlanArtifact, PlanCache, structure_key
from repro.service.metrics import PassMetrics, ServiceMetrics
from repro.service.pool_core import PoolCore
from repro.service.service import QueryService, ServedDocument
from repro.service.session import (
    PlanStructure,
    RegisteredQuery,
    record_pass_observations,
)

#: Upper bound (seconds) on one `connection.wait` — results and process
#: deaths are both wait events, so this is a safety net against missed
#: wakeups, not the detection latency.
_WAIT_STEP_SECONDS = 0.25

#: Default read granularity when draining a file-like document.
_READ_CHUNK = 1 << 16


class DocumentSource:
    """A picklable recipe for a document, materialized in the worker.

    Shipping a live file handle or socket across processes is impossible;
    shipping the whole text through the parent serializes delivery on the
    dispatch loop.  A ``DocumentSource`` ships the *recipe* instead: the
    worker calls :meth:`open` and feeds whatever it returns (XML text or a
    file-like object, which the worker drains and closes).  Subclasses
    must be picklable — module-level classes with plain attributes.
    """

    def open(self) -> Union[str, io.TextIOBase]:
        """Materialize the document (called in the worker process)."""
        raise NotImplementedError


class FileDocument(DocumentSource):
    """A document read from ``path`` by the worker that serves it.

    The parent ships only the path, so file I/O happens in the worker,
    overlapping with other workers' evaluation — the process-pool
    equivalent of the thread pool's streamed file handles.
    """

    def __init__(self, path: str):
        self.path = path

    def open(self) -> io.TextIOBase:
        return open(self.path, "r", encoding="utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileDocument({self.path!r})"


def _sanitize_exception(exc: BaseException) -> BaseException:
    """An exception safe to ship home over the result pipe.

    Most library errors pickle fine; exotic ones (custom constructors,
    unpicklable payloads) are replaced by a ``RuntimeError`` carrying the
    original type name and message, so the parent always gets *an* error
    rather than a pipe encoding failure.  Tracebacks and chains are
    dropped either way: their frames pin the document text and the
    aborted pass graph, and they would not survive the process boundary
    meaningfully.
    """
    exc.__traceback__ = None
    if exc.__cause__ is not None or exc.__context__ is not None:
        exc.__cause__ = None
        exc.__context__ = None
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _serve_one_in_worker(
    service: QueryService,
    worker_id: int,
    index: int,
    document: Union[str, io.TextIOBase, DocumentSource],
    chunk_size: int,
    crash_marker: Optional[str],
    trace_id: Optional[str] = None,
) -> ServedDocument:
    """One worker pass over one document, fault-isolated (worker side).

    *Everything* an ordinary ``Exception`` can reach is inside the
    isolation — materializing a :class:`DocumentSource` included (a file
    deleted between dispatch and the worker's ``open()`` is a failed
    *document*, not a failed worker, exactly as in the thread pool).
    """
    closer = None
    shared_pass = None
    try:
        if isinstance(document, DocumentSource):
            document = document.open()
            if hasattr(document, "close"):
                closer = document.close
        if (
            crash_marker is not None
            and isinstance(document, str)
            and crash_marker in document
        ):
            # Fault injection for tests/benches: die *mid-pass*, with the
            # document genuinely in flight, the way a segfault or OOM kill
            # would land.  Never triggers unless the pool was built with a
            # crash marker.
            shared_pass = service.open_pass(chunk_size=chunk_size, trace_id=trace_id)
            shared_pass.feed(document[: len(document) // 2])
            os._exit(3)
        shared_pass = service.open_pass(chunk_size=chunk_size, trace_id=trace_id)
        service._feed_document(shared_pass, document)
        results = shared_pass.finish()
    except Exception as exc:
        if shared_pass is not None:
            shared_pass.abort()
        return ServedDocument(
            index=index,
            results={},
            metrics=shared_pass.metrics if shared_pass is not None else PassMetrics(),
            outcome="error",
            error=_sanitize_exception(exc),
            worker=worker_id,
        )
    finally:
        if closer is not None:
            try:
                closer()
            except Exception:
                pass
    return ServedDocument(
        index=index,
        results=results,
        metrics=shared_pass.metrics,
        worker=worker_id,
    )


def _worker_main(
    worker_id: int,
    dtd_blob: bytes,
    validate: bool,
    execution: str,
    crash_marker: Optional[str],
    observe: bool,
    inbox,
    results,
) -> None:
    """A worker process: one mirrored ``QueryService``, driven by messages.

    Top-level (not a closure) so the ``spawn`` start method can import it.
    The service compiles nothing: every plan arrives as a shipped artifact
    — once per distinct structure (``plan`` messages, stashed by structure
    key) — and registrations subscribe to stashed plans by key
    (``register`` messages), through ``register_compiled``.  Each served
    document is
    answered with one ``("served", index, ServedDocument, compiled_here,
    spans)`` message on this worker's own result pipe; ``compiled_here``
    (the worker's plan-cache miss counter) lets the parent *verify* the
    worker never ran the optimizer.

    With ``observe`` set the worker runs its passes under an in-memory
    tracer: pass and stage spans — carrying the trace id the parent
    stamped into the ``doc`` message — are drained after each document and
    shipped home in the ``served`` reply, where the parent merges them
    into its own trace file and folds their stage durations into its
    metrics registry.  The worker keeps no registry of its own; its
    metric delta *is* the :class:`PassMetrics` every served document
    already carries.
    """
    dtd = pickle.loads(dtd_blob)
    span_sink = MemorySink() if observe else None
    worker_obs = Observability(tracer=Tracer(span_sink)) if observe else None
    service = QueryService(dtd, validate=validate, execution=execution, obs=worker_obs)
    # Shipped plans by structure key: each artifact is unpickled once and
    # every alias registration reuses the same plan object, so the
    # service-side dedup (structure keys are memoized on the entry) is
    # cheap in the worker too.
    plans: Dict[str, "CompiledQueryPlan"] = {}
    while True:
        try:
            message = inbox.recv()
        except EOFError:  # parent closed the inbox: shut down
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "plan":
            _, skey, artifact = message
            plans[skey] = artifact.load_plan()
        elif kind == "register":
            _, key, skey, source = message
            service.register_compiled(plans[skey], key=key, source=source)
        elif kind == "unregister":
            service.unregister(message[1])
        elif kind == "drop":
            plans.pop(message[1], None)
        elif kind == "doc":
            _, index, document, chunk_size, trace_id = message
            try:
                served = _serve_one_in_worker(
                    service, worker_id, index, document, chunk_size,
                    crash_marker, trace_id,
                )
            except BaseException as exc:  # non-Exception: report, then die
                results.send(("fatal", index, _sanitize_exception(exc)))
                raise
            compiled_here = service.plan_cache.stats.misses
            spans = span_sink.drain() if span_sink is not None else []
            results.send(("served", index, served, compiled_here, spans))
    results.close()


class _WorkerSlot:
    """Parent-side handle of one worker process."""

    __slots__ = ("process", "inbox", "results", "pending", "respawns",
                 "compiled", "trace", "sent_at")

    def __init__(self):
        self.process = None
        #: Parent's write end of the worker's inbox pipe.
        self.inbox = None
        #: Parent's read end of the worker's result pipe.
        self.results = None
        #: Source index of the document currently in flight, or ``None``.
        self.pending: Optional[int] = None
        self.respawns = 0
        #: Optimizer runs the worker reported (must stay 0: plans are
        #: shipped, never recompiled).
        self.compiled = 0
        #: Trace id of the in-flight document (tracing only) — kept on the
        #: slot so a crash-respawn's spans join the document's trace.
        self.trace: Optional[str] = None
        #: ``(wall, perf_counter)`` stamp of the in-flight dispatch, for
        #: the parent-side ``pool.shard`` span.
        self.sent_at: Optional[Tuple[float, float]] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def close_channels(self) -> None:
        for channel in (self.inbox, self.results):
            if channel is not None:
                try:
                    channel.close()
                except Exception:
                    pass
        self.inbox = None
        self.results = None


class ProcessServicePool(PoolCore):
    """N mirrored ``QueryService`` workers in separate processes.

    Parameters
    ----------
    dtd:
        Schema shared by all workers (a :class:`DTD`, DTD text, or
        ``None``), parsed once in the parent and shipped pickled to each
        worker at spawn.
    workers:
        Pool size — worker processes, and documents in flight at once.
    validate / execution:
        Forwarded to every worker's ``QueryService``.  ``execution``
        defaults to ``"inline"``: inside a worker process there is nothing
        to overlap, so per-query worker *threads* would only add handoff
        cost on top of the process parallelism.
    plan_cache:
        An existing cache to share; by default the pool owns one.  All
        compilation happens in the parent, through this cache — workers
        receive artifacts.
    start_method:
        ``multiprocessing`` start method (default ``"spawn"``: immune to
        fork-with-threads hazards, and it proves plan shipping works — a
        spawned worker has no inherited interpreter state to fall back
        on).  Pass ``"fork"`` on POSIX for faster worker startup.

    Workers are spawned lazily on first :meth:`serve` and stay alive
    across loops (plans ship once, not once per loop); a crashed worker
    is respawned on detection.  :meth:`close` stops the fleet; the pool
    is a context manager.
    """

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        workers: int = 2,
        validate: bool = True,
        plan_cache: Optional[PlanCache] = None,
        cache_size: int = 128,
        execution: str = "inline",
        start_method: str = "spawn",
        obs: Optional[Observability] = None,
        _crash_marker: Optional[str] = None,
    ):
        super().__init__(dtd, workers, plan_cache, cache_size, obs=obs)
        self.validate = validate
        self.execution = execution
        self._pipeline = OptimizerPipeline(self.dtd)
        self._ctx = multiprocessing.get_context(start_method)
        self._crash_marker = _crash_marker
        self._dtd_blob = pickle.dumps(self.dtd, protocol=pickle.HIGHEST_PROTOCOL)
        self._registrations: Dict[str, RegisteredQuery] = {}
        # Structure-level dedup mirror: one live PlanStructure and one
        # pickled artifact per distinct structure key, refcounted by the
        # registrations subscribed to it (same discipline as
        # QueryService's own structure table).
        self._structures: "Dict[str, PlanStructure]" = {}
        self._structure_artifacts: "Dict[str, PlanArtifact]" = {}
        self._slots = [_WorkerSlot() for _ in range(workers)]
        # Parent-side mirror of each worker's cumulative pass metrics,
        # rebuilt from the PassMetrics every served document carries home.
        self._slot_metrics = [ServiceMetrics() for _ in range(workers)]
        self._started = False
        self._closed = False
        self._ship_count = 0
        self._ship_bytes = 0
        # Workers trace their passes whenever the parent can use the spans:
        # to merge into a trace file, or to fold stage durations into the
        # registry's histograms.
        self._observe_workers = obs is not None and (
            obs.tracer is not None or obs.metrics is not None
        )

    # ---------------------------------------------------------- back hooks

    def _mirror_register(self, query: str, key: str) -> RegisteredQuery:
        # Compile (or hit) in the parent — the only optimizer run for this
        # query across the whole pool — then ship *per structure*: the
        # first registration of a structure ships its artifact to every
        # live worker, later aliases send only a tiny subscription
        # message.  Workers spawned later get the full deduped artifact
        # set at spawn, through the same counted path.
        entry, from_cache = self.plan_cache.get_or_compile(query, self._pipeline)
        skey = structure_key(entry)
        structure = self._structures.get(skey)
        new_structure = structure is None
        if structure is None:
            structure = PlanStructure(skey, entry)
            self._structures[skey] = structure
            self._structure_artifacts[skey] = PlanArtifact.from_plan(entry)
        structure.refcount += 1
        registration = RegisteredQuery(
            key, entry, from_cache=from_cache, structure=structure, source=query
        )
        displaced = self._registrations.get(key)
        self._registrations[key] = registration
        if self._started:
            artifact = self._structure_artifacts[skey]
            for slot in self._slots:
                if slot.alive:
                    try:
                        if new_structure:
                            self._ship(slot, skey, artifact)
                        slot.inbox.send(("register", key, skey, query))
                    except (BrokenPipeError, OSError):
                        pass  # died under us; respawn re-ships everything
        if displaced is not None:
            # Release after acquiring: replacing an alias with another
            # alias of the same structure must not drop the shared plan.
            self._release_structure(displaced)
        for metrics in self._slot_metrics:
            if displaced is not None:
                metrics.queries_replaced += 1
            metrics.queries_registered += 1
        return registration

    def _release_structure(self, registration: RegisteredQuery) -> None:
        """Drop one registration's structure subscription (parent side).

        The last subscriber's release discards the parent's artifact and
        tells every live worker to discard its stashed plan.
        """
        structure = registration.structure
        structure.refcount -= 1
        if (
            structure.refcount == 0
            and self._structures.get(structure.skey) is structure
        ):
            del self._structures[structure.skey]
            del self._structure_artifacts[structure.skey]
            if self._started:
                for slot in self._slots:
                    if slot.alive:
                        try:
                            slot.inbox.send(("drop", structure.skey))
                        except (BrokenPipeError, OSError):
                            pass  # died under us; respawn re-ships everything

    def _mirror_unregister(self, key: str) -> None:
        registration = self._registrations.pop(key)
        if self._started:
            for slot in self._slots:
                if slot.alive:
                    try:
                        slot.inbox.send(("unregister", key))
                    except (BrokenPipeError, OSError):
                        pass  # died under us; respawn re-ships everything
        self._release_structure(registration)
        for metrics in self._slot_metrics:
            metrics.queries_unregistered += 1

    def _worker_metrics(self) -> List[ServiceMetrics]:
        return list(self._slot_metrics)

    def _ship_stats(self) -> Tuple[int, int]:
        return (self._ship_count, self._ship_bytes)

    @property
    def registrations(self) -> Dict[str, RegisteredQuery]:
        """The mirrored registrations, by key (the parent's view)."""
        return dict(self._registrations)

    @property
    def structures(self) -> "Dict[str, PlanStructure]":
        """Live shipped structures by key (the parent's refcounted view)."""
        return dict(self._structures)

    @property
    def workers(self) -> int:
        return len(self._slots)

    # ------------------------------------------------------ worker fleet

    def _ship(
        self,
        slot: _WorkerSlot,
        skey: str,
        artifact: PlanArtifact,
        trace_id: Optional[str] = None,
    ) -> None:
        started = time.perf_counter()
        slot.inbox.send(("plan", skey, artifact))
        self._ship_count += 1
        self._ship_bytes += len(artifact.payload)
        if self.obs is not None:
            self.obs.log(
                "pool.ship", key=skey, bytes=len(artifact.payload), trace_id=trace_id
            )
            # A ship span only inside a document's trace (a crash-respawn
            # re-shipment): registration-time shipping has no trace to join.
            if trace_id is not None:
                self.obs.record_span(
                    "pool.ship",
                    trace_id,
                    time.perf_counter() - started,
                    key=skey,
                    bytes=len(artifact.payload),
                )

    def _spawn_slot(self, worker_id: int, trace_id: Optional[str] = None) -> None:
        """Start (or restart) one worker process and ship it every plan."""
        slot = self._slots[worker_id]
        inbox_read, inbox_write = self._ctx.Pipe(duplex=False)
        results_read, results_write = self._ctx.Pipe(duplex=False)
        slot.inbox = inbox_write
        slot.results = results_read
        slot.pending = None
        slot.trace = None
        slot.sent_at = None
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._dtd_blob,
                self.validate,
                self.execution,
                self._crash_marker,
                self._observe_workers,
                inbox_read,
                results_write,
            ),
            name=f"process-pool-worker-{worker_id}",
            daemon=True,
        )
        slot.process.start()
        # Close the child's pipe ends in the parent: EOF semantics on the
        # result pipe then track the worker's life, not ours.
        inbox_read.close()
        results_write.close()
        # Re-ship the deduped set: one artifact per live structure, then
        # the alias subscriptions in registration order.
        for skey, artifact in self._structure_artifacts.items():
            self._ship(slot, skey, artifact, trace_id=trace_id)
        for key, registration in self._registrations.items():
            slot.inbox.send(
                ("register", key, registration.structure.skey, registration.source)
            )

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("the process pool is closed")
        if self._started:
            return
        for worker_id in range(len(self._slots)):
            self._spawn_slot(worker_id)
        self._started = True

    def _respawn(self, worker_id: int, trace_id: Optional[str] = None) -> None:
        slot = self._slots[worker_id]
        exitcode = slot.process.exitcode if slot.process is not None else None
        started = time.perf_counter()
        slot.close_channels()
        slot.respawns += 1
        self._spawn_slot(worker_id, trace_id=trace_id)
        if self.obs is not None:
            self.obs.log(
                "pool.respawn",
                worker=worker_id,
                exitcode=exitcode,
                respawns=slot.respawns,
                trace_id=trace_id,
            )
            if trace_id is not None:
                # Join the crashed document's trace: the respawn (and the
                # re-shipments inside _spawn_slot) carry its trace id.
                self.obs.record_span(
                    "pool.respawn",
                    trace_id,
                    time.perf_counter() - started,
                    worker=worker_id,
                    exitcode=exitcode,
                )

    @property
    def worker_respawns(self) -> int:
        """How many crashed worker slots have been respawned, in total."""
        return sum(slot.respawns for slot in self._slots)

    def worker_pids(self) -> Dict[int, Optional[int]]:
        """OS pid of each live worker process (``None`` for a dead slot).

        For out-of-band inspection — attaching a profiler, reading
        ``/proc/<pid>`` accounting (the S6 overhead benchmark sums worker
        CPU time this way).  Pids change when a crashed slot respawns.
        """
        return {
            worker_id: (slot.process.pid if slot.alive else None)
            for worker_id, slot in enumerate(self._slots)
        }

    def worker_compilations(self) -> Dict[int, int]:
        """Optimizer runs each worker reported (all zero: plans are shipped).

        The compile-once proof, worker side: every served document carries
        the worker's cumulative plan-cache miss count home, and it must
        stay 0 — the parent's cache is the only place compilation happens.
        """
        return {
            worker_id: slot.compiled for worker_id, slot in enumerate(self._slots)
        }

    # ------------------------------------------------------------- serving

    def serve(
        self,
        documents: Iterable[Union[str, io.TextIOBase, DocumentSource]],
        chunk_size: int = 256,
    ) -> Iterator[ServedDocument]:
        """Shard ``documents`` across the worker processes.

        Yields one :class:`ServedDocument` per document, in *completion*
        order, tagged with ``worker`` and source ``index``.  Dispatch is
        demand-driven: the next document is pulled from the source only
        when a worker is idle, so at most ``workers`` documents are in
        flight (plus their results piped) beyond what the consumer has
        taken — a slow consumer pauses the shard.

        **Fault isolation**: a document whose pass raises in the worker
        comes back as ``outcome == "error"`` with the (sanitized)
        exception; a worker process that *dies* mid-document yields an
        error outcome carrying :class:`~repro.errors.WorkerCrashError`
        with the exit code, and the slot is respawned with all plans
        re-shipped — later documents are unaffected.  (A worker that
        manages to send its result and *then* die is not a failed
        document: the result is delivered, the slot quietly respawned.)
        Only an error from the source iterator itself propagates and ends
        the loop.

        Closing the generator early waits for in-flight passes, discards
        their undelivered results, and leaves the fleet alive for the
        next loop.
        """
        self._begin_serving()
        try:
            self._ensure_started()
        except BaseException:
            self._end_serving()
            raise
        source = enumerate(documents)
        source_exhausted = False
        try:
            while True:
                # Dispatch to every idle worker (respawning crashed idle
                # slots as they are discovered).
                while not source_exhausted:
                    idle_id = next(
                        (
                            worker_id
                            for worker_id, slot in enumerate(self._slots)
                            if slot.pending is None
                        ),
                        None,
                    )
                    if idle_id is None:
                        break
                    slot = self._slots[idle_id]
                    if not slot.alive:
                        self._respawn(idle_id)
                    try:
                        index, document = next(source)
                    except StopIteration:
                        source_exhausted = True
                        break
                    document = self._shippable(document)
                    trace_id = (
                        new_trace_id()
                        if self.obs is not None and self.obs.tracer is not None
                        else None
                    )
                    try:
                        slot.inbox.send(("doc", index, document, chunk_size, trace_id))
                    except (BrokenPipeError, OSError):
                        # Died between the liveness check and the send:
                        # hand the document to a fresh worker instead.
                        self._respawn(idle_id, trace_id=trace_id)
                        slot.inbox.send(("doc", index, document, chunk_size, trace_id))
                    slot.pending = index
                    slot.trace = trace_id
                    slot.sent_at = (time.time(), time.perf_counter())
                if source_exhausted and all(
                    slot.pending is None for slot in self._slots
                ):
                    return
                result = self._next_result()
                if result is None:
                    continue
                self._record_outcome(result.worker, result.ok)
                yield result
        finally:
            self._drain_in_flight()
            self._end_serving()

    @staticmethod
    def _shippable(
        document: Union[str, io.TextIOBase, DocumentSource]
    ) -> Union[str, DocumentSource]:
        """A picklable form of ``document`` for the worker inbox.

        Text and :class:`DocumentSource` recipes ship as they are; a live
        file-like object cannot cross the process boundary, so it is
        drained to text *here* — convenient, but it serializes that
        document's delivery on the parent (ship a ``DocumentSource`` when
        delivery should overlap).
        """
        if isinstance(document, (str, DocumentSource)):
            return document
        parts = []
        while True:
            chunk = document.read(_READ_CHUNK)
            if not chunk:
                break
            parts.append(chunk)
        return "".join(parts)

    def _receive(self, worker_id: int) -> Optional[ServedDocument]:
        """Consume one message from a worker's result pipe, if any.

        Returns the delivered :class:`ServedDocument` for ``served``
        messages, raises for ``fatal`` ones, and returns ``None`` when the
        pipe had no complete message (including the EOF a dying worker
        leaves behind — the sentinel path owns that case).
        """
        slot = self._slots[worker_id]
        try:
            if not slot.results.poll():
                return None
            message = slot.results.recv()
        except (EOFError, OSError):
            return None
        kind = message[0]
        if kind == "served":
            _, index, served, compiled_here, spans = message
            slot.pending = None
            slot.compiled = compiled_here
            if served.ok:
                self._slot_metrics[worker_id].record_pass(
                    served.metrics, len(served.results)
                )
            self._fold_worker_observations(slot, served, spans)
            slot.trace = None
            slot.sent_at = None
            return served
        # "fatal": a non-Exception escaped a worker pass; propagate, like
        # the in-process pools do.
        _, index, error = message
        slot.pending = None
        slot.trace = None
        slot.sent_at = None
        raise error

    def _fold_worker_observations(
        self, slot: _WorkerSlot, served: ServedDocument, spans: List[Dict]
    ) -> None:
        """Merge one worker reply's span and metric deltas into the parent.

        Worker-side spans are re-emitted into the parent's tracer — this
        is what makes ``--trace-out`` a *single merged* trace file — and
        their ``pass.<stage>`` durations land in the parent registry's
        stage histograms (the worker has no registry; spans double as the
        stage-latency delta).  The pass-counter delta is the
        :class:`PassMetrics` the served document carries.  A parent-side
        ``pool.shard`` span brackets the document's whole trip through
        the pipes.
        """
        obs = self.obs
        if obs is None:
            return
        if obs.tracer is not None:
            for span in spans:
                obs.tracer.emit(span)
            if slot.trace is not None and slot.sent_at is not None:
                sent_wall, sent_perf = slot.sent_at
                obs.tracer.record(
                    "pool.shard",
                    slot.trace,
                    time.perf_counter() - sent_perf,
                    start=sent_wall,
                    worker=served.worker,
                    index=served.index,
                )
        if obs.metrics is not None:
            for span in spans:
                name = span.get("name", "")
                if name.startswith("pass."):
                    obs.observe_stage(name[5:], span.get("duration_s", 0.0))
            if served.ok:
                record_pass_observations(obs, served.metrics, len(served.results))
        if not served.ok:
            obs.log(
                "pool.fault",
                worker=served.worker,
                index=served.index,
                error=type(served.error).__name__,
                trace_id=slot.trace,
            )

    def _next_result(self) -> Optional[ServedDocument]:
        """One delivered outcome: a worker's result, or a detected crash.

        Multiplexes every live worker's result pipe *and* process sentinel
        through ``connection.wait`` — a result arriving and a worker dying
        are both events.  When a sentinel fires, the dead worker's pipe is
        drained first (a worker may send its result and then exit; that
        document was served, not crashed); only then is a still-pending
        document folded into a :class:`WorkerCrashError` outcome and the
        slot respawned.  Returns ``None`` when the sweep only changed
        fleet state (idle crash, stale wakeup) — the caller re-enters
        dispatch.
        """
        waitables = {}
        for worker_id, slot in enumerate(self._slots):
            if slot.process is None:
                continue
            waitables[slot.results] = worker_id
            waitables[slot.process.sentinel] = worker_id
        ready = connection.wait(list(waitables), timeout=_WAIT_STEP_SECONDS)
        # Results first: anything a worker managed to send counts as
        # served, even if the worker is already gone.
        for item in ready:
            worker_id = waitables[item]
            if item is self._slots[worker_id].results:
                result = self._receive(worker_id)
                if result is not None:
                    return result
        # Then deaths.
        for item in ready:
            worker_id = waitables[item]
            slot = self._slots[worker_id]
            if item is not slot.results and not slot.alive:
                # Drain the last messages the worker sent before dying.
                result = self._receive(worker_id)
                if result is not None:
                    self._respawn_quietly(worker_id)
                    return result
                exitcode = slot.process.exitcode
                pending = slot.pending
                trace = slot.trace
                sent_at = slot.sent_at
                self._respawn(worker_id, trace_id=trace)
                if pending is not None:
                    obs = self.obs
                    if obs is not None:
                        obs.log(
                            "pool.fault",
                            worker=worker_id,
                            index=pending,
                            error="WorkerCrashError",
                            exitcode=exitcode,
                            trace_id=trace,
                        )
                        if trace is not None and sent_at is not None:
                            obs.record_span(
                                "pool.shard",
                                trace,
                                time.perf_counter() - sent_at[1],
                                start=sent_at[0],
                                worker=worker_id,
                                index=pending,
                                outcome="error",
                            )
                    return ServedDocument(
                        index=pending,
                        results={},
                        metrics=PassMetrics(),
                        outcome="error",
                        error=WorkerCrashError(
                            f"worker process {worker_id} died while serving "
                            f"document {pending}",
                            exitcode=exitcode,
                        ),
                        worker=worker_id,
                    )
        return None

    def _respawn_quietly(self, worker_id: int) -> None:
        """Respawn a worker that died *between* documents (result already
        delivered): no outcome to report, just restore the slot."""
        if not self._slots[worker_id].alive:
            self._respawn(worker_id)

    def _drain_in_flight(self) -> None:
        """After a loop ends or is closed early: wait out in-flight passes.

        Undelivered results are discarded (they were never served to
        anyone — the same rule as the thread pool's drain), and workers
        end the loop idle, ready for the next one.  A worker that crashes
        during the drain is respawned without an outcome: the document's
        consumer is gone.
        """
        while any(slot.pending is not None for slot in self._slots):
            for worker_id, slot in enumerate(self._slots):
                if slot.pending is None:
                    continue
                try:
                    self._receive(worker_id)
                except Exception:
                    slot.pending = None
                if slot.pending is not None and not slot.alive:
                    self._respawn(worker_id)
            if any(slot.pending is not None for slot in self._slots):
                connection.wait(
                    [
                        slot.results
                        for slot in self._slots
                        if slot.pending is not None
                    ]
                    + [
                        slot.process.sentinel
                        for slot in self._slots
                        if slot.pending is not None
                    ],
                    timeout=_WAIT_STEP_SECONDS,
                )

    # ------------------------------------------------------------ lifecycle

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop every worker process and release the pipes.

        Live workers get a ``stop`` message (their inbox EOF would do,
        too) and are joined; one that does not exit within
        ``join_timeout`` seconds is terminated.  Safe to call twice; the
        pool cannot serve again afterwards.
        """
        if self._closed:
            return
        self._closed = True
        if self._started:
            for slot in self._slots:
                if slot.alive:
                    try:
                        slot.inbox.send(("stop",))
                    except Exception:
                        pass
            deadline = time.monotonic() + join_timeout
            for slot in self._slots:
                if slot.process is None:
                    continue
                remaining = max(0.0, deadline - time.monotonic())
                slot.process.join(remaining)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(1.0)
                slot.close_channels()

    def __enter__(self) -> "ProcessServicePool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net; daemons die anyway
        try:
            self.close(join_timeout=0.5)
        except Exception:
            pass
