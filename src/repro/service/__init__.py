"""Multi-query streaming service: N standing queries, one document scan.

Public surface:

* :class:`QueryService` — register many XQueries, execute them all in a
  single shared pass with push-based ingestion, driven by worker threads
  or the inline round-robin scheduler (``execution="threads"|"inline"``);
  :meth:`QueryService.serve` is the long-lived loop (one pass per document
  of a stream, registration churn allowed between passes);
* :class:`ServicePool` / :class:`AsyncServicePool` — the fault-isolated
  pool: N mirrored worker services sharing one plan cache shard a document
  stream (threads, or asyncio tasks), yielding per-document results as
  they complete and isolating failing documents into error-tagged
  :class:`ServedDocument` outcomes; :class:`PoolMetrics` aggregates the
  workers' accounting;
* :class:`ProcessServicePool` — the same pool over worker *processes* for
  CPU-bound streams: the parent compiles once through the shared cache and
  ships pickled plan artifacts to the workers (``ship_count`` /
  ``ship_bytes`` in the metrics), evaluation parallelizes across cores,
  and a crashed worker process is respawned with its in-flight document
  error-tagged (:class:`~repro.errors.WorkerCrashError`);
  :class:`FileDocument` / :class:`DocumentSource` let workers materialize
  documents themselves instead of shipping text through the parent;
* :class:`AsyncQueryService` / :class:`AsyncSharedPass` — the asyncio
  ingestion front end over the inline scheduler (coroutine ``feed`` /
  ``finish`` / ``serve``);
* :class:`SharedPass` — one in-flight pass (``feed(text)`` / ``finish()``);
  one pass is in flight per service at a time
  (:class:`~repro.errors.PassInProgressError` guards overlap);
* :class:`PlanCache` / :class:`CacheStats` — the LRU plan cache keyed by
  ``(query text, DTD fingerprint)`` with single-flight compilation.  It
  lives in :mod:`repro.runtime.plan_cache` (re-exported here) so the solo
  ``FluxEngine`` compiles through the very same cache type — and, when
  shared, the same instance — as the service;
* :class:`PlanProfile` / :class:`SharedProjectionIndex` — the static
  analysis behind the per-query event router;
* :class:`ServiceMetrics` / :class:`PassMetrics` — accounting, including
  per-query routed/suppressed event counts; :class:`ServedDocument` — one
  serve-loop step's results and pass metrics.

See ``docs/ARCHITECTURE.md`` for the event flow, lifecycle state machines,
and execution modes.
"""

from repro.errors import PassInProgressError
from repro.runtime.evaluator import EXECUTION_MODES
from repro.runtime.plan_cache import (
    CacheStats,
    PlanCache,
    cache_key,
    dtd_fingerprint,
    structure_key,
)
from repro.service.async_service import AsyncQueryService, AsyncSharedPass
from repro.service.dispatcher import (
    PlanProfile,
    SharedDispatcher,
    SharedProjectionIndex,
)
from repro.service.metrics import PassMetrics, PoolMetrics, ServiceMetrics
from repro.service.pool import AsyncServicePool, ServicePool
from repro.service.pool_core import PoolCore, ServiceBackedPool
from repro.service.process_pool import (
    DocumentSource,
    FileDocument,
    ProcessServicePool,
)
from repro.service.service import QueryService, ServedDocument
from repro.service.session import (
    PlanStructure,
    RegisteredQuery,
    SharedPass,
    SHARED_ENGINE_NAME,
)

__all__ = [
    "QueryService",
    "ServicePool",
    "AsyncServicePool",
    "ProcessServicePool",
    "DocumentSource",
    "FileDocument",
    "PoolCore",
    "ServiceBackedPool",
    "AsyncQueryService",
    "AsyncSharedPass",
    "ServedDocument",
    "SharedPass",
    "RegisteredQuery",
    "PlanStructure",
    "SHARED_ENGINE_NAME",
    "PassInProgressError",
    "PlanCache",
    "CacheStats",
    "cache_key",
    "dtd_fingerprint",
    "structure_key",
    "PlanProfile",
    "SharedDispatcher",
    "SharedProjectionIndex",
    "ServiceMetrics",
    "PassMetrics",
    "PoolMetrics",
    "EXECUTION_MODES",
]
