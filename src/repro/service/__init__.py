"""Multi-query streaming service: N standing queries, one document scan.

Public surface:

* :class:`QueryService` — register many XQueries, execute them all in a
  single shared pass with push-based ingestion, driven by worker threads
  or the inline round-robin scheduler (``execution="threads"|"inline"``);
* :class:`SharedPass` — one in-flight pass (``feed(text)`` / ``finish()``);
* :class:`PlanCache` / :class:`CacheStats` — LRU plan cache keyed by
  ``(query text, DTD fingerprint)``, with single-flight compilation;
* :class:`PlanProfile` / :class:`SharedProjectionIndex` — the static
  analysis behind the per-query event router;
* :class:`ServiceMetrics` / :class:`PassMetrics` — accounting, including
  per-query routed/suppressed event counts.
"""

from repro.runtime.evaluator import EXECUTION_MODES
from repro.service.dispatcher import (
    PlanProfile,
    SharedDispatcher,
    SharedProjectionIndex,
)
from repro.service.metrics import PassMetrics, ServiceMetrics
from repro.service.plan_cache import CacheStats, PlanCache, cache_key, dtd_fingerprint
from repro.service.service import QueryService
from repro.service.session import RegisteredQuery, SharedPass, SHARED_ENGINE_NAME

__all__ = [
    "QueryService",
    "SharedPass",
    "RegisteredQuery",
    "SHARED_ENGINE_NAME",
    "PlanCache",
    "CacheStats",
    "cache_key",
    "dtd_fingerprint",
    "PlanProfile",
    "SharedDispatcher",
    "SharedProjectionIndex",
    "ServiceMetrics",
    "PassMetrics",
    "EXECUTION_MODES",
]
