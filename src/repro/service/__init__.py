"""Multi-query streaming service: N standing queries, one document scan.

Public surface:

* :class:`QueryService` — register many XQueries, execute them all in a
  single shared pass with push-based ingestion;
* :class:`SharedPass` — one in-flight pass (``feed(text)`` / ``finish()``);
* :class:`PlanCache` / :class:`CacheStats` — LRU plan cache keyed by
  ``(query text, DTD fingerprint)``;
* :class:`PlanProfile` / :class:`SharedProjectionIndex` — the static
  analysis behind the shared event filter;
* :class:`ServiceMetrics` / :class:`PassMetrics` — accounting.
"""

from repro.service.dispatcher import (
    PlanProfile,
    SharedDispatcher,
    SharedProjectionIndex,
)
from repro.service.metrics import PassMetrics, ServiceMetrics
from repro.service.plan_cache import CacheStats, PlanCache, cache_key, dtd_fingerprint
from repro.service.service import QueryService
from repro.service.session import RegisteredQuery, SharedPass, SHARED_ENGINE_NAME

__all__ = [
    "QueryService",
    "SharedPass",
    "RegisteredQuery",
    "SHARED_ENGINE_NAME",
    "PlanCache",
    "CacheStats",
    "cache_key",
    "dtd_fingerprint",
    "PlanProfile",
    "SharedDispatcher",
    "SharedProjectionIndex",
    "ServiceMetrics",
    "PassMetrics",
]
