"""Accounting for the multi-query service.

Two layers of counters:

* :class:`PassMetrics` — one shared scan: how many events the parser
  produced, how many survived the shared routing index (``events_forwarded``
  counts events at least one query needed — the number PR 1's union filter
  would have broadcast to *every* session), how many were pruned (whole
  irrelevant subtrees) or dropped (character data no query can observe),
  and — per registered query — how many events were actually routed to it
  (``per_query_forwarded``) versus suppressed for it although some other
  query needed them (``per_query_pruned``).  ``events_saved_vs_solo``
  quantifies the point of the service: with N registered queries, N
  independent runs would have parsed the document N times.
* :class:`ServiceMetrics` — service lifetime: registrations, compilations,
  passes, and the running totals across passes (the substrate of the
  serve loop's cumulative accounting; each pass's own numbers ride on the
  :class:`~repro.service.service.ServedDocument` it produced).  Plan-cache
  hit/miss counts live on the cache itself
  (:class:`repro.runtime.plan_cache.CacheStats`) and are merged into
  :meth:`ServiceMetrics.as_dict` by the service.
* :class:`PoolMetrics` — one :class:`~repro.service.pool.ServicePool`'s
  view across its workers: the per-worker :class:`ServiceMetrics` folded
  into fleet totals, plus the pool's own serve-loop accounting (documents
  delivered vs. fault-isolated failures, by worker).  Built on demand by
  :meth:`PoolMetrics.aggregate` from a snapshot of the worker metrics, so
  it carries no live references.

Thread-safety: these dataclasses are plain counters mutated by the single
thread driving the service/pass; they carry no locks.  Read them between
passes (or after ``finish()``), not while a pass is being fed.  A pool
snapshots its workers between their passes (each worker is single-driver
on its own thread).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence


@dataclass
class PassMetrics:
    """Counters for one shared pass over one document."""

    queries: int = 0
    #: Distinct plan structures evaluated (``<= queries``; each structure
    #: runs one evaluator session whose output fans out to its aliases).
    structures: int = 0
    document_bytes: int = 0
    parser_events: int = 0
    events_forwarded: int = 0
    subtrees_pruned: int = 0
    events_pruned: int = 0
    text_events_dropped: int = 0
    elapsed_seconds: float = 0.0
    #: Events routed to each query (by registration key); always
    #: ``<= events_forwarded``, strictly less for queries sparser than the
    #: fleet's union interest.
    per_query_forwarded: Dict[str, int] = field(default_factory=dict)
    #: Events some other query needed but this one did not — what the
    #: query saves over PR 1's union-filtered broadcast.
    per_query_pruned: Dict[str, int] = field(default_factory=dict)

    @property
    def events_saved_vs_solo(self) -> int:
        """Parser events avoided versus one independent run per query."""
        return max(0, self.queries - 1) * self.parser_events

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "structures": self.structures,
            "document_bytes": self.document_bytes,
            "parser_events": self.parser_events,
            "events_forwarded": self.events_forwarded,
            "subtrees_pruned": self.subtrees_pruned,
            "events_pruned": self.events_pruned,
            "text_events_dropped": self.text_events_dropped,
            "events_saved_vs_solo": self.events_saved_vs_solo,
            "elapsed_seconds": self.elapsed_seconds,
            "per_query_forwarded": dict(self.per_query_forwarded),
            "per_query_pruned": dict(self.per_query_pruned),
        }


@dataclass
class ServiceMetrics:
    """Lifetime counters of one :class:`~repro.service.service.QueryService`."""

    queries_registered: int = 0
    queries_unregistered: int = 0
    #: Registrations displaced by re-registering their key.  The live-query
    #: invariant is ``registered - unregistered - replaced == len(service)``.
    queries_replaced: int = 0
    #: Distinct plan structures acquired (first registration of a
    #: structure) and fully released (last alias dropped).  The live-
    #: structure invariant is ``acquired - released == structure count``.
    structures_registered: int = 0
    structures_released: int = 0
    #: Registrations that joined an already-live structure instead of
    #: bringing a new one — the dedup win.
    queries_deduped: int = 0
    passes_completed: int = 0
    parser_events_total: int = 0
    events_forwarded_total: int = 0
    subtrees_pruned_total: int = 0
    events_pruned_total: int = 0
    text_events_dropped_total: int = 0
    elapsed_seconds_total: float = 0.0
    results_produced: int = 0
    last_pass: PassMetrics = field(default_factory=PassMetrics)

    def record_pass(self, pass_metrics: PassMetrics, results: int) -> None:
        """Fold one completed pass into the lifetime totals."""
        self.passes_completed += 1
        self.parser_events_total += pass_metrics.parser_events
        self.events_forwarded_total += pass_metrics.events_forwarded
        self.subtrees_pruned_total += pass_metrics.subtrees_pruned
        self.events_pruned_total += pass_metrics.events_pruned
        self.text_events_dropped_total += pass_metrics.text_events_dropped
        self.elapsed_seconds_total += pass_metrics.elapsed_seconds
        self.results_produced += results
        self.last_pass = pass_metrics

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries_registered": self.queries_registered,
            "queries_unregistered": self.queries_unregistered,
            "queries_replaced": self.queries_replaced,
            "structures_registered": self.structures_registered,
            "structures_released": self.structures_released,
            "queries_deduped": self.queries_deduped,
            "passes_completed": self.passes_completed,
            "parser_events_total": self.parser_events_total,
            "events_forwarded_total": self.events_forwarded_total,
            "subtrees_pruned_total": self.subtrees_pruned_total,
            "events_pruned_total": self.events_pruned_total,
            "text_events_dropped_total": self.text_events_dropped_total,
            "elapsed_seconds_total": self.elapsed_seconds_total,
            "results_produced": self.results_produced,
            "last_pass": self.last_pass.as_dict(),
        }


@dataclass
class PoolMetrics:
    """Aggregated accounting of one :class:`~repro.service.pool.ServicePool`.

    The fleet totals are the sums of the worker services' cumulative
    :class:`ServiceMetrics`; ``documents_ok`` / ``documents_failed`` are the
    pool serve loops' own outcome counters (a failed document is one the
    pool fault-isolated into an error-tagged
    :class:`~repro.service.service.ServedDocument`; its partial pass never
    reaches a worker's ``passes_completed``).  ``per_worker`` keeps the
    breakdown by worker id for shard-balance inspection.
    """

    workers: int = 0
    documents_ok: int = 0
    documents_failed: int = 0
    passes_completed: int = 0
    results_produced: int = 0
    parser_events_total: int = 0
    events_forwarded_total: int = 0
    subtrees_pruned_total: int = 0
    events_pruned_total: int = 0
    text_events_dropped_total: int = 0
    elapsed_seconds_total: float = 0.0
    #: Plan artifacts shipped to worker processes — one per *distinct
    #: structure* per worker send occasion (initial spawns, first
    #: registration of a structure, crash respawns); alias subscriptions
    #: are not counted.  Zero for the in-process backends, which share
    #: plans by reference.
    ship_count: int = 0
    #: Total pickled-plan payload bytes shipped to worker processes.
    ship_bytes: int = 0
    per_worker: List[Dict[str, int]] = field(default_factory=list)

    @property
    def documents_served(self) -> int:
        """Documents the pool delivered, error-tagged ones included."""
        return self.documents_ok + self.documents_failed

    @classmethod
    def aggregate(
        cls,
        worker_metrics: Sequence[ServiceMetrics],
        documents_ok: Mapping[int, int],
        documents_failed: Mapping[int, int],
        ship_count: int = 0,
        ship_bytes: int = 0,
    ) -> "PoolMetrics":
        """Fold per-worker service metrics and outcome counts into totals."""
        pool = cls(workers=len(worker_metrics), ship_count=ship_count,
                   ship_bytes=ship_bytes)
        for worker_id, metrics in enumerate(worker_metrics):
            ok = documents_ok.get(worker_id, 0)
            failed = documents_failed.get(worker_id, 0)
            pool.documents_ok += ok
            pool.documents_failed += failed
            pool.passes_completed += metrics.passes_completed
            pool.results_produced += metrics.results_produced
            pool.parser_events_total += metrics.parser_events_total
            pool.events_forwarded_total += metrics.events_forwarded_total
            pool.subtrees_pruned_total += metrics.subtrees_pruned_total
            pool.events_pruned_total += metrics.events_pruned_total
            pool.text_events_dropped_total += metrics.text_events_dropped_total
            pool.elapsed_seconds_total += metrics.elapsed_seconds_total
            pool.per_worker.append(
                {
                    "worker": worker_id,
                    "documents_ok": ok,
                    "documents_failed": failed,
                    "passes_completed": metrics.passes_completed,
                    "results_produced": metrics.results_produced,
                    "parser_events_total": metrics.parser_events_total,
                }
            )
        return pool

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "documents_served": self.documents_served,
            "documents_ok": self.documents_ok,
            "documents_failed": self.documents_failed,
            "passes_completed": self.passes_completed,
            "results_produced": self.results_produced,
            "parser_events_total": self.parser_events_total,
            "events_forwarded_total": self.events_forwarded_total,
            "subtrees_pruned_total": self.subtrees_pruned_total,
            "events_pruned_total": self.events_pruned_total,
            "text_events_dropped_total": self.text_events_dropped_total,
            "elapsed_seconds_total": self.elapsed_seconds_total,
            "ship_count": self.ship_count,
            "ship_bytes": self.ship_bytes,
            "per_worker": [dict(entry) for entry in self.per_worker],
        }
