"""Asyncio ingestion front end over the inline scheduler.

PR 2 rewrote the streamed evaluator as re-entrant generators: a per-query
runtime *suspends* when its input starves instead of blocking a worker
thread.  That makes a coroutine driver mechanical — there is no thread to
hand events to, so ``await``-ing between feeds is all the cooperation an
event loop needs.  :class:`AsyncQueryService` packages that:

* it owns an inline-mode :class:`~repro.service.service.QueryService`
  (``execution="inline"`` is forced: the threads mode would block the event
  loop on channel back-pressure, exactly what asyncio must never do);
* :meth:`AsyncQueryService.open_pass` returns an :class:`AsyncSharedPass`
  whose ``await feed(chunk)`` parses, routes, and round-robins the
  suspended evaluations synchronously — the work is CPU-bound and brief per
  chunk — then yields control to the event loop, so a server can interleave
  many connections' chunks with query evaluation on one thread;
* :meth:`AsyncQueryService.serve` is the async serving loop: one pass per
  document, documents from a plain iterable *or* an async iterable (e.g. a
  queue of uploads), with registration changes allowed between passes.

Concurrency contract: this is cooperative single-threaded concurrency, not
parallelism.  One event loop drives the service; like the sync service it
serves one shared pass at a time (``open_pass`` raises
:class:`~repro.errors.PassInProgressError` while one is in flight), and a
pass must be fed from one coroutine.  The plan cache underneath remains
fully thread-safe and may be shared with sync services and engines.
"""

from __future__ import annotations

import asyncio
import io
from typing import AsyncIterator, Dict, Iterable, List, Optional, Union

from repro.dtd.schema import DTD
from repro.engines.base import QueryResult
from repro.obs import Observability
from repro.runtime.plan_cache import PlanCache
from repro.service.metrics import PassMetrics, ServiceMetrics
from repro.service.service import QueryService, ServedDocument, _READ_CHUNK
from repro.service.session import RegisteredQuery, SharedPass


class AsyncSharedPass:
    """One shared pass driven from a coroutine.

    An async wrapper over :class:`~repro.service.session.SharedPass` whose
    sessions are inline (threadless) evaluations.  ``await feed(text)``
    advances parsing, routing, and every suspended per-query evaluation on
    the current thread, then cedes the event loop; ``await finish()``
    closes the input and returns ``{key: QueryResult}``.  Lifecycle mirrors
    the sync pass: single feeder coroutine, idempotent ``finish``, ``abort``
    (sync — it only tears down suspended generators) usable from anywhere,
    and ``async with`` finishing on clean exit / aborting on exception.
    """

    def __init__(self, shared_pass: SharedPass):
        self._pass = shared_pass

    @property
    def metrics(self) -> PassMetrics:
        return self._pass.metrics

    @property
    def aborted(self) -> bool:
        return self._pass.aborted

    async def feed(self, text: str) -> None:
        """Ingest the next chunk, then yield control to the event loop.

        The chunk's full pipeline (incremental parse, shared validation,
        routing, resuming each starved evaluation) runs synchronously on
        the loop's thread — keep chunks reasonably sized to bound the time
        between ``await`` points.  Errors (malformed/invalid input,
        evaluation failures) abort the pass and surface here.
        """
        self._pass.feed(text)
        await asyncio.sleep(0)

    async def finish(self) -> Dict[str, QueryResult]:
        """Close the input and return one result per registered query."""
        results = self._pass.finish()
        await asyncio.sleep(0)
        return results

    def abort(self) -> None:
        """Tear down the pass, discarding partial output (idempotent)."""
        self._pass.abort()

    async def __aenter__(self) -> "AsyncSharedPass":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None or self._pass.aborted:
            self._pass.abort()
        else:
            await self.finish()


async def _iter_documents(documents) -> AsyncIterator[Union[str, io.TextIOBase]]:
    """Yield from a plain iterable or an async iterable of documents."""
    if hasattr(documents, "__aiter__"):
        async for document in documents:
            yield document
    else:
        for document in documents:
            yield document


class AsyncQueryService:
    """The multi-query service behind an asyncio-native API.

    Construction mirrors :class:`~repro.service.service.QueryService`
    (schema, validation flag, shareable plan cache) minus ``execution``:
    the inline scheduler is mandatory, because it is what lets one OS
    thread — the event loop's — interleave ingestion and N query
    evaluations without blocking.

    Registration (:meth:`register` / :meth:`unregister`) is synchronous and
    inherited unchanged: compilation happens at registration time, off the
    serving path (await-free on purpose — a slow optimizer run is a startup
    cost, not a serving stall; share a pre-warmed plan cache to avoid it
    entirely).  All methods must be called from the event loop's thread.
    """

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        validate: bool = True,
        plan_cache: Optional[PlanCache] = None,
        cache_size: int = 128,
        obs: Optional[Observability] = None,
        dedup: bool = True,
    ):
        self._service = QueryService(
            dtd,
            validate=validate,
            plan_cache=plan_cache,
            cache_size=cache_size,
            execution="inline",
            obs=obs,
            dedup=dedup,
        )

    # ------------------------------------------------------- registration

    def register(self, query: str, key: Optional[str] = None) -> RegisteredQuery:
        """Register a standing query (see :meth:`QueryService.register`)."""
        return self._service.register(query, key=key)

    def register_all(self, queries: Iterable[str]) -> List[RegisteredQuery]:
        """Register several queries at once (autogenerated keys)."""
        return self._service.register_all(queries)

    def unregister(self, key: str) -> None:
        """Remove a standing query; unknown keys raise ``KeyError``."""
        self._service.unregister(key)

    @property
    def registrations(self) -> Dict[str, RegisteredQuery]:
        return self._service.registrations

    def __len__(self) -> int:
        return len(self._service)

    # ----------------------------------------------------------- plumbing

    @property
    def service(self) -> QueryService:
        """The wrapped synchronous service (shared metrics and cache)."""
        return self._service

    @property
    def metrics(self) -> ServiceMetrics:
        return self._service.metrics

    @property
    def plan_cache(self) -> PlanCache:
        return self._service.plan_cache

    def stats_summary(self) -> Dict[str, object]:
        """Service metrics plus plan-cache counters, for logs and benches."""
        return self._service.stats_summary()

    # ---------------------------------------------------------- execution

    def open_pass(
        self, chunk_size: int = 256, trace_id: Optional[str] = None
    ) -> AsyncSharedPass:
        """Open a coroutine-driven shared pass over one document.

        One pass at a time, like the sync service: raises
        :class:`~repro.errors.PassInProgressError` while a pass is in
        flight.  (Synchronous on purpose: opening a pass only snapshots
        registrations and builds suspended generators — nothing blocks.)
        """
        return AsyncSharedPass(
            self._service.open_pass(chunk_size=chunk_size, trace_id=trace_id)
        )

    async def run_pass(
        self, document: Union[str, io.TextIOBase]
    ) -> Dict[str, QueryResult]:
        """Run all registered queries over one document in one shared scan.

        ``document`` is XML text, a (synchronous) file-like object — reads
        are chunked, with an ``await`` point per chunk — or an *async
        iterable of text chunks* (e.g. a connection yielding a document as
        it arrives), awaited chunk by chunk so slow delivery never blocks
        the event loop.
        """
        shared_pass = self.open_pass()
        try:
            await self._feed_document(shared_pass, document)
            return await shared_pass.finish()
        except BaseException:
            shared_pass.abort()
            raise

    async def _feed_document(self, shared_pass: AsyncSharedPass, document) -> None:
        if isinstance(document, str):
            await shared_pass.feed(document)
            return
        if hasattr(document, "__aiter__"):
            async for chunk in document:
                await shared_pass.feed(chunk)
            return
        while True:
            # The cooperative-CPU compromise the module docstring documents:
            # a bounded local read; async chunk sources are the non-blocking
            # alternative for slow delivery.
            # async-ok: bounded 64 KiB read of a local file or StringIO
            chunk = document.read(_READ_CHUNK)
            if not chunk:
                break
            await shared_pass.feed(chunk)

    async def serve(
        self,
        documents,
        chunk_size: int = 256,
    ) -> AsyncIterator[ServedDocument]:
        """Async serving loop: one shared pass per document.

        ``documents`` is a plain or *async* iterable of documents, each one
        XML text, a file-like object, or an async iterable of text chunks
        (see :meth:`run_pass`).  Semantics match
        :meth:`QueryService.serve` — per-document registration snapshots,
        churn allowed between passes, ``ValueError`` on an empty service
        (checked *before* the next document is pulled, so catching it,
        registering, and re-serving the same source resumes at the document
        that tripped it), abort-and-propagate on a failing document — with
        an ``await`` point at least once per fed chunk:

        >>> async for served in service.serve(queue):   # doctest: +SKIP
        ...     handle(served.results)
        """
        iterator = _iter_documents(documents)
        index = 0
        while True:
            if not len(self._service):
                raise ValueError(
                    f"serve(): no queries registered when document {index} arrived"
                )
            try:
                document = await iterator.__anext__()
            except StopAsyncIteration:
                return
            shared_pass = self.open_pass(chunk_size=chunk_size)
            try:
                await self._feed_document(shared_pass, document)
                results = await shared_pass.finish()
            except BaseException:
                shared_pass.abort()
                raise
            yield ServedDocument(
                index=index, results=results, metrics=shared_pass.metrics
            )
            index += 1
