"""Registrations and shared-pass sessions of the multi-query service.

A :class:`RegisteredQuery` is one standing query: its source text, its
cached compilation, and the :class:`PlanStructure` it subscribes to — the
distinct computation it shares with every structurally identical
registration (same :func:`~repro.runtime.plan_cache.structure_key`).  A
:class:`SharedPass` is one push-based scan of one document executing all
registered queries: the service's incremental parser turns text chunks
into events, the shared dispatcher filters them once, and each *structure*
(not each registration) runs one
:class:`~repro.runtime.evaluator.EvaluatorSession` consuming the fan-out
on its own worker.  ``finish()`` joins everything and returns one
:class:`~repro.engines.base.QueryResult` per registration — aliases of one
structure receive the same evaluated output — byte-identical to a solo
``FluxEngine.execute`` of the same query over the same document.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.dtd.schema import DTD
from repro.dtd.validator import StreamingValidator
from repro.engines.base import QueryResult
from repro.obs import Observability, new_span_id, new_trace_id
from repro.runtime.compiler import CompiledQueryPlan
from repro.runtime.evaluator import EvaluatorSession
from repro.runtime.plan_cache import structure_key
from repro.service.dispatcher import PlanProfile, SharedDispatcher, SharedProjectionIndex
from repro.service.metrics import PassMetrics
from repro.xmlstream.parser import StreamingXMLParser

#: Engine label stamped on results produced by a shared pass.
SHARED_ENGINE_NAME = "flux-shared"

#: The pass stage taxonomy, in pipeline order.
PASS_STAGES = ("parse", "route", "dispatch", "evaluate", "emit")


def record_pass_observations(
    obs: Optional[Observability], pass_metrics: PassMetrics, results: int
) -> None:
    """Push one finished pass's counters into the metrics registry.

    Shared by :meth:`SharedPass.finish` (passes that run where the
    registry lives) and the :class:`~repro.service.process_pool
    .ProcessServicePool` parent, which calls it with the
    :class:`PassMetrics` each worker ships home — the "metric deltas"
    folding that keeps one registry describing the whole fleet.
    """
    if obs is None or obs.metrics is None:
        return
    registry = obs.metrics
    registry.counter(
        "repro_passes_total", "Shared passes completed."
    ).inc()
    registry.counter(
        "repro_results_total", "Per-query results produced by shared passes."
    ).inc(results)
    registry.counter(
        "repro_document_bytes_total", "Document bytes ingested by shared passes."
    ).inc(pass_metrics.document_bytes)
    events = registry.counter(
        "repro_events_total", "Parser events by routing outcome."
    )
    events.inc(pass_metrics.events_forwarded, outcome="forwarded")
    events.inc(pass_metrics.events_pruned, outcome="pruned")
    events.inc(pass_metrics.text_events_dropped, outcome="text_dropped")
    registry.counter(
        "repro_subtrees_pruned_total", "Whole subtrees skipped by the shared router."
    ).inc(pass_metrics.subtrees_pruned)
    registry.histogram(
        "repro_pass_duration_seconds", "End-to-end duration of one shared pass."
    ).observe(pass_metrics.elapsed_seconds)


class PlanStructure:
    """One distinct computation shared by structurally identical registrations.

    Identified by its :func:`~repro.runtime.plan_cache.structure_key`: every
    registration whose query is the same computation (identical parsed-AST
    and plan trees up to variable renaming, same DTD fingerprint and
    pipeline config) subscribes to one ``PlanStructure``, and a shared pass
    evaluates each structure exactly once.  The service refcounts
    subscribers so dropping one alias never tears down a structure another
    registration still needs; ``refcount`` mutates only under the service's
    single-driver contract (between passes).
    """

    def __init__(self, skey: str, entry: CompiledQueryPlan):
        self.skey = skey
        self.entry = entry
        self.profile = PlanProfile(entry)
        #: Live registrations subscribed to this structure.
        self.refcount = 0
        #: Shared passes that evaluated this structure.
        self.passes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanStructure({self.skey[:12]!r}, refcount={self.refcount})"


class RegisteredQuery:
    """One standing query registered with a :class:`QueryService`.

    Lifecycle: created by ``register()``, lives until unregistered or
    replaced, and is *shared* by every pass that snapshots it — the compiled
    plan and the :class:`PlanStructure` it subscribes to are immutable, so
    reuse across passes is free.  Only ``passes`` mutates (incremented by
    each finishing pass), under the service's single-driver contract.

    ``source`` is the text *as registered* — under plan-cache interning the
    shared ``entry`` may carry an alias's differently-spelled (but
    structurally identical) text, and results must echo what this
    registrant submitted.  A registration constructed without an explicit
    ``structure`` gets a private one (no cross-registration sharing), which
    is exactly the service's ``dedup=False`` behavior.
    """

    def __init__(
        self,
        key: str,
        entry: CompiledQueryPlan,
        from_cache: bool,
        structure: Optional[PlanStructure] = None,
        source: Optional[str] = None,
    ):
        self.key = key
        self.entry = entry
        #: Whether registration was served from the plan cache.
        self.from_cache = from_cache
        if structure is None:
            # Private structure: no cross-registration sharing, but the
            # same refcount discipline (this registration is its one
            # subscriber) so release paths need no special case.
            structure = PlanStructure(structure_key(entry), entry)
            structure.refcount = 1
        self.structure = structure
        self.source = source if source is not None else entry.source
        self.passes = 0

    @property
    def profile(self) -> PlanProfile:
        return self.structure.profile

    @property
    def static_cost(self) -> float:
        """Predicted per-document cost score of this query's plan.

        Computed (and memoized) by the static analyzer
        (:func:`repro.analysis.query.cost.static_cost`) — the pricing
        figure admission control reads to charge a registration before it
        has ever run.  Lazy, so registration itself stays analysis-free;
        shared across aliases via the memo on the compiled entry.
        """
        from repro.analysis.query.cost import static_cost

        return static_cost(self.entry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisteredQuery({self.key!r}, cached={self.from_cache})"


class _StructureRun:
    """One structure's execution inside one shared pass.

    Evaluates the structure's plan once and fans the finished output out to
    every subscribing registration in the pass (:meth:`results`), so N
    aliases of one computation cost one evaluator session, not N.
    """

    def __init__(
        self, group: List[RegisteredQuery], dtd: Optional[DTD], execution: str
    ):
        self.group = group
        self.structure = group[0].structure
        # Validation runs once, in the dispatcher, over the unfiltered
        # stream; the per-structure XSAX readers only track on-first
        # conditions.
        self.session = EvaluatorSession(
            self.structure.entry.plan, dtd, validate=False, execution=execution
        ).start()

    def feed(self, chunk) -> None:
        self.session.feed(chunk)

    def results(self) -> List[QueryResult]:
        """Finish the session and build one result per subscriber.

        The evaluated output string is shared by reference across the
        group's results (it is immutable); each result still echoes its own
        registration's source text.
        """
        output, stats = self.session.finish()
        return [
            QueryResult(
                output=output,
                stats=stats,
                engine=SHARED_ENGINE_NAME,
                query=reg.source,
            )
            for reg in self.group
        ]


class SharedPass:
    """One shared single-pass execution of all registered queries.

    Documents are pushed as text with :meth:`feed` (any chunking) and closed
    with :meth:`finish`, which returns ``{key: QueryResult}``.  ``execution``
    selects how the per-structure runtimes are driven: ``"threads"`` (one
    worker per distinct structure behind a bounded channel) or ``"inline"``
    (the dispatcher round-robins re-entrant evaluations on the feeding
    thread).

    A failing pass (malformed or invalid input) aborts every per-structure
    session before re-raising, so no worker leaks; an aborted pass rejects
    further :meth:`feed`/:meth:`finish` calls with :class:`ValueError`
    rather than touching its dead sessions.  The pass is also a context
    manager — leaving the ``with`` block finishes it (or aborts it on an
    exception; a block left after a manual :meth:`abort` stays aborted) —
    and a pass dropped without either call is aborted by its finalizer, so
    an abandoned pass cannot strand its per-query worker threads blocked on
    input that will never arrive.

    Lifecycle: ``open → (feed)* → finish`` or ``open → (feed)* → abort``;
    ``finish`` is idempotent (later calls return the same results) and a
    finished or aborted pass is *closed* — it releases its slot on the
    owning :class:`~repro.service.service.QueryService`, which serves one
    pass at a time.  Thread-safety: a pass is single-driver — all ``feed``/
    ``finish`` calls must come from one thread (or one coroutine); only
    ``abort`` may be called from elsewhere.
    """

    def __init__(
        self,
        registrations: List[RegisteredQuery],
        dtd: Optional[DTD],
        validate: bool,
        chunk_size: int = 256,
        on_complete=None,
        execution: str = "threads",
        on_close=None,
        obs: Optional[Observability] = None,
        trace_id: Optional[str] = None,
    ):
        if not registrations:
            raise ValueError("a shared pass needs at least one registered query")
        self._registrations = list(registrations)
        self._metrics = PassMetrics(queries=len(self._registrations))
        # abort() is the one cross-thread entry point (a pool driver may
        # abort a pass its worker is feeding), so the aborted/closed
        # transitions are real test-and-sets: without the lock two racing
        # abort() calls could both log pass.abort, and a finalizer racing
        # finish() could release the service's active-pass slot twice.
        self._state_lock = threading.Lock()
        self._aborted = False  # guarded-by: _state_lock
        self._closed = False  # guarded-by: _state_lock
        self._on_close = on_close
        # Observability is decided once here, never per event: with obs off
        # (the default) feed/finish run the original untimed code path.
        self._obs = obs
        self._times: Optional[Dict[str, float]] = (
            {stage: 0.0 for stage in PASS_STAGES}
            if obs is not None and obs.timing_enabled
            else None
        )
        self.trace_id = (
            (trace_id or new_trace_id())
            if obs is not None and obs.tracer is not None
            else trace_id
        )
        #: Span id of this pass's span — stage spans and pool spans parent
        #: to it.  Minted eagerly; the span itself is emitted at finish.
        self.span_id = new_span_id() if self.trace_id is not None else None
        self._start_wall = time.time()
        if obs is not None:
            obs.log(
                "pass.start",
                trace_id=self.trace_id,
                queries=len(self._registrations),
                execution=execution,
            )
        self._results: Optional[Dict[str, QueryResult]] = None
        self._runs: List[_StructureRun] = []
        # Group registrations by structure identity (aliases of one
        # computation share a PlanStructure object): one evaluator run and
        # one routing-index group per structure, insertion-ordered so
        # results and fan-out stay deterministic.
        groups: Dict[int, List[RegisteredQuery]] = {}
        for reg in self._registrations:
            groups.setdefault(id(reg.structure), []).append(reg)
        grouped = list(groups.values())
        self._metrics.structures = len(grouped)
        try:
            for group in grouped:
                self._runs.append(_StructureRun(group, dtd, execution))
            self._index = SharedProjectionIndex(
                (run.structure.profile for run in self._runs),
                self._metrics,
                keys=[[reg.key for reg in run.group] for run in self._runs],
            )
            validator = StreamingValidator(dtd) if (validate and dtd is not None) else None
            self._dispatcher = SharedDispatcher(
                self._index, self._runs, validator=validator, chunk_size=chunk_size
            )
            self._parser = StreamingXMLParser.incremental()
        except BaseException:
            # Construction failed after the Kth session started: release
            # every worker that did start instead of stranding it on a
            # channel that will never be fed or closed.
            self.abort()
            raise
        self._on_complete = on_complete
        self._started_at = time.perf_counter()

    @property
    def metrics(self) -> PassMetrics:
        return self._metrics

    @property
    def registrations(self) -> List[RegisteredQuery]:
        """The registration snapshot this pass executes (copy).

        Registered/replaced/unregistered queries on the service do not
        affect an open pass; callers folding pass results back into
        per-plan records (observation recording, admission pricing) need
        the snapshot, not the service's live table.
        """
        return list(self._registrations)

    @property
    def aborted(self) -> bool:
        return self._aborted  # unguarded: monotonic flag, single-driver reader; a racing abort lands on the next call

    def feed(self, text: str) -> None:
        """Push the next chunk of document text into the pass."""
        if self._aborted:  # unguarded: monotonic flag, single-driver reader; a racing abort lands on the next call
            raise ValueError("feed() on an aborted pass")
        if self._results is not None:
            raise ValueError("feed() after finish()")
        # len(text) counts characters; the reported metric is bytes.
        self._metrics.document_bytes += len(text.encode("utf-8"))
        try:
            if self._times is None:
                self._dispatcher.dispatch(self._parser.feed(text))
            else:
                self._dispatch_timed(text)
        except BaseException:
            self.abort()
            raise

    def _dispatch_timed(self, text: Optional[str]) -> None:
        """One timed feed (or, with ``text=None``, the closing feed).

        Parsing is materialized so its time separates from routing; the
        dispatcher's timed twin splits the rest.  Only entered when
        metrics or tracing are on.
        """
        times = self._times
        started = time.perf_counter()
        events = list(self._parser.feed(text) if text is not None else self._parser.close())
        times["parse"] += time.perf_counter() - started
        self._dispatcher.dispatch_timed(events, times)

    def finish(self) -> Dict[str, QueryResult]:
        """Close the input and return one result per registered query."""
        if self._aborted:  # unguarded: monotonic flag, single-driver reader; a racing abort lands on the next call
            raise ValueError("finish() on an aborted pass")
        if self._results is None:
            times = self._times
            try:
                if times is None:
                    self._dispatcher.dispatch(self._parser.close())
                    self._dispatcher.flush()
                else:
                    self._dispatch_timed(None)
                    self._dispatcher.flush_timed(times)
            except BaseException:
                self.abort()
                raise
            results: Dict[str, QueryResult] = {}
            emit_started = time.perf_counter()
            try:
                for run in self._runs:
                    for reg, result in zip(run.group, run.results()):
                        results[reg.key] = result
                        reg.passes += 1
                    run.structure.passes += 1
            except BaseException:
                self.abort()
                raise
            if times is not None:
                times["emit"] += time.perf_counter() - emit_started
            self._metrics.elapsed_seconds = time.perf_counter() - self._started_at
            self._index.finalize_metrics()
            self._results = results
            if self._on_complete is not None:
                self._on_complete(self._metrics, len(results))
            self._observe_finish(len(results))
            self._close()
        return self._results

    def _observe_finish(self, results: int) -> None:
        """Emit the finished pass's metrics, spans, and log event."""
        obs = self._obs
        if obs is None:
            return
        times = self._times
        if times is not None:
            for stage, duration in times.items():
                obs.observe_stage(stage, duration)
        record_pass_observations(obs, self._metrics, results)
        if obs.tracer is not None and self.trace_id is not None:
            for stage in PASS_STAGES:
                obs.tracer.record(
                    f"pass.{stage}",
                    self.trace_id,
                    times[stage],
                    parent_id=self.span_id,
                )
            obs.tracer.record(
                "pass",
                self.trace_id,
                self._metrics.elapsed_seconds,
                span_id=self.span_id,
                start=self._start_wall,
                queries=self._metrics.queries,
                parser_events=self._metrics.parser_events,
            )
        obs.log(
            "pass.finish",
            trace_id=self.trace_id,
            results=results,
            parser_events=self._metrics.parser_events,
            elapsed_seconds=self._metrics.elapsed_seconds,
        )

    def abort(self) -> None:
        """Tear down all per-structure sessions, discarding partial output.

        Idempotent, callable from any state (including mid-construction);
        the first call releases the pass's slot on the owning service.
        """
        with self._state_lock:
            first = not self._aborted
            self._aborted = True
        for run in self._runs:
            run.session.abort()
        if first and self._results is None and self._obs is not None:
            try:
                self._obs.log("pass.abort", trace_id=self.trace_id)
            except Exception:  # never let logging break teardown
                pass
        self._close()

    def _close(self) -> None:
        """Release the service's active-pass slot, exactly once."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        # The callback runs outside the lock: it re-enters the service
        # (slot release) and must not nest under pass state.
        if self._on_close is not None:
            self._on_close(self)

    def __enter__(self) -> "SharedPass":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None or self._aborted:  # unguarded: monotonic flag, single-driver reader; a racing abort lands on the next call
            self.abort()
        else:
            self.finish()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._results is None:
                self.abort()
        except Exception:
            pass
