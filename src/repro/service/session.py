"""Registrations and shared-pass sessions of the multi-query service.

A :class:`RegisteredQuery` is one standing query: its source text, its
cached compilation, and its statically derived
:class:`~repro.service.dispatcher.PlanProfile`.  A :class:`SharedPass` is
one push-based scan of one document executing *all* registered queries: the
service's incremental parser turns text chunks into events, the shared
dispatcher filters them once, and each query's
:class:`~repro.runtime.evaluator.EvaluatorSession` consumes the fan-out on
its own worker.  ``finish()`` joins everything and returns one
:class:`~repro.engines.base.QueryResult` per query, byte-identical to a
solo ``FluxEngine.execute`` of the same query over the same document.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.dtd.schema import DTD
from repro.dtd.validator import StreamingValidator
from repro.engines.base import QueryResult
from repro.runtime.compiler import CompiledQueryPlan
from repro.runtime.evaluator import EvaluatorSession
from repro.service.dispatcher import PlanProfile, SharedDispatcher, SharedProjectionIndex
from repro.service.metrics import PassMetrics
from repro.xmlstream.parser import StreamingXMLParser

#: Engine label stamped on results produced by a shared pass.
SHARED_ENGINE_NAME = "flux-shared"


class RegisteredQuery:
    """One standing query registered with a :class:`QueryService`.

    Lifecycle: created by ``register()``, lives until unregistered or
    replaced, and is *shared* by every pass that snapshots it — the compiled
    plan and :class:`~repro.service.dispatcher.PlanProfile` are immutable,
    so reuse across passes is free.  Only ``passes`` mutates (incremented by
    each finishing pass), under the service's single-driver contract.
    """

    def __init__(self, key: str, entry: CompiledQueryPlan, from_cache: bool):
        self.key = key
        self.entry = entry
        #: Whether registration was served from the plan cache.
        self.from_cache = from_cache
        self.profile = PlanProfile(entry)
        self.passes = 0

    @property
    def source(self) -> str:
        return self.entry.source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisteredQuery({self.key!r}, cached={self.from_cache})"


class _QueryRun:
    """One query's execution inside one shared pass."""

    def __init__(self, registration: RegisteredQuery, dtd: Optional[DTD], execution: str):
        self.registration = registration
        # Validation runs once, in the dispatcher, over the unfiltered
        # stream; the per-query XSAX readers only track on-first conditions.
        self.session = EvaluatorSession(
            registration.entry.plan, dtd, validate=False, execution=execution
        ).start()

    def feed(self, chunk) -> None:
        self.session.feed(chunk)

    def result(self) -> QueryResult:
        output, stats = self.session.finish()
        return QueryResult(
            output=output,
            stats=stats,
            engine=SHARED_ENGINE_NAME,
            query=self.registration.source,
        )


class SharedPass:
    """One shared single-pass execution of all registered queries.

    Documents are pushed as text with :meth:`feed` (any chunking) and closed
    with :meth:`finish`, which returns ``{key: QueryResult}``.  ``execution``
    selects how the per-query runtimes are driven: ``"threads"`` (one
    worker per query behind a bounded channel) or ``"inline"`` (the
    dispatcher round-robins re-entrant evaluations on the feeding thread).

    A failing pass (malformed or invalid input) aborts every per-query
    session before re-raising, so no worker leaks; an aborted pass rejects
    further :meth:`feed`/:meth:`finish` calls with :class:`ValueError`
    rather than touching its dead sessions.  The pass is also a context
    manager — leaving the ``with`` block finishes it (or aborts it on an
    exception; a block left after a manual :meth:`abort` stays aborted) —
    and a pass dropped without either call is aborted by its finalizer, so
    an abandoned pass cannot strand its per-query worker threads blocked on
    input that will never arrive.

    Lifecycle: ``open → (feed)* → finish`` or ``open → (feed)* → abort``;
    ``finish`` is idempotent (later calls return the same results) and a
    finished or aborted pass is *closed* — it releases its slot on the
    owning :class:`~repro.service.service.QueryService`, which serves one
    pass at a time.  Thread-safety: a pass is single-driver — all ``feed``/
    ``finish`` calls must come from one thread (or one coroutine); only
    ``abort`` may be called from elsewhere.
    """

    def __init__(
        self,
        registrations: List[RegisteredQuery],
        dtd: Optional[DTD],
        validate: bool,
        chunk_size: int = 256,
        on_complete=None,
        execution: str = "threads",
        on_close=None,
    ):
        if not registrations:
            raise ValueError("a shared pass needs at least one registered query")
        self._registrations = list(registrations)
        self._metrics = PassMetrics(queries=len(self._registrations))
        self._aborted = False
        self._closed = False
        self._on_close = on_close
        self._results: Optional[Dict[str, QueryResult]] = None
        self._runs: List[_QueryRun] = []
        try:
            for reg in self._registrations:
                self._runs.append(_QueryRun(reg, dtd, execution))
            self._index = SharedProjectionIndex(
                (reg.profile for reg in self._registrations),
                self._metrics,
                keys=[reg.key for reg in self._registrations],
            )
            validator = StreamingValidator(dtd) if (validate and dtd is not None) else None
            self._dispatcher = SharedDispatcher(
                self._index, self._runs, validator=validator, chunk_size=chunk_size
            )
            self._parser = StreamingXMLParser.incremental()
        except BaseException:
            # Construction failed after the Kth session started: release
            # every worker that did start instead of stranding it on a
            # channel that will never be fed or closed.
            self.abort()
            raise
        self._on_complete = on_complete
        self._started_at = time.perf_counter()

    @property
    def metrics(self) -> PassMetrics:
        return self._metrics

    @property
    def aborted(self) -> bool:
        return self._aborted

    def feed(self, text: str) -> None:
        """Push the next chunk of document text into the pass."""
        if self._aborted:
            raise ValueError("feed() on an aborted pass")
        if self._results is not None:
            raise ValueError("feed() after finish()")
        # len(text) counts characters; the reported metric is bytes.
        self._metrics.document_bytes += len(text.encode("utf-8"))
        try:
            self._dispatcher.dispatch(self._parser.feed(text))
        except BaseException:
            self.abort()
            raise

    def finish(self) -> Dict[str, QueryResult]:
        """Close the input and return one result per registered query."""
        if self._aborted:
            raise ValueError("finish() on an aborted pass")
        if self._results is None:
            try:
                self._dispatcher.dispatch(self._parser.close())
                self._dispatcher.flush()
            except BaseException:
                self.abort()
                raise
            results: Dict[str, QueryResult] = {}
            try:
                for run in self._runs:
                    results[run.registration.key] = run.result()
                    run.registration.passes += 1
            except BaseException:
                self.abort()
                raise
            self._metrics.elapsed_seconds = time.perf_counter() - self._started_at
            self._index.finalize_metrics()
            self._results = results
            if self._on_complete is not None:
                self._on_complete(self._metrics, len(results))
            self._close()
        return self._results

    def abort(self) -> None:
        """Tear down all per-query sessions, discarding partial output.

        Idempotent, callable from any state (including mid-construction);
        the first call releases the pass's slot on the owning service.
        """
        self._aborted = True
        for run in self._runs:
            run.session.abort()
        self._close()

    def _close(self) -> None:
        """Release the service's active-pass slot, exactly once."""
        if self._closed:
            return
        self._closed = True
        if self._on_close is not None:
            self._on_close(self)

    def __enter__(self) -> "SharedPass":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None or self._aborted:
            self.abort()
        else:
            self.finish()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._results is None:
                self.abort()
        except Exception:
            pass
