"""DTD substrate.

Parsing of document type definitions, content-model automata, streaming
validation, and — most importantly for the paper — extraction of the schema
constraints that drive the FluX optimizer:

* cardinality constraints (``a ∈ ||≤1 r``),
* order constraints (all ``a`` children precede all ``b`` children),
* co-occurrence (language) constraints (``a`` and ``b`` never appear among
  the same element's children),
* "past" reachability tables used by the XSAX parser to fire
  ``on-first past(X)`` events.
"""

from repro.dtd.model import (
    ANY,
    EMPTY,
    PCDATA,
    Choice,
    ContentParticle,
    ElementDecl,
    Name,
    OneOrMore,
    Optional_,
    Sequence,
    ZeroOrMore,
)
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.dtd.automaton import ContentModelAutomaton, build_automaton
from repro.dtd.constraints import SchemaConstraints
from repro.dtd.validator import StreamingValidator, validate_events, validate_tree

__all__ = [
    "DTD",
    "ElementDecl",
    "ContentParticle",
    "Name",
    "Sequence",
    "Choice",
    "ZeroOrMore",
    "OneOrMore",
    "Optional_",
    "PCDATA",
    "EMPTY",
    "ANY",
    "parse_dtd",
    "ContentModelAutomaton",
    "build_automaton",
    "SchemaConstraints",
    "StreamingValidator",
    "validate_events",
    "validate_tree",
]
