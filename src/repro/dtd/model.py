"""Content-model AST for DTD element declarations.

A DTD element declaration ``<!ELEMENT book (title,(author+|editor+),price)>``
is represented as an :class:`ElementDecl` whose content model is a tree of
:class:`ContentParticle` nodes.  The particle algebra is the standard one:

* :class:`Name` — a child element name,
* :class:`Sequence` — ``(a, b, c)``,
* :class:`Choice` — ``(a | b | c)``,
* :class:`ZeroOrMore`, :class:`OneOrMore`, :class:`Optional_` — ``*``, ``+``,
  ``?`` postfix operators,
* the special models :data:`PCDATA` (text-only / mixed), :data:`EMPTY`, and
  :data:`ANY`.

Mixed content ``(#PCDATA | a | b)*`` is modelled as
``ZeroOrMore(Choice(PCDATA, a, b))``; the automaton construction ignores the
PCDATA alternative (text is always allowed in mixed models, never allowed in
element-only models).

The module also provides the structural analyses the optimizer needs directly
on the AST: the set of labels a model mentions, per-label minimum and maximum
occurrence counts, and nullability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence as Seq, Tuple

#: Symbolic infinity for occurrence counts (``a*`` allows unboundedly many a).
INFINITY = float("inf")


class ContentParticle:
    """Base class for content-model nodes.

    Particles are frozen dataclasses with ``__slots__``, which breaks
    default pickling: slot state is restored with ``setattr``, and frozen
    dataclasses forbid it (``FrozenInstanceError``).  Compiled query plans
    embed particles (through the DTD baked into every plan), and the
    multi-process service pool ships plans between processes by pickle, so
    the base class restores slot state through ``object.__setattr__`` —
    the same door the generated ``__init__`` uses.
    """

    __slots__ = ()

    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def labels(self) -> FrozenSet[str]:
        """All child element names mentioned anywhere in this particle."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Whether the empty word is accepted by this particle."""
        raise NotImplementedError

    def max_count(self, label: str) -> float:
        """Maximum number of ``label`` occurrences over all accepted words."""
        raise NotImplementedError

    def min_count(self, label: str) -> float:
        """Minimum number of ``label`` occurrences over all accepted words."""
        raise NotImplementedError

    def to_dtd_syntax(self) -> str:
        """Render this particle in DTD syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_dtd_syntax()


@dataclass(frozen=True, repr=False)
class Name(ContentParticle):
    """A single child element name."""

    name: str

    __slots__ = ("name",)

    def labels(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def nullable(self) -> bool:
        return False

    def max_count(self, label: str) -> float:
        return 1 if label == self.name else 0

    def min_count(self, label: str) -> float:
        return 1 if label == self.name else 0

    def to_dtd_syntax(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class _Special(ContentParticle):
    """EMPTY / ANY / #PCDATA leaves."""

    kind: str

    __slots__ = ("kind",)

    def labels(self) -> FrozenSet[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def max_count(self, label: str) -> float:
        # ANY allows anything; constraints derived from ANY must be vacuous.
        return INFINITY if self.kind == "ANY" else 0

    def min_count(self, label: str) -> float:
        return 0

    def to_dtd_syntax(self) -> str:
        return "#PCDATA" if self.kind == "PCDATA" else self.kind

    def __reduce__(self):
        # The three special models are singletons compared by identity
        # (``content is EMPTY`` in :meth:`ElementDecl.to_dtd_syntax`), so a
        # pickle round-trip must hand back the module-level instance, not a
        # structurally equal copy.
        return (_special_instance, (self.kind,))


#: Text-only content (``(#PCDATA)``).
PCDATA = _Special("PCDATA")
#: Empty content (``EMPTY``).
EMPTY = _Special("EMPTY")
#: Unconstrained content (``ANY``).
ANY = _Special("ANY")

_SPECIALS = {"PCDATA": PCDATA, "EMPTY": EMPTY, "ANY": ANY}


def _special_instance(kind: str) -> _Special:
    """Unpickling hook: resolve a special model back to its singleton."""
    return _SPECIALS[kind]


@dataclass(frozen=True, repr=False)
class Sequence(ContentParticle):
    """Concatenation ``(p1, p2, ..., pn)``."""

    parts: Tuple[ContentParticle, ...]

    __slots__ = ("parts",)

    def labels(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.labels()
        return result

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def max_count(self, label: str) -> float:
        return sum(part.max_count(label) for part in self.parts)

    def min_count(self, label: str) -> float:
        return sum(part.min_count(label) for part in self.parts)

    def to_dtd_syntax(self) -> str:
        return "(" + ",".join(part.to_dtd_syntax() for part in self.parts) + ")"


@dataclass(frozen=True, repr=False)
class Choice(ContentParticle):
    """Alternation ``(p1 | p2 | ... | pn)``."""

    parts: Tuple[ContentParticle, ...]

    __slots__ = ("parts",)

    def labels(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.labels()
        return result

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def max_count(self, label: str) -> float:
        return max(part.max_count(label) for part in self.parts)

    def min_count(self, label: str) -> float:
        return min(part.min_count(label) for part in self.parts)

    def to_dtd_syntax(self) -> str:
        return "(" + "|".join(part.to_dtd_syntax() for part in self.parts) + ")"


@dataclass(frozen=True, repr=False)
class ZeroOrMore(ContentParticle):
    """Kleene star ``p*``."""

    part: ContentParticle

    __slots__ = ("part",)

    def labels(self) -> FrozenSet[str]:
        return self.part.labels()

    def nullable(self) -> bool:
        return True

    def max_count(self, label: str) -> float:
        return INFINITY if self.part.max_count(label) > 0 else 0

    def min_count(self, label: str) -> float:
        return 0

    def to_dtd_syntax(self) -> str:
        return self.part.to_dtd_syntax() + "*"


@dataclass(frozen=True, repr=False)
class OneOrMore(ContentParticle):
    """``p+``."""

    part: ContentParticle

    __slots__ = ("part",)

    def labels(self) -> FrozenSet[str]:
        return self.part.labels()

    def nullable(self) -> bool:
        return self.part.nullable()

    def max_count(self, label: str) -> float:
        return INFINITY if self.part.max_count(label) > 0 else 0

    def min_count(self, label: str) -> float:
        return self.part.min_count(label)

    def to_dtd_syntax(self) -> str:
        return self.part.to_dtd_syntax() + "+"


@dataclass(frozen=True, repr=False)
class Optional_(ContentParticle):
    """``p?``."""

    part: ContentParticle

    __slots__ = ("part",)

    def labels(self) -> FrozenSet[str]:
        return self.part.labels()

    def nullable(self) -> bool:
        return True

    def max_count(self, label: str) -> float:
        return self.part.max_count(label)

    def min_count(self, label: str) -> float:
        return 0

    def to_dtd_syntax(self) -> str:
        return self.part.to_dtd_syntax() + "?"


def sequence(*parts: ContentParticle) -> ContentParticle:
    """Build a :class:`Sequence`, collapsing the single-element case."""
    if len(parts) == 1:
        return parts[0]
    return Sequence(tuple(parts))


def choice(*parts: ContentParticle) -> ContentParticle:
    """Build a :class:`Choice`, collapsing the single-element case."""
    if len(parts) == 1:
        return parts[0]
    return Choice(tuple(parts))


@dataclass(frozen=True)
class AttributeDecl:
    """A single attribute declaration from an ``<!ATTLIST>``."""

    element: str
    name: str
    attr_type: str = "CDATA"
    default: str = "#IMPLIED"


@dataclass(frozen=True, repr=False)
class ElementDecl:
    """``<!ELEMENT name content-model>``.

    ``mixed`` is true for ``(#PCDATA ...)`` models, where character data may
    appear between child elements; for element-only models text children are
    invalid.  ``content`` is the particle over child *element* names only
    (PCDATA removed), or :data:`PCDATA` / :data:`EMPTY` / :data:`ANY`.
    """

    name: str
    content: ContentParticle
    mixed: bool = False

    def child_labels(self) -> FrozenSet[str]:
        """Element names that may occur as children."""
        return self.content.labels()

    def allows_text(self) -> bool:
        """Whether character data is allowed directly under this element."""
        return self.mixed or self.content in (PCDATA, ANY)

    def to_dtd_syntax(self) -> str:
        if self.content is EMPTY:
            body = "EMPTY"
        elif self.content is ANY:
            body = "ANY"
        elif self.content is PCDATA and not self.mixed:
            body = "(#PCDATA)"
        elif self.mixed:
            names = sorted(self.content.labels())
            inner = "|".join(["#PCDATA"] + names)
            body = f"({inner})*"
        else:
            body = self.content.to_dtd_syntax()
            if not body.startswith("("):
                body = f"({body})"
        return f"<!ELEMENT {self.name} {body}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_dtd_syntax()
