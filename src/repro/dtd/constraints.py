"""Schema constraints derived from a DTD.

Section 3.1 of the paper describes three families of DTD-derived constraints
that drive the algebraic optimizer and the XQuery→FluX scheduler:

* **cardinality constraints** ``a ∈ ||≤k r`` — among the children of an ``r``
  element, label ``a`` occurs at most ``k`` times (the paper uses ``k = 1`` to
  merge consecutive for-loops over the same path);
* **order constraints** — all ``a`` children of an ``r`` element occur before
  all ``b`` children in every document valid w.r.t. the DTD (the paper's
  example: ``title`` before ``author`` in the DTD of Figure 1), which lets the
  scheduler emit streaming ``on`` handlers instead of buffering;
* **co-occurrence (language) constraints** — no ``r`` element can have both an
  ``a`` child and a ``b`` child (the paper's example: ``author`` and
  ``editor`` under the DTD of Figure 1), which lets the optimizer delete
  unsatisfiable conditionals.

All three are decided on the deterministic content-model automaton of the
parent element, so they are exact for the supported DTD fragment.  Elements
with ``ANY`` content yield no constraints.

The class additionally exposes the *past tables* used by XSAX: given a DFA
state of the parent's content model and a label set ``X``, whether any label
of ``X`` may still occur — the ``on-first past(X)`` event fires the first time
this becomes false.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.dtd.model import INFINITY
from repro.dtd.schema import DTD


class SchemaConstraints:
    """Constraint oracle over a :class:`~repro.dtd.schema.DTD`.

    All queries are memoized; a single instance is shared through
    :meth:`DTD.constraints`.
    """

    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self._order_cache: Dict[Tuple[str, str, str], bool] = {}
        self._cooccur_cache: Dict[Tuple[str, FrozenSet[str]], bool] = {}

    # ------------------------------------------------------- cardinality

    def max_occurrences(self, parent: str, label: str) -> float:
        """Maximum number of ``label`` children of a ``parent`` element.

        Returns :data:`~repro.dtd.model.INFINITY` when unbounded, ``0`` when
        the DTD forbids such children entirely.
        """
        if not self.dtd.has_element(parent):
            return INFINITY
        decl = self.dtd.element(parent)
        if decl.content.labels() == frozenset() and decl.allows_text():
            return 0
        return decl.content.max_count(label)

    def min_occurrences(self, parent: str, label: str) -> float:
        """Minimum number of ``label`` children of a ``parent`` element."""
        if not self.dtd.has_element(parent):
            return 0
        return self.dtd.element(parent).content.min_count(label)

    def at_most_once(self, parent: str, label: str) -> bool:
        """Cardinality constraint ``label ∈ ||≤1 parent``."""
        return self.max_occurrences(parent, label) <= 1

    def exactly_once(self, parent: str, label: str) -> bool:
        """Whether every ``parent`` has exactly one ``label`` child."""
        return (
            self.max_occurrences(parent, label) == 1
            and self.min_occurrences(parent, label) == 1
        )

    def never_occurs(self, parent: str, label: str) -> bool:
        """Whether the DTD forbids ``label`` children of ``parent`` entirely."""
        if not self.dtd.has_element(parent):
            return False
        decl = self.dtd.element(parent)
        if decl.content.labels() or decl.content.max_count(label) > 0:
            return self.max_occurrences(parent, label) == 0
        # EMPTY / PCDATA content: no element children at all.
        return True

    # ------------------------------------------------------------- order

    def order_holds(self, parent: str, before: str, after: str) -> bool:
        """Order constraint: all ``before`` children precede all ``after``
        children in every valid ``parent`` element.

        Equivalently: no accepted child sequence contains an occurrence of
        ``before`` *after* an occurrence of ``after``.  Decided on the
        content-model automaton: the constraint fails iff some useful
        (co-accessible) path takes an ``after`` edge and later a ``before``
        edge.

        Labels that cannot occur at all trivially satisfy every order
        constraint involving them.  ``before == after`` holds iff the label
        occurs at most once (two occurrences of the same label violate
        "every before-occurrence precedes every after-occurrence" only when
        they are distinct occurrences interleaving — with a single label the
        condition degenerates to at-most-once).
        """
        key = (parent, before, after)
        if key in self._order_cache:
            return self._order_cache[key]
        result = self._compute_order(parent, before, after)
        self._order_cache[key] = result
        return result

    def _compute_order(self, parent: str, before: str, after: str) -> bool:
        if not self.dtd.has_element(parent):
            return False
        automaton = self.dtd.automaton(parent)
        if automaton.allows_any:
            return False
        if before == after:
            return self.at_most_once(parent, before)
        # Breadth-first over states reachable *after* having read an `after`
        # edge on a useful path; the constraint fails if a `before` edge is
        # then still reachable.
        co_reachable_states = self._useful_states(automaton)
        frontier: List[int] = []
        seen: Set[int] = set()
        for state in co_reachable_states:
            target = automaton.transitions_from(state).get(after)
            if target is not None and target in co_reachable_states:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        while frontier:
            state = frontier.pop()
            if before in automaton.reachable_labels(state):
                return False
            for target in automaton.transitions_from(state).values():
                if target in co_reachable_states and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return True

    def all_before(self, parent: str, befores: Iterable[str], after: str) -> bool:
        """Whether every label in ``befores`` satisfies ``order_holds(..., after)``."""
        return all(self.order_holds(parent, before, after) for before in befores)

    # ------------------------------------------------------ co-occurrence

    def can_cooccur(self, parent: str, labels: Iterable[str]) -> bool:
        """Whether some valid ``parent`` element has at least one child of
        *each* label in ``labels`` (the language constraint of the paper is
        the negation of this for a pair of labels)."""
        label_set = frozenset(labels)
        key = (parent, label_set)
        if key in self._cooccur_cache:
            return self._cooccur_cache[key]
        result = self._compute_cooccur(parent, label_set)
        self._cooccur_cache[key] = result
        return result

    def mutually_exclusive(self, parent: str, first: str, second: str) -> bool:
        """Language constraint: no ``parent`` element has both a ``first``
        child and a ``second`` child."""
        if first == second:
            return self.never_occurs(parent, first)
        return not self.can_cooccur(parent, [first, second])

    def _compute_cooccur(self, parent: str, labels: FrozenSet[str]) -> bool:
        if not labels:
            return True
        if not self.dtd.has_element(parent):
            return True
        automaton = self.dtd.automaton(parent)
        if automaton.allows_any:
            return True
        if any(label not in automaton.labels for label in labels):
            return False
        # Search the product of the automaton with a "which labels have been
        # seen" tracker for an accepting configuration covering all labels.
        start = (automaton.start_state, frozenset())
        frontier = [start]
        seen = {start}
        while frontier:
            state, have = frontier.pop()
            if automaton.is_accepting(state) and have == labels:
                return True
            for label, target in automaton.transitions_from(state).items():
                new_have = have | {label} if label in labels else have
                config = (target, new_have)
                if config not in seen:
                    seen.add(config)
                    frontier.append(config)
        return False

    # -------------------------------------------------------- past tables

    def past_table(self, parent: str, labels: FrozenSet[str]) -> Dict[int, bool]:
        """Per-DFA-state table: ``True`` when *no* label of ``labels`` can
        still occur among the remaining children.

        This is the lookup table XSAX consults to fire
        ``on-first past(labels)`` events for ``parent`` elements.
        """
        automaton = self.dtd.automaton(parent) if self.dtd.has_element(parent) else None
        table: Dict[int, bool] = {}
        if automaton is None or automaton.allows_any:
            return table
        for state in range(automaton.state_count):
            table[state] = not automaton.can_still_occur(state, labels)
        return table

    def labels_past_at_state(self, parent: str, state: int) -> FrozenSet[str]:
        """Labels that can no longer occur from ``state`` of ``parent``'s
        content-model automaton."""
        automaton = self.dtd.automaton(parent)
        if automaton.allows_any:
            return frozenset()
        return frozenset(automaton.labels) - automaton.reachable_labels(state)

    # ------------------------------------------------------------ summary

    def summary(self, parent: str) -> Dict[str, List[Tuple[str, ...]]]:
        """Human-readable constraint summary for ``parent`` (used by examples
        and by DESIGN documentation tooling)."""
        if not self.dtd.has_element(parent):
            return {"cardinality": [], "order": [], "exclusive": []}
        labels = sorted(self.dtd.child_labels(parent))
        cardinality = [
            (label, "<=1") for label in labels if self.at_most_once(parent, label)
        ]
        order = [
            (a, "<", b)
            for a in labels
            for b in labels
            if a != b and self.order_holds(parent, a, b)
        ]
        exclusive = [
            (a, "#", b)
            for i, a in enumerate(labels)
            for b in labels[i + 1 :]
            if self.mutually_exclusive(parent, a, b)
        ]
        return {"cardinality": cardinality, "order": order, "exclusive": exclusive}

    @staticmethod
    def _useful_states(automaton) -> Set[int]:
        """States that lie on some accepting path (accessible ∧ co-accessible).

        Accessibility from the start state is guaranteed by construction, so
        only co-accessibility needs checking, which ``reachable_labels``
        already encodes: a non-accepting state with no reachable labels is a
        dead end.
        """
        useful: Set[int] = set()
        for state in range(automaton.state_count):
            if automaton.is_accepting(state) or automaton.reachable_labels(state):
                useful.add(state)
        return useful
