"""The :class:`DTD` schema object.

A :class:`DTD` bundles the element declarations of a document type, gives
access to per-element content-model automata (built lazily and cached), and
is the single argument the optimizer, the safety checker, and the XSAX parser
take to obtain schema information.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.errors import DTDSyntaxError
from repro.dtd.model import ANY, EMPTY, PCDATA, AttributeDecl, ElementDecl


class DTD:
    """A parsed document type definition.

    Parameters
    ----------
    elements:
        The element declarations, in declaration order.
    root:
        Name of the document root element.  When omitted, the root is
        inferred as the unique element that never occurs as a child of
        another declared element (falling back to the first declaration).
    attributes:
        Optional attribute declarations (kept for completeness; attributes do
        not participate in the constraint machinery).
    """

    def __init__(
        self,
        elements: Iterable[ElementDecl],
        root: Optional[str] = None,
        attributes: Optional[Iterable[AttributeDecl]] = None,
    ):
        self._elements: Dict[str, ElementDecl] = {}
        for decl in elements:
            if decl.name in self._elements:
                raise DTDSyntaxError(f"duplicate declaration for element {decl.name!r}")
            self._elements[decl.name] = decl
        if not self._elements:
            raise DTDSyntaxError("a DTD must declare at least one element")
        self.attributes: List[AttributeDecl] = list(attributes or [])
        self.root = root if root is not None else self._infer_root()
        if self.root not in self._elements:
            raise DTDSyntaxError(f"root element {self.root!r} is not declared")
        self._automata: Dict[str, "ContentModelAutomaton"] = {}
        self._constraints: Optional["SchemaConstraints"] = None

    # ------------------------------------------------------------ accessors

    def element(self, name: str) -> ElementDecl:
        """Declaration of ``name``; raises :class:`DTDSyntaxError` if unknown."""
        try:
            return self._elements[name]
        except KeyError:
            raise DTDSyntaxError(f"element {name!r} is not declared in the DTD") from None

    def has_element(self, name: str) -> bool:
        """Whether ``name`` is declared."""
        return name in self._elements

    @property
    def element_names(self) -> List[str]:
        """Declared element names, in declaration order."""
        return list(self._elements)

    def declarations(self) -> List[ElementDecl]:
        """All element declarations, in declaration order."""
        return list(self._elements.values())

    def child_labels(self, name: str) -> FrozenSet[str]:
        """Element names that may occur as children of ``name``."""
        return self.element(name).child_labels()

    # ------------------------------------------------------------ analyses

    def _infer_root(self) -> str:
        children: Set[str] = set()
        for decl in self._elements.values():
            children |= decl.child_labels()
        candidates = [name for name in self._elements if name not in children]
        if len(candidates) == 1:
            return candidates[0]
        return next(iter(self._elements))

    def automaton(self, name: str) -> "ContentModelAutomaton":
        """The (cached) content-model automaton for element ``name``."""
        if name not in self._automata:
            from repro.dtd.automaton import build_automaton

            self._automata[name] = build_automaton(self.element(name))
        return self._automata[name]

    def constraints(self) -> "SchemaConstraints":
        """The (cached) schema constraints derived from this DTD."""
        if self._constraints is None:
            from repro.dtd.constraints import SchemaConstraints

            self._constraints = SchemaConstraints(self)
        return self._constraints

    def reachable_elements(self) -> Set[str]:
        """Element names reachable from the root (declared and referenced)."""
        seen: Set[str] = set()
        frontier = [self.root]
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self._elements:
                continue
            seen.add(name)
            frontier.extend(self._elements[name].child_labels())
        return seen

    def undeclared_children(self) -> Set[str]:
        """Child labels referenced in content models but never declared.

        Documents using such children cannot be validated below that label;
        the validator treats them as having ``ANY`` content.
        """
        missing: Set[str] = set()
        for decl in self._elements.values():
            for label in decl.child_labels():
                if label not in self._elements:
                    missing.add(label)
        return missing

    def fingerprint(self) -> str:
        """A stable digest of the schema's semantic content.

        Two DTDs with the same root, element declarations (names, content
        models, mixedness) and attribute declarations produce the same
        fingerprint, regardless of how their objects were built.  Used as
        the schema component of plan-cache keys: a compiled plan is only
        reusable under the exact schema whose constraints shaped it.
        """
        if getattr(self, "_fingerprint", None) is None:
            import hashlib

            parts = [f"root={self.root}"]
            parts.extend(
                sorted(
                    f"{decl.name}={decl.content.to_dtd_syntax()};mixed={decl.mixed}"
                    for decl in self._elements.values()
                )
            )
            parts.extend(
                sorted(
                    f"@{attr.element}.{attr.name}:{attr.attr_type}={attr.default}"
                    for attr in self.attributes
                )
            )
            digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
            self._fingerprint = digest
        return self._fingerprint

    # -------------------------------------------------------------- output

    def to_dtd_syntax(self) -> str:
        """Render the DTD as ``<!ELEMENT ...>`` declarations."""
        return "\n".join(decl.to_dtd_syntax() for decl in self._elements.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DTD(root={self.root!r}, elements={len(self._elements)})"
