"""Parser for DTD element declarations.

Parses the subset of DTD syntax the paper relies on:

* ``<!ELEMENT name (content-model)>`` with sequences, choices, ``*``/``+``/``?``,
  ``EMPTY``, ``ANY``, ``(#PCDATA)`` and mixed content ``(#PCDATA | a | b)*``;
* ``<!ATTLIST ...>`` declarations (recorded, not enforced);
* ``<!ENTITY ...>``, comments and processing instructions (skipped).

The entry point is :func:`parse_dtd`, which accepts either a full DTD text
(e.g. the internal subset captured from a DOCTYPE) or a sequence of
declarations and returns a :class:`~repro.dtd.schema.DTD`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import DTDSyntaxError
from repro.dtd.model import (
    ANY,
    EMPTY,
    PCDATA,
    AttributeDecl,
    Choice,
    ContentParticle,
    ElementDecl,
    Name,
    OneOrMore,
    Optional_,
    Sequence,
    ZeroOrMore,
)
from repro.dtd.schema import DTD

_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_PI_RE = re.compile(r"<\?.*?\?>", re.DOTALL)
_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([^\s>]+)\s+(.*?)>", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+([^\s>]+)\s+(.*?)>", re.DOTALL)
_NAME_RE = re.compile(r"[A-Za-z_:][\w:.\-]*")


class _ContentModelParser:
    """Recursive-descent parser for a single content model expression."""

    def __init__(self, text: str, element: str):
        self._text = text
        self._pos = 0
        self._element = element

    def parse(self) -> Tuple[ContentParticle, bool]:
        """Return ``(particle, mixed)`` for the content model text."""
        self._skip_ws()
        text = self._text.strip()
        if text == "EMPTY":
            return EMPTY, False
        if text == "ANY":
            return ANY, False
        particle = self._parse_particle()
        self._skip_ws()
        if self._pos != len(self._text):
            raise DTDSyntaxError(
                f"trailing characters in content model of {self._element!r}: "
                f"{self._text[self._pos:]!r}"
            )
        mixed = self._detect_mixed(particle)
        if mixed is not None:
            return mixed, True
        if _mentions_pcdata(particle):
            if isinstance(particle, Name) and particle.name == "#PCDATA":
                return PCDATA, False
            raise DTDSyntaxError(
                f"#PCDATA may only appear in (#PCDATA) or (#PCDATA|...)* models "
                f"(element {self._element!r})"
            )
        return particle, False

    # The grammar:  particle := group [*+?] | name [*+?]
    #               group    := '(' particle ((',' particle)* | ('|' particle)*) ')'

    def _parse_particle(self) -> ContentParticle:
        self._skip_ws()
        if self._peek() == "(":
            particle = self._parse_group()
        else:
            particle = self._parse_name()
        return self._parse_suffix(particle)

    def _parse_group(self) -> ContentParticle:
        assert self._peek() == "("
        self._pos += 1
        parts: List[ContentParticle] = [self._parse_particle()]
        self._skip_ws()
        separator: Optional[str] = None
        while self._peek() in ",|":
            sep = self._peek()
            if separator is None:
                separator = sep
            elif sep != separator:
                raise DTDSyntaxError(
                    f"cannot mix ',' and '|' at the same level in the content model "
                    f"of {self._element!r}"
                )
            self._pos += 1
            parts.append(self._parse_particle())
            self._skip_ws()
        if self._peek() != ")":
            raise DTDSyntaxError(
                f"expected ')' in content model of {self._element!r}, "
                f"found {self._peek()!r}"
            )
        self._pos += 1
        if len(parts) == 1:
            return parts[0]
        if separator == "|":
            return Choice(tuple(parts))
        return Sequence(tuple(parts))

    def _parse_name(self) -> ContentParticle:
        self._skip_ws()
        if self._text.startswith("#PCDATA", self._pos):
            self._pos += len("#PCDATA")
            return Name("#PCDATA")
        match = _NAME_RE.match(self._text, self._pos)
        if not match:
            raise DTDSyntaxError(
                f"expected a name in content model of {self._element!r} at "
                f"{self._text[self._pos:self._pos + 20]!r}"
            )
        self._pos = match.end()
        return Name(match.group(0))

    def _parse_suffix(self, particle: ContentParticle) -> ContentParticle:
        self._skip_ws()
        ch = self._peek()
        if ch == "*":
            self._pos += 1
            return ZeroOrMore(particle)
        if ch == "+":
            self._pos += 1
            return OneOrMore(particle)
        if ch == "?":
            self._pos += 1
            return Optional_(particle)
        return particle

    def _detect_mixed(self, particle: ContentParticle) -> Optional[ContentParticle]:
        """Recognize ``(#PCDATA | a | ...)*`` and plain ``(#PCDATA)``.

        Returns the element-only particle (PCDATA removed) for mixed models,
        or ``None`` when the model is not mixed.
        """
        if isinstance(particle, ZeroOrMore) and isinstance(particle.part, Choice):
            names = [part for part in particle.part.parts if isinstance(part, Name)]
            if len(names) == len(particle.part.parts) and any(
                name.name == "#PCDATA" for name in names
            ):
                if names[0].name != "#PCDATA":
                    raise DTDSyntaxError(
                        f"#PCDATA must be the first alternative in the mixed content "
                        f"model of {self._element!r}"
                    )
                element_names = tuple(name for name in names if name.name != "#PCDATA")
                if not element_names:
                    return PCDATA
                if len(element_names) == 1:
                    return ZeroOrMore(element_names[0])
                return ZeroOrMore(Choice(element_names))
        return None

    def _peek(self) -> str:
        self._skip_ws()
        if self._pos < len(self._text):
            return self._text[self._pos]
        return ""

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1


def _mentions_pcdata(particle: ContentParticle) -> bool:
    if isinstance(particle, Name):
        return particle.name == "#PCDATA"
    if isinstance(particle, (Sequence, Choice)):
        return any(_mentions_pcdata(part) for part in particle.parts)
    if isinstance(particle, (ZeroOrMore, OneOrMore, Optional_)):
        return _mentions_pcdata(particle.part)
    return False


def parse_element_decl(name: str, model_text: str) -> ElementDecl:
    """Parse a single element declaration body into an :class:`ElementDecl`."""
    content, mixed = _ContentModelParser(model_text, name).parse()
    return ElementDecl(name=name, content=content, mixed=mixed)


def _parse_attlist(element: str, body: str) -> List[AttributeDecl]:
    """Parse an ATTLIST body into attribute declarations (best effort)."""
    tokens = body.split()
    decls: List[AttributeDecl] = []
    i = 0
    while i + 1 < len(tokens):
        attr_name = tokens[i]
        attr_type = tokens[i + 1]
        default = tokens[i + 2] if i + 2 < len(tokens) else "#IMPLIED"
        decls.append(AttributeDecl(element=element, name=attr_name, attr_type=attr_type, default=default))
        # Skip a quoted default value following #FIXED.
        step = 3
        if default == "#FIXED" and i + 3 < len(tokens):
            step = 4
        i += step
    return decls


def parse_dtd(text: str, root: Optional[str] = None) -> DTD:
    """Parse DTD text into a :class:`~repro.dtd.schema.DTD`.

    ``text`` is typically the internal subset of a DOCTYPE declaration or the
    contents of a ``.dtd`` file.  ``root`` optionally fixes the document root
    element; otherwise it is inferred (see :class:`DTD`).
    """
    cleaned = _COMMENT_RE.sub(" ", text)
    cleaned = _PI_RE.sub(" ", cleaned)
    elements: List[ElementDecl] = []
    for match in _ELEMENT_RE.finditer(cleaned):
        name, model_text = match.group(1), match.group(2).strip()
        elements.append(parse_element_decl(name, model_text))
    attributes: List[AttributeDecl] = []
    for match in _ATTLIST_RE.finditer(cleaned):
        attributes.extend(_parse_attlist(match.group(1), match.group(2)))
    if not elements:
        raise DTDSyntaxError("no <!ELEMENT ...> declarations found in DTD text")
    return DTD(elements, root=root, attributes=attributes)
