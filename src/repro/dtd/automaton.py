"""Content-model automata (Glushkov construction + determinization).

The paper's XSAX parser "builds a finite state automaton and lookup-tables for
validating the input and generating on-first events".  This module provides
exactly that substrate:

* :func:`build_automaton` turns an element declaration's content model into a
  deterministic :class:`ContentModelAutomaton` via the classic Glushkov
  (position) construction followed by subset construction;
* each automaton precomputes, per state, the set of child labels that may
  still occur on some path to acceptance (:meth:`reachable_labels`).  These
  tables drive both the derivation of order constraints
  (:mod:`repro.dtd.constraints`) and the firing of ``on-first past(X)``
  events in :mod:`repro.runtime.xsax`.

``ANY`` content models produce a one-state automaton that accepts every child
sequence; constraint extraction treats it as unconstrained.

The static query analyzer (:mod:`repro.analysis.query`) adds a second use of
the same automata: *counting*.  :meth:`ContentModelAutomaton
.occurrence_bounds` derives, per child label, the minimum and maximum number
of occurrences over all accepted child sequences (``?``/``1`` vs ``*``/``+``
fan-out), and :func:`recursive_elements` / :func:`subtree_growth_degree`
lift those per-level bounds to the whole element graph — how many nested
unbounded axes a subtree of a given element type can contain.  Together they
bound how much a buffered region of a plan can grow with the document.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dtd.model import (
    ANY,
    EMPTY,
    INFINITY,
    PCDATA,
    Choice,
    ContentParticle,
    ElementDecl,
    Name,
    OneOrMore,
    Optional_,
    Sequence,
    ZeroOrMore,
)


class _Glushkov:
    """Computes nullable / first / last / follow sets over positions."""

    def __init__(self, particle: ContentParticle):
        self.symbols: List[str] = []  # symbol of each position (index = position)
        self.nullable, self.first, self.last, self.follow = self._build(particle)

    def _new_position(self, symbol: str) -> int:
        self.symbols.append(symbol)
        return len(self.symbols) - 1

    def _build(
        self, particle: ContentParticle
    ) -> Tuple[bool, Set[int], Set[int], Dict[int, Set[int]]]:
        if isinstance(particle, Name):
            pos = self._new_position(particle.name)
            return False, {pos}, {pos}, {pos: set()}
        if isinstance(particle, Sequence):
            nullable = True
            first: Set[int] = set()
            last: Set[int] = set()
            follow: Dict[int, Set[int]] = {}
            for part in particle.parts:
                p_null, p_first, p_last, p_follow = self._build(part)
                for pos, targets in p_follow.items():
                    follow.setdefault(pos, set()).update(targets)
                # every "last" position of the prefix can be followed by the
                # "first" positions of this part
                for pos in last:
                    follow.setdefault(pos, set()).update(p_first)
                if nullable:
                    first |= p_first
                if p_null:
                    last |= p_last
                else:
                    last = set(p_last)
                nullable = nullable and p_null
            return nullable, first, last, follow
        if isinstance(particle, Choice):
            nullable = False
            first = set()
            last = set()
            follow = {}
            for part in particle.parts:
                p_null, p_first, p_last, p_follow = self._build(part)
                nullable = nullable or p_null
                first |= p_first
                last |= p_last
                for pos, targets in p_follow.items():
                    follow.setdefault(pos, set()).update(targets)
            return nullable, first, last, follow
        if isinstance(particle, (ZeroOrMore, OneOrMore)):
            p_null, p_first, p_last, p_follow = self._build(particle.part)
            for pos in p_last:
                p_follow.setdefault(pos, set()).update(p_first)
            nullable = True if isinstance(particle, ZeroOrMore) else p_null
            return nullable, p_first, p_last, p_follow
        if isinstance(particle, Optional_):
            p_null, p_first, p_last, p_follow = self._build(particle.part)
            return True, p_first, p_last, p_follow
        # EMPTY / PCDATA / ANY leaves: no child-element positions.
        return True, set(), set(), {}


class ContentModelAutomaton:
    """Deterministic automaton over an element's child-label sequences.

    States are small integers; state ``0`` is the start state.  The automaton
    exposes the lookup tables required by the runtime:

    * :meth:`step` — transition on a child label (``None`` = invalid child);
    * :meth:`is_accepting` — whether the children seen so far form a complete
      valid content sequence;
    * :meth:`reachable_labels` — which labels may still occur from a state on
      some path to acceptance (the basis of ``past(X)`` / on-first firing);
    * :meth:`can_still_occur` — convenience wrapper over the above.
    """

    def __init__(
        self,
        transitions: List[Dict[str, int]],
        accepting: Set[int],
        labels: FrozenSet[str],
        allows_any: bool = False,
    ):
        self._transitions = transitions
        self._accepting = accepting
        self.labels = labels
        self.allows_any = allows_any
        self._reachable: List[FrozenSet[str]] = self._compute_reachable_labels()

    # ------------------------------------------------------------ protocol

    @property
    def start_state(self) -> int:
        return 0

    @property
    def state_count(self) -> int:
        return len(self._transitions)

    def step(self, state: int, label: str) -> Optional[int]:
        """Successor of ``state`` on child ``label`` (``None`` if invalid)."""
        if self.allows_any:
            return state
        return self._transitions[state].get(label)

    def is_accepting(self, state: int) -> bool:
        """Whether ``state`` is a valid end-of-children state."""
        if self.allows_any:
            return True
        return state in self._accepting

    def transitions_from(self, state: int) -> Dict[str, int]:
        """Outgoing transitions of ``state`` as ``{label: successor}``."""
        if self.allows_any:
            return {}
        return dict(self._transitions[state])

    def reachable_labels(self, state: int) -> FrozenSet[str]:
        """Labels that may still occur, starting at ``state``, on some path
        that eventually reaches an accepting state."""
        if self.allows_any:
            return self.labels
        return self._reachable[state]

    def can_still_occur(self, state: int, labels: FrozenSet[str]) -> bool:
        """Whether any label of ``labels`` may still occur from ``state``."""
        if self.allows_any:
            return True
        return bool(self._reachable[state] & labels)

    # --------------------------------------------------------------- tables

    def _compute_reachable_labels(self) -> List[FrozenSet[str]]:
        if self.allows_any:
            return []
        n = len(self._transitions)
        # A state is co-accessible if an accepting state is reachable from it.
        co_accessible = set(self._accepting)
        changed = True
        while changed:
            changed = False
            for state in range(n):
                if state in co_accessible:
                    continue
                for successor in self._transitions[state].values():
                    if successor in co_accessible:
                        co_accessible.add(state)
                        changed = True
                        break
        # reachable_labels(q) = labels on edges of paths from q that stay
        # within the co-accessible sub-automaton.  Computed by a backwards
        # fixpoint: R(q) = union over useful edges (q, l, q') of {l} ∪ R(q').
        reachable: List[Set[str]] = [set() for _ in range(n)]
        changed = True
        while changed:
            changed = False
            for state in range(n):
                if state not in co_accessible:
                    continue
                current = reachable[state]
                before = len(current)
                for label, successor in self._transitions[state].items():
                    if successor in co_accessible:
                        current.add(label)
                        current |= reachable[successor]
                if len(current) != before:
                    changed = True
        return [frozenset(s) for s in reachable]

    def accepts(self, word: List[str]) -> bool:
        """Whether the child-label sequence ``word`` is valid."""
        state: Optional[int] = self.start_state
        for label in word:
            state = self.step(state, label)
            if state is None:
                return False
        return self.is_accepting(state)

    # ------------------------------------------------------------- counting

    def occurrence_bounds(self) -> Dict[str, Tuple[float, float]]:
        """Per-label ``(min, max)`` occurrence counts over accepted words.

        For every label of the content model: the fewest and the most times
        it can occur in a *valid* child sequence.  ``max`` is
        :data:`~repro.dtd.model.INFINITY` exactly when some useful edge
        carrying the label lies on a cycle of the automaton (a ``*``/``+``
        repetition reaches it); otherwise both bounds are finite and exact
        (longest/shortest paths over the cycle-free condensation).  ``ANY``
        content has no enumerable labels and returns ``{}`` — callers must
        treat it (via :attr:`allows_any`) as unbounded in everything.

        Computed once and memoized; the automaton is immutable.
        """
        cached = getattr(self, "_occurrence_bounds", None)
        if cached is not None:
            return dict(cached)
        bounds = self._compute_occurrence_bounds()
        self._occurrence_bounds = bounds
        return dict(bounds)

    def _compute_occurrence_bounds(self) -> Dict[str, Tuple[float, float]]:
        if self.allows_any:
            return {}
        n = len(self._transitions)
        # Useful states: reachable from the start *and* co-accessible (some
        # accepting state reachable).  Only edges between useful states can
        # appear in an accepted word.
        reachable: Set[int] = {0}
        frontier = [0]
        while frontier:
            state = frontier.pop()
            for successor in self._transitions[state].values():
                if successor not in reachable:
                    reachable.add(successor)
                    frontier.append(successor)
        co_accessible = set(self._accepting)
        changed = True
        while changed:
            changed = False
            for state in range(n):
                if state in co_accessible:
                    continue
                if any(
                    successor in co_accessible
                    for successor in self._transitions[state].values()
                ):
                    co_accessible.add(state)
                    changed = True
        useful = reachable & co_accessible
        edges = [
            (state, label, successor)
            for state in useful
            for label, successor in self._transitions[state].items()
            if successor in useful
        ]
        components = self._strongly_connected(useful, edges)
        # A label edge inside one SCC is on a cycle: pumping the cycle
        # repeats the label arbitrarily often in accepted words.
        unbounded = {
            label for state, label, successor in edges
            if components[state] == components[successor]
        }
        maxima = self._bounded_maxima(useful, edges, components, unbounded)
        minima = self._minima(useful, edges)
        result: Dict[str, Tuple[float, float]] = {}
        for label in self.labels:
            high = INFINITY if label in unbounded else maxima.get(label, 0.0)
            result[label] = (minima.get(label, 0.0), high)
        return result

    @staticmethod
    def _strongly_connected(
        useful: Set[int], edges: List[Tuple[int, str, int]]
    ) -> Dict[int, int]:
        """Map each useful state to its SCC id (iterative Tarjan)."""
        graph: Dict[int, List[int]] = {state: [] for state in useful}
        for state, _, successor in edges:
            graph[state].append(successor)
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        components: Dict[int, int] = {}
        counter = [0]
        comp_counter = [0]
        for root in sorted(useful):
            if root in index:
                continue
            # Explicit work stack: (state, iterator position) frames.
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                state, child_index = work[-1]
                if child_index == 0:
                    index[state] = lowlink[state] = counter[0]
                    counter[0] += 1
                    stack.append(state)
                    on_stack.add(state)
                recurse = False
                successors = graph[state]
                while child_index < len(successors):
                    successor = successors[child_index]
                    child_index += 1
                    if successor not in index:
                        work[-1] = (state, child_index)
                        work.append((successor, 0))
                        recurse = True
                        break
                    if successor in on_stack:
                        lowlink[state] = min(lowlink[state], index[successor])
                if recurse:
                    continue
                work.pop()
                if lowlink[state] == index[state]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        components[member] = comp_counter[0]
                        if member == state:
                            break
                    comp_counter[0] += 1
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[state])
        return components

    def _bounded_maxima(
        self,
        useful: Set[int],
        edges: List[Tuple[int, str, int]],
        components: Dict[int, int],
        unbounded: Set[str],
    ) -> Dict[str, float]:
        """Longest-path label counts over the (acyclic) SCC condensation.

        Only labels *not* flagged unbounded are counted; every edge carrying
        such a label crosses SCCs, so the condensation DAG sees each one at
        most once per path and a topological dynamic program is exact.
        """
        if 0 not in useful:
            return {}
        cross = [
            (components[state], label, components[successor])
            for state, label, successor in edges
            if components[state] != components[successor]
        ]
        incoming: Dict[int, List[Tuple[int, Optional[str]]]] = {}
        indegree: Dict[int, int] = {components[state]: 0 for state in useful}
        for src, label, dst in cross:
            incoming.setdefault(dst, []).append(
                (src, label if label not in unbounded else None)
            )
            indegree[dst] += 1
        order: List[int] = [comp for comp, degree in indegree.items() if degree == 0]
        queue = list(order)
        remaining = dict(indegree)
        while queue:
            comp = queue.pop()
            for src, label, dst in cross:
                if src != comp:
                    continue
                remaining[dst] -= 1
                if remaining[dst] == 0:
                    order.append(dst)
                    queue.append(dst)
        start_comp = components[0]
        best: Dict[int, Dict[str, float]] = {start_comp: {}}
        for comp in order:
            for src, label in incoming.get(comp, []):
                source_counts = best.get(src)
                if source_counts is None:
                    continue
                candidate = dict(source_counts)
                if label is not None:
                    candidate[label] = candidate.get(label, 0.0) + 1.0
                merged = best.setdefault(comp, {})
                for name, count in candidate.items():
                    if count > merged.get(name, 0.0):
                        merged[name] = count
        maxima: Dict[str, float] = {}
        accepting_comps = {components[state] for state in self._accepting if state in useful}
        for comp in accepting_comps:
            for name, count in best.get(comp, {}).items():
                if count > maxima.get(name, 0.0):
                    maxima[name] = count
        return maxima

    def _minima(
        self, useful: Set[int], edges: List[Tuple[int, str, int]]
    ) -> Dict[str, float]:
        """Per-label minimum counts: shortest paths start → any acceptor."""
        if 0 not in useful:
            return {}
        minima: Dict[str, float] = {}
        for target in self.labels:
            # Bellman-Ford style fixpoint; weights are 0/1 and the automata
            # are tiny, so the quadratic loop is fine.
            dist: Dict[int, float] = {0: 0.0}
            changed = True
            while changed:
                changed = False
                for state, label, successor in edges:
                    base = dist.get(state)
                    if base is None:
                        continue
                    weight = 1.0 if label == target else 0.0
                    if base + weight < dist.get(successor, INFINITY):
                        dist[successor] = base + weight
                        changed = True
            best = min(
                (dist[state] for state in self._accepting if state in dist),
                default=0.0,
            )
            minima[target] = best
        return minima

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContentModelAutomaton(states={self.state_count}, "
            f"labels={sorted(self.labels)}, any={self.allows_any})"
        )


def build_automaton(decl: ElementDecl) -> ContentModelAutomaton:
    """Build the deterministic content-model automaton for ``decl``."""
    content = decl.content
    labels = frozenset(content.labels())
    if content is ANY:
        return ContentModelAutomaton([{}], {0}, labels, allows_any=True)
    if content is EMPTY or content is PCDATA or not labels:
        # Only the empty child sequence is valid (text is handled separately).
        return ContentModelAutomaton([{}], {0}, labels)

    glushkov = _Glushkov(content)
    symbols = glushkov.symbols

    # Standard subset construction over the Glushkov NFA.  An NFA state is
    # either the initial state (represented by position -1) or a position of
    # the content model; a DFA state is a frozenset of occupied NFA states.
    # DTD content models are required to be deterministic, so each subset is
    # usually a singleton, but the construction is correct for ambiguous
    # models as well.
    initial = -1
    start_key: FrozenSet[int] = frozenset({initial})
    states: Dict[FrozenSet[int], int] = {start_key: 0}
    transitions: List[Dict[str, int]] = [{}]
    accepting: Set[int] = set()
    if glushkov.nullable:
        accepting.add(0)

    def successors(position: int) -> Set[int]:
        if position == initial:
            return glushkov.first
        return glushkov.follow.get(position, set())

    worklist: List[FrozenSet[int]] = [start_key]
    while worklist:
        occupied = worklist.pop()
        index = states[occupied]
        by_label: Dict[str, Set[int]] = {}
        for position in occupied:
            for candidate in successors(position):
                by_label.setdefault(symbols[candidate], set()).add(candidate)
        for label, entered in by_label.items():
            target_key = frozenset(entered)
            if target_key not in states:
                states[target_key] = len(transitions)
                transitions.append({})
                if target_key & glushkov.last:
                    accepting.add(states[target_key])
                worklist.append(target_key)
            transitions[index][label] = states[target_key]

    return ContentModelAutomaton(transitions, accepting, labels)


# --------------------------------------------------------- element graph
#
# The per-element automata bound one *level* of the tree; the functions
# below lift those bounds to whole subtrees by walking the element graph
# (element name → child labels of its content model).  They are the schema
# side of the static query analyzer's buffer-bound classification.


def recursive_elements(dtd) -> FrozenSet[str]:
    """Declared elements whose subtrees can contain themselves.

    An element is recursive when the element graph has a path from it back
    to itself — its subtree depth (and so any buffered copy of it) has no
    static bound.  Elements with ``ANY`` content are conservatively
    recursive: they may contain any declared element, the root included.
    ``dtd`` is duck-typed (``element_names`` / ``element`` /
    ``child_labels``) to keep this module import-light, like
    :meth:`repro.dtd.schema.DTD.automaton` already does in reverse.
    """
    names = list(dtd.element_names)
    declared = set(names)
    successors: Dict[str, Set[str]] = {}
    for name in names:
        if dtd.element(name).content is ANY:
            successors[name] = declared
        else:
            successors[name] = set(dtd.child_labels(name)) & declared
    # An element is recursive iff it reaches an element-graph cycle that
    # reaches back to it; equivalently, iff it can reach itself.  With the
    # small element counts of real DTDs a per-element reachability probe
    # is plenty.
    recursive: Set[str] = set()
    for name in names:
        seen: Set[str] = set()
        frontier = list(successors[name])
        while frontier:
            current = frontier.pop()
            if current == name:
                recursive.add(name)
                break
            if current in seen or current not in declared:
                continue
            seen.add(current)
            frontier.extend(successors[current])
    return frozenset(recursive)


def axis_max_count(dtd, element_type: str, label: str) -> float:
    """Maximum occurrences of child ``label`` under one ``element_type``.

    :data:`~repro.dtd.model.INFINITY` for repeating axes (``*``/``+``,
    mixed content, ``ANY``, undeclared parents); the exact automaton bound
    otherwise.  ``element_type`` may be the synthetic document type — the
    document node has exactly one child, the root element.
    """
    if element_type == "#document":
        return 1.0
    if not dtd.has_element(element_type):
        return INFINITY
    automaton = dtd.automaton(element_type)
    if automaton.allows_any:
        return INFINITY
    bounds = automaton.occurrence_bounds().get(label)
    if bounds is None:
        return 0.0
    return bounds[1]


def subtree_growth_degree(dtd, name: str) -> float:
    """How many nested unbounded axes a subtree of element ``name`` spans.

    The "degree of unboundedness" of the subtree's node count as the
    document grows:

    * ``0`` — statically bounded: every axis below ``name`` is ``?``/``1``;
    * ``k`` — ``k`` nested repeating axes (one ``*`` level grows linearly
      with the data under it, a ``*`` inside a ``*`` quadratically, ...);
    * :data:`~repro.dtd.model.INFINITY` — no static structure bound at
      all: ``name`` is recursive, has ``ANY`` content, or is undeclared
      (the validator treats undeclared elements as ``ANY``).

    ``#document`` is accepted and delegates to the root element.
    """
    recursive = recursive_elements(dtd)
    memo: Dict[str, float] = {}

    def degree(element: str) -> float:
        if element == "#document":
            return degree(dtd.root)
        if not dtd.has_element(element) or element in recursive:
            return INFINITY
        if dtd.element(element).content is ANY:
            return INFINITY
        cached = memo.get(element)
        if cached is not None:
            return cached
        memo[element] = 0.0  # cycle guard; real cycles were caught above
        best = 0.0
        for label in dtd.child_labels(element):
            axis = 0.0 if axis_max_count(dtd, element, label) < INFINITY else 1.0
            best = max(best, axis + degree(label))
        memo[element] = best
        return best

    return degree(name)
