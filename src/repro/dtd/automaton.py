"""Content-model automata (Glushkov construction + determinization).

The paper's XSAX parser "builds a finite state automaton and lookup-tables for
validating the input and generating on-first events".  This module provides
exactly that substrate:

* :func:`build_automaton` turns an element declaration's content model into a
  deterministic :class:`ContentModelAutomaton` via the classic Glushkov
  (position) construction followed by subset construction;
* each automaton precomputes, per state, the set of child labels that may
  still occur on some path to acceptance (:meth:`reachable_labels`).  These
  tables drive both the derivation of order constraints
  (:mod:`repro.dtd.constraints`) and the firing of ``on-first past(X)``
  events in :mod:`repro.runtime.xsax`.

``ANY`` content models produce a one-state automaton that accepts every child
sequence; constraint extraction treats it as unconstrained.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dtd.model import (
    ANY,
    EMPTY,
    PCDATA,
    Choice,
    ContentParticle,
    ElementDecl,
    Name,
    OneOrMore,
    Optional_,
    Sequence,
    ZeroOrMore,
)


class _Glushkov:
    """Computes nullable / first / last / follow sets over positions."""

    def __init__(self, particle: ContentParticle):
        self.symbols: List[str] = []  # symbol of each position (index = position)
        self.nullable, self.first, self.last, self.follow = self._build(particle)

    def _new_position(self, symbol: str) -> int:
        self.symbols.append(symbol)
        return len(self.symbols) - 1

    def _build(
        self, particle: ContentParticle
    ) -> Tuple[bool, Set[int], Set[int], Dict[int, Set[int]]]:
        if isinstance(particle, Name):
            pos = self._new_position(particle.name)
            return False, {pos}, {pos}, {pos: set()}
        if isinstance(particle, Sequence):
            nullable = True
            first: Set[int] = set()
            last: Set[int] = set()
            follow: Dict[int, Set[int]] = {}
            for part in particle.parts:
                p_null, p_first, p_last, p_follow = self._build(part)
                for pos, targets in p_follow.items():
                    follow.setdefault(pos, set()).update(targets)
                # every "last" position of the prefix can be followed by the
                # "first" positions of this part
                for pos in last:
                    follow.setdefault(pos, set()).update(p_first)
                if nullable:
                    first |= p_first
                if p_null:
                    last |= p_last
                else:
                    last = set(p_last)
                nullable = nullable and p_null
            return nullable, first, last, follow
        if isinstance(particle, Choice):
            nullable = False
            first = set()
            last = set()
            follow = {}
            for part in particle.parts:
                p_null, p_first, p_last, p_follow = self._build(part)
                nullable = nullable or p_null
                first |= p_first
                last |= p_last
                for pos, targets in p_follow.items():
                    follow.setdefault(pos, set()).update(targets)
            return nullable, first, last, follow
        if isinstance(particle, (ZeroOrMore, OneOrMore)):
            p_null, p_first, p_last, p_follow = self._build(particle.part)
            for pos in p_last:
                p_follow.setdefault(pos, set()).update(p_first)
            nullable = True if isinstance(particle, ZeroOrMore) else p_null
            return nullable, p_first, p_last, p_follow
        if isinstance(particle, Optional_):
            p_null, p_first, p_last, p_follow = self._build(particle.part)
            return True, p_first, p_last, p_follow
        # EMPTY / PCDATA / ANY leaves: no child-element positions.
        return True, set(), set(), {}


class ContentModelAutomaton:
    """Deterministic automaton over an element's child-label sequences.

    States are small integers; state ``0`` is the start state.  The automaton
    exposes the lookup tables required by the runtime:

    * :meth:`step` — transition on a child label (``None`` = invalid child);
    * :meth:`is_accepting` — whether the children seen so far form a complete
      valid content sequence;
    * :meth:`reachable_labels` — which labels may still occur from a state on
      some path to acceptance (the basis of ``past(X)`` / on-first firing);
    * :meth:`can_still_occur` — convenience wrapper over the above.
    """

    def __init__(
        self,
        transitions: List[Dict[str, int]],
        accepting: Set[int],
        labels: FrozenSet[str],
        allows_any: bool = False,
    ):
        self._transitions = transitions
        self._accepting = accepting
        self.labels = labels
        self.allows_any = allows_any
        self._reachable: List[FrozenSet[str]] = self._compute_reachable_labels()

    # ------------------------------------------------------------ protocol

    @property
    def start_state(self) -> int:
        return 0

    @property
    def state_count(self) -> int:
        return len(self._transitions)

    def step(self, state: int, label: str) -> Optional[int]:
        """Successor of ``state`` on child ``label`` (``None`` if invalid)."""
        if self.allows_any:
            return state
        return self._transitions[state].get(label)

    def is_accepting(self, state: int) -> bool:
        """Whether ``state`` is a valid end-of-children state."""
        if self.allows_any:
            return True
        return state in self._accepting

    def transitions_from(self, state: int) -> Dict[str, int]:
        """Outgoing transitions of ``state`` as ``{label: successor}``."""
        if self.allows_any:
            return {}
        return dict(self._transitions[state])

    def reachable_labels(self, state: int) -> FrozenSet[str]:
        """Labels that may still occur, starting at ``state``, on some path
        that eventually reaches an accepting state."""
        if self.allows_any:
            return self.labels
        return self._reachable[state]

    def can_still_occur(self, state: int, labels: FrozenSet[str]) -> bool:
        """Whether any label of ``labels`` may still occur from ``state``."""
        if self.allows_any:
            return True
        return bool(self._reachable[state] & labels)

    # --------------------------------------------------------------- tables

    def _compute_reachable_labels(self) -> List[FrozenSet[str]]:
        if self.allows_any:
            return []
        n = len(self._transitions)
        # A state is co-accessible if an accepting state is reachable from it.
        co_accessible = set(self._accepting)
        changed = True
        while changed:
            changed = False
            for state in range(n):
                if state in co_accessible:
                    continue
                for successor in self._transitions[state].values():
                    if successor in co_accessible:
                        co_accessible.add(state)
                        changed = True
                        break
        # reachable_labels(q) = labels on edges of paths from q that stay
        # within the co-accessible sub-automaton.  Computed by a backwards
        # fixpoint: R(q) = union over useful edges (q, l, q') of {l} ∪ R(q').
        reachable: List[Set[str]] = [set() for _ in range(n)]
        changed = True
        while changed:
            changed = False
            for state in range(n):
                if state not in co_accessible:
                    continue
                current = reachable[state]
                before = len(current)
                for label, successor in self._transitions[state].items():
                    if successor in co_accessible:
                        current.add(label)
                        current |= reachable[successor]
                if len(current) != before:
                    changed = True
        return [frozenset(s) for s in reachable]

    def accepts(self, word: List[str]) -> bool:
        """Whether the child-label sequence ``word`` is valid."""
        state: Optional[int] = self.start_state
        for label in word:
            state = self.step(state, label)
            if state is None:
                return False
        return self.is_accepting(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContentModelAutomaton(states={self.state_count}, "
            f"labels={sorted(self.labels)}, any={self.allows_any})"
        )


def build_automaton(decl: ElementDecl) -> ContentModelAutomaton:
    """Build the deterministic content-model automaton for ``decl``."""
    content = decl.content
    labels = frozenset(content.labels())
    if content is ANY:
        return ContentModelAutomaton([{}], {0}, labels, allows_any=True)
    if content is EMPTY or content is PCDATA or not labels:
        # Only the empty child sequence is valid (text is handled separately).
        return ContentModelAutomaton([{}], {0}, labels)

    glushkov = _Glushkov(content)
    symbols = glushkov.symbols

    # Standard subset construction over the Glushkov NFA.  An NFA state is
    # either the initial state (represented by position -1) or a position of
    # the content model; a DFA state is a frozenset of occupied NFA states.
    # DTD content models are required to be deterministic, so each subset is
    # usually a singleton, but the construction is correct for ambiguous
    # models as well.
    initial = -1
    start_key: FrozenSet[int] = frozenset({initial})
    states: Dict[FrozenSet[int], int] = {start_key: 0}
    transitions: List[Dict[str, int]] = [{}]
    accepting: Set[int] = set()
    if glushkov.nullable:
        accepting.add(0)

    def successors(position: int) -> Set[int]:
        if position == initial:
            return glushkov.first
        return glushkov.follow.get(position, set())

    worklist: List[FrozenSet[int]] = [start_key]
    while worklist:
        occupied = worklist.pop()
        index = states[occupied]
        by_label: Dict[str, Set[int]] = {}
        for position in occupied:
            for candidate in successors(position):
                by_label.setdefault(symbols[candidate], set()).add(candidate)
        for label, entered in by_label.items():
            target_key = frozenset(entered)
            if target_key not in states:
                states[target_key] = len(transitions)
                transitions.append({})
                if target_key & glushkov.last:
                    accepting.add(states[target_key])
                worklist.append(target_key)
            transitions[index][label] = states[target_key]

    return ContentModelAutomaton(transitions, accepting, labels)
