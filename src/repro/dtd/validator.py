"""Streaming DTD validation.

The validator consumes the event vocabulary of :mod:`repro.xmlstream.events`
and checks conformance against a :class:`~repro.dtd.schema.DTD` using the
content-model automata, maintaining one automaton state per open element —
exactly the bookkeeping the paper's XSAX parser performs (XSAX itself, in
:mod:`repro.runtime.xsax`, reuses this class and adds on-first events).

Elements that appear in content models but carry no declaration of their own
are treated as having ``ANY`` content, matching common lenient-validation
practice; strict mode turns this into an error.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import XMLValidationError
from repro.dtd.schema import DTD
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.tree import XMLElement, tree_to_events


class _OpenElement:
    """Validation state for one open element."""

    __slots__ = ("name", "state", "declared", "allows_text")

    def __init__(self, name: str, state: Optional[int], declared: bool, allows_text: bool):
        self.name = name
        self.state = state
        self.declared = declared
        self.allows_text = allows_text


class StreamingValidator:
    """Validates an event stream against a DTD, one event at a time.

    The validator is push-based: call :meth:`feed` for every event.  It can
    also be used as a filter (:meth:`validate`) that re-yields events after
    checking them, which is how the engines integrate validation without a
    second pass.

    Parameters
    ----------
    dtd:
        The schema to validate against.
    strict:
        When true, elements without a declaration and text inside
        element-only content raise errors; when false (default) undeclared
        elements are treated as ``ANY`` and whitespace-only text is ignored.
    """

    def __init__(self, dtd: DTD, strict: bool = False):
        self.dtd = dtd
        self.strict = strict
        self._stack: List[_OpenElement] = []
        self._saw_root = False
        self.elements_validated = 0

    # ----------------------------------------------------------- interface

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack)

    def current_state(self) -> Optional[Tuple[str, Optional[int]]]:
        """``(element name, automaton state)`` of the innermost open element."""
        if not self._stack:
            return None
        top = self._stack[-1]
        return top.name, top.state

    def feed(self, event: Event) -> None:
        """Validate a single event, raising :class:`XMLValidationError` on
        violations."""
        if isinstance(event, StartDocument):
            return
        if isinstance(event, EndDocument):
            if self._stack:
                raise XMLValidationError("document ended with unclosed elements")
            return
        if isinstance(event, StartElement):
            self._feed_start(event)
        elif isinstance(event, EndElement):
            self._feed_end(event)
        elif isinstance(event, Text):
            self._feed_text(event)

    def validate(self, events: Iterable[Event]) -> Iterator[Event]:
        """Yield ``events`` unchanged while validating them."""
        for event in events:
            self.feed(event)
            yield event

    # ------------------------------------------------------------ handlers

    def _feed_start(self, event: StartElement) -> None:
        name = event.name
        if not self._stack:
            if self._saw_root:
                raise XMLValidationError("multiple root elements")
            self._saw_root = True
            if name != self.dtd.root:
                raise XMLValidationError(
                    f"root element is <{name}>, expected <{self.dtd.root}>"
                )
        else:
            parent = self._stack[-1]
            if parent.declared and parent.state is not None:
                automaton = self.dtd.automaton(parent.name)
                next_state = automaton.step(parent.state, name)
                if next_state is None:
                    raise XMLValidationError(
                        f"element <{name}> is not allowed here inside <{parent.name}> "
                        f"(content model: "
                        f"{self.dtd.element(parent.name).content.to_dtd_syntax()})"
                    )
                parent.state = next_state
            elif self.strict and parent.declared:
                raise XMLValidationError(
                    f"element <{parent.name}> does not allow child elements"
                )
        declared = self.dtd.has_element(name)
        if not declared and self.strict:
            raise XMLValidationError(f"element <{name}> is not declared in the DTD")
        allows_text = self.dtd.element(name).allows_text() if declared else True
        state = self.dtd.automaton(name).start_state if declared else None
        self._stack.append(_OpenElement(name, state, declared, allows_text))
        self.elements_validated += 1

    def _feed_end(self, event: EndElement) -> None:
        if not self._stack:
            raise XMLValidationError(f"unexpected closing tag </{event.name}>")
        top = self._stack.pop()
        if top.name != event.name:
            raise XMLValidationError(
                f"closing tag </{event.name}> does not match open element <{top.name}>"
            )
        if top.declared and top.state is not None:
            automaton = self.dtd.automaton(top.name)
            if not automaton.is_accepting(top.state):
                raise XMLValidationError(
                    f"element <{top.name}> closed with incomplete content "
                    f"(content model: {self.dtd.element(top.name).content.to_dtd_syntax()})"
                )

    def _feed_text(self, event: Text) -> None:
        if not self._stack:
            if event.text.strip():
                raise XMLValidationError("character data outside the root element")
            return
        top = self._stack[-1]
        if not top.allows_text and event.text.strip():
            if self.strict:
                raise XMLValidationError(
                    f"element <{top.name}> has element-only content but contains text"
                )


def validate_events(events: Iterable[Event], dtd: DTD, strict: bool = False) -> int:
    """Validate a full event stream; returns the number of elements seen."""
    validator = StreamingValidator(dtd, strict=strict)
    for event in events:
        validator.feed(event)
    return validator.elements_validated


def validate_tree(root: XMLElement, dtd: DTD, strict: bool = False) -> int:
    """Validate a materialized tree; returns the number of elements seen."""
    return validate_events(tree_to_events(root, document=True), dtd, strict=strict)
