"""Benchmark harness and reporting.

:mod:`repro.bench.harness` runs (engine, query, document) combinations and
collects :class:`~repro.bench.harness.Measurement` rows;
:mod:`repro.bench.reporting` renders them as the tables and series the
experiments in ``EXPERIMENTS.md`` report.
"""

from repro.bench.harness import BenchmarkHarness, Measurement, run_comparison
from repro.bench.reporting import format_series, format_table, series_by

__all__ = [
    "BenchmarkHarness",
    "Measurement",
    "run_comparison",
    "format_table",
    "format_series",
    "series_by",
]
