"""Benchmark harness and reporting.

:mod:`repro.bench.harness` runs (engine, query, document) combinations and
collects :class:`~repro.bench.harness.Measurement` rows;
:mod:`repro.bench.reporting` renders them as the tables and series the
experiments in ``EXPERIMENTS.md`` report;
:mod:`repro.bench.fleets` is the differential fleet-testing harness behind
the S7 fleet-scaling bench and the multi-tenancy test suite (parameterized
alias fleets, shared-vs-solo byte comparison).
"""

from repro.bench.fleets import (
    FleetOutputMismatch,
    FleetQuery,
    alias_query,
    make_fleet,
    run_differential,
    run_shared,
    run_solo,
)
from repro.bench.harness import BenchmarkHarness, Measurement, run_comparison
from repro.bench.reporting import format_series, format_table, series_by

__all__ = [
    "BenchmarkHarness",
    "Measurement",
    "run_comparison",
    "format_table",
    "format_series",
    "series_by",
    "FleetQuery",
    "FleetOutputMismatch",
    "alias_query",
    "make_fleet",
    "run_differential",
    "run_shared",
    "run_solo",
]
