"""Formatting of benchmark measurements into tables and series.

The paper's evaluation is presented as tables (memory / runtime per engine
per query) and figures (memory / runtime as a function of document size).
The helpers here turn the flat :class:`~repro.bench.harness.Measurement`
rows into exactly those two shapes, as plain text that the benchmark scripts
print and that ``EXPERIMENTS.md`` quotes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.harness import Measurement


def _format_bytes(value: float) -> str:
    if value >= 1 << 20:
        return f"{value / (1 << 20):.2f} MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f} KiB"
    return f"{int(value)} B"


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f} s"
    return f"{value * 1000:.1f} ms"


_METRIC_FORMATTERS: Dict[str, Callable[[float], str]] = {
    "peak_buffer_bytes": _format_bytes,
    "elapsed_seconds": _format_seconds,
    "output_bytes": _format_bytes,
    "document_bytes": _format_bytes,
}


def _metric_value(measurement: Measurement, metric: str) -> float:
    data = measurement.as_dict()
    if metric not in data:
        raise KeyError(f"unknown metric {metric!r}")
    return float(data[metric])  # type: ignore[arg-type]


def format_table(
    measurements: Sequence[Measurement],
    metric: str = "peak_buffer_bytes",
    row_key: str = "query",
    column_key: str = "engine",
    title: Optional[str] = None,
) -> str:
    """Render a rows × columns table of one metric.

    By default rows are queries and columns are engines — the shape of the
    paper's per-query memory/runtime tables.
    """
    formatter = _METRIC_FORMATTERS.get(metric, lambda value: f"{value:g}")
    rows: List[str] = []
    columns: List[str] = []
    cells: Dict[Tuple[str, str], float] = {}
    for measurement in measurements:
        data = measurement.as_dict()
        row = str(data[row_key])
        column = str(data[column_key])
        if row not in rows:
            rows.append(row)
        if column not in columns:
            columns.append(column)
        cells[(row, column)] = _metric_value(measurement, metric)

    header = [row_key] + columns
    body: List[List[str]] = []
    for row in rows:
        line = [row]
        for column in columns:
            value = cells.get((row, column))
            line.append(formatter(value) if value is not None else "-")
        body.append(line)

    widths = [
        max(len(header[index]), *(len(line[index]) for line in body)) if body else len(header[index])
        for index in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[index].ljust(widths[index]) for index in range(len(header))))
    lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    for line in body:
        lines.append("  ".join(line[index].ljust(widths[index]) for index in range(len(header))))
    return "\n".join(lines)


def series_by(
    measurements: Sequence[Measurement],
    x_key: str = "document_bytes",
    metric: str = "peak_buffer_bytes",
    series_key: str = "engine",
) -> Dict[str, List[Tuple[float, float]]]:
    """Group measurements into per-series (x, y) points, sorted by x.

    This is the data behind the scaling figures: one series per engine,
    x = document size, y = the metric.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for measurement in measurements:
        data = measurement.as_dict()
        name = str(data[series_key])
        x = float(data[x_key])  # type: ignore[arg-type]
        y = _metric_value(measurement, metric)
        series.setdefault(name, []).append((x, y))
    for points in series.values():
        points.sort(key=lambda point: point[0])
    return series


def format_series(
    measurements: Sequence[Measurement],
    x_key: str = "document_bytes",
    metric: str = "peak_buffer_bytes",
    series_key: str = "engine",
    title: Optional[str] = None,
) -> str:
    """Render scaling series as an aligned text table (one row per x value)."""
    series = series_by(measurements, x_key=x_key, metric=metric, series_key=series_key)
    formatter = _METRIC_FORMATTERS.get(metric, lambda value: f"{value:g}")
    x_formatter = _METRIC_FORMATTERS.get(x_key, lambda value: f"{value:g}")
    xs = sorted({x for points in series.values() for x, _ in points})
    names = list(series)
    header = [x_key] + names
    body: List[List[str]] = []
    for x in xs:
        line = [x_formatter(x)]
        for name in names:
            match = next((y for px, y in series[name] if px == x), None)
            line.append(formatter(match) if match is not None else "-")
        body.append(line)
    widths = [
        max(len(header[index]), *(len(line[index]) for line in body)) if body else len(header[index])
        for index in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[index].ljust(widths[index]) for index in range(len(header))))
    lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    for line in body:
        lines.append("  ".join(line[index].ljust(widths[index]) for index in range(len(header))))
    return "\n".join(lines)
