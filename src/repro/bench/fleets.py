"""Differential fleet-testing harness: N aliases × M structures, shared vs solo.

The dedup/fan-out path of the multi-query service is exactly where silent
wrong-answer bugs live: a structure key that conflates two different
computations, a fan-out that hands one subscriber another's buffered
output, a trie that prunes an event one group still needed.  This module
makes that path cheap to attack, for tests and for the S7 fleet-scaling
bench alike:

* :func:`make_fleet` builds a parameterized fleet — ``total``
  registrations drawn round-robin from ``M`` base queries, each repeat
  spelled as a fresh *alias* (bound variables renamed; identical
  computation, different text) so plan-cache text keys differ while
  structure keys collide;
* :func:`run_shared` registers the fleet on one
  :class:`~repro.service.service.QueryService` and serves one document in
  a single shared pass (any execution mode, any chunking, dedup on or
  off); :func:`run_shared_async` is the same through
  :class:`~repro.service.async_service.AsyncQueryService`;
* :func:`run_solo` produces the ground truth: one independent
  :class:`~repro.engines.flux_engine.FluxEngine` execution per distinct
  query *text* (aliases are distinct texts, so each spelling is honestly
  re-evaluated, memoized only on exact text equality);
* :func:`run_differential` sweeps execution modes × chunkings and raises
  :class:`FleetOutputMismatch` unless every subscriber's shared output is
  byte-identical to its solo output.

Everything is deterministic — same bases, same ``total``, same chunking →
the same fleet and the same pass — so a failing configuration replays
exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.dtd.schema import DTD
from repro.engines.flux_engine import FluxEngine
from repro.service.service import QueryService

#: Variables bound by ``for``/``let`` clauses — the only names an alias may
#: rename.  Free variables (``$ROOT``) are the engine's binding, not the
#: query's, and renaming one would change the computation.
_BOUND_VAR = re.compile(r"(?:for|let)\s+\$(\w+)\b")


def alias_query(query: str, variant: int) -> str:
    """Spelling ``variant`` of ``query``: same computation, different text.

    Variant 0 is the original text; variant ``k`` suffixes every bound
    variable with ``_ak`` (``$b`` → ``$b_a3``).  The rewrite is a
    whole-name substitution, so distinct bound names cannot collide and
    string literals (which contain no ``$``) are untouched.  The result
    compiles to the same :func:`~repro.runtime.plan_cache.structure_key`
    as the original — variables are α-renamed away there — while its
    plan-cache text key differs.
    """
    if variant == 0:
        return query
    bound = sorted(set(_BOUND_VAR.findall(query)))
    aliased = query
    for name in bound:
        aliased = re.sub(rf"\${name}\b", f"${name}_a{variant}", aliased)
    return aliased


@dataclass(frozen=True)
class FleetQuery:
    """One registration of a generated fleet."""

    key: str
    text: str
    #: Index of the base query this registration is an alias of.
    structure: int
    #: Alias spelling number (0 = the base text itself).
    variant: int


def make_fleet(bases: Sequence[str], total: int) -> List[FleetQuery]:
    """``total`` registrations over ``len(bases)`` structures, round-robin.

    Registration ``i`` is alias variant ``i // M`` of base ``i % M``, so
    every structure gets ``total / M`` subscribers (±1) and every repeat
    of a structure is a differently spelled alias.  Keys are ``q00000``,
    ``q00001``, ... in registration order.
    """
    if not bases:
        raise ValueError("make_fleet() needs at least one base query")
    fleet: List[FleetQuery] = []
    width = max(5, len(str(max(total - 1, 0))))
    for i in range(total):
        structure, variant = i % len(bases), i // len(bases)
        fleet.append(
            FleetQuery(
                key=f"q{i:0{width}d}",
                text=alias_query(bases[structure], variant),
                structure=structure,
                variant=variant,
            )
        )
    return fleet


def chunk_document(
    document: str, chunking: Union[None, int, Sequence[int]]
) -> List[str]:
    """Split ``document`` into feed chunks.

    ``None`` feeds the whole text at once; an ``int`` is a fixed chunk
    size; a sequence of sizes is applied cyclically (sizes < 1 are clamped
    to 1), which is how the property tests replay a random chunking.
    """
    if chunking is None or not document:
        return [document]
    if isinstance(chunking, int):
        sizes: Sequence[int] = [chunking]
    else:
        sizes = list(chunking) or [len(document)]
    chunks: List[str] = []
    position = 0
    cursor = 0
    while position < len(document):
        size = max(1, sizes[cursor % len(sizes)])
        chunks.append(document[position : position + size])
        position += size
        cursor += 1
    return chunks


def run_shared(
    fleet: Sequence[FleetQuery],
    document: str,
    dtd: Union[DTD, str, None] = None,
    execution: str = "threads",
    chunking: Union[None, int, Sequence[int]] = None,
    dedup: bool = True,
    validate: bool = True,
) -> Tuple[Dict[str, str], QueryService]:
    """One shared pass of the whole fleet over ``document``.

    Returns ``({key: output}, service)`` — the service comes back so
    callers can inspect structures, refcounts, and metrics after the pass.
    """
    service = QueryService(
        dtd=dtd, validate=validate, execution=execution, dedup=dedup
    )
    for query in fleet:
        service.register(query.text, key=query.key)
    shared_pass = service.open_pass()
    try:
        for chunk in chunk_document(document, chunking):
            shared_pass.feed(chunk)
        results = shared_pass.finish()
    except BaseException:
        shared_pass.abort()
        raise
    return {key: result.output for key, result in results.items()}, service


def run_shared_async(
    fleet: Sequence[FleetQuery],
    document: str,
    dtd: Union[DTD, str, None] = None,
    chunking: Union[None, int, Sequence[int]] = None,
    dedup: bool = True,
    validate: bool = True,
) -> Dict[str, str]:
    """The fleet through :class:`AsyncQueryService` (one event loop run)."""
    import asyncio

    from repro.service.async_service import AsyncQueryService

    async def _serve() -> Dict[str, str]:
        service = AsyncQueryService(dtd=dtd, validate=validate, dedup=dedup)
        for query in fleet:
            service.register(query.text, key=query.key)
        async with service.open_pass() as shared_pass:
            for chunk in chunk_document(document, chunking):
                await shared_pass.feed(chunk)
            results = await shared_pass.finish()
        return {key: result.output for key, result in results.items()}

    return asyncio.run(_serve())


def run_solo(
    fleet: Sequence[FleetQuery],
    document: str,
    dtd: Union[DTD, str, None] = None,
    validate: bool = True,
    keys: Optional[Iterable[str]] = None,
) -> Dict[str, str]:
    """Ground truth: each registration's query run by a solo engine.

    Memoized on exact text equality only — every alias spelling is its own
    engine run, so the reference does not assume the structural equality
    it is used to check.  ``keys`` restricts evaluation to a sampled
    subset (the 10k bench verifies a sample; tests verify everything).
    """
    engine = FluxEngine(dtd=dtd, validate=validate)
    wanted = None if keys is None else set(keys)
    memo: Dict[str, str] = {}
    outputs: Dict[str, str] = {}
    for query in fleet:
        if wanted is not None and query.key not in wanted:
            continue
        if query.text not in memo:
            memo[query.text] = engine.execute(query.text, document).output
        outputs[query.key] = memo[query.text]
    return outputs


class FleetOutputMismatch(AssertionError):
    """A shared-pass subscriber's output differed from its solo run."""


def _compare(
    solo: Dict[str, str], shared: Dict[str, str], configuration: str
) -> None:
    for key, expected in solo.items():
        actual = shared.get(key)
        if actual != expected:
            raise FleetOutputMismatch(
                f"fleet subscriber {key!r} under {configuration}: shared "
                f"output {actual!r} != solo output {expected!r}"
            )


def run_differential(
    bases: Sequence[str],
    total: int,
    document: str,
    dtd: Union[DTD, str, None] = None,
    executions: Sequence[str] = ("inline", "threads"),
    chunkings: Sequence[Union[None, int, Sequence[int]]] = (None,),
    include_async: bool = False,
    dedup: bool = True,
    validate: bool = True,
    sample: Optional[Iterable[str]] = None,
) -> Dict[str, object]:
    """Shared vs solo over every execution × chunking configuration.

    Builds the fleet, computes the solo ground truth once (optionally on a
    ``sample`` of keys), then runs one shared pass per configuration and
    byte-compares every verified subscriber.  Raises
    :class:`FleetOutputMismatch` on the first disagreement; returns a
    summary dict (fleet size, structure count observed by the service,
    configurations checked) on success.
    """
    fleet = make_fleet(bases, total)
    solo = run_solo(fleet, document, dtd=dtd, validate=validate, keys=sample)
    configurations: List[str] = []
    structure_counts: List[int] = []
    for execution in executions:
        for chunking in chunkings:
            configuration = f"execution={execution!r}, chunking={chunking!r}"
            shared, service = run_shared(
                fleet,
                document,
                dtd=dtd,
                execution=execution,
                chunking=chunking,
                dedup=dedup,
                validate=validate,
            )
            _compare(solo, shared, configuration)
            configurations.append(configuration)
            structure_counts.append(service.metrics.last_pass.structures)
    if include_async:
        for chunking in chunkings:
            configuration = f"execution='async', chunking={chunking!r}"
            shared = run_shared_async(
                fleet,
                document,
                dtd=dtd,
                chunking=chunking,
                dedup=dedup,
                validate=validate,
            )
            _compare(solo, shared, configuration)
            configurations.append(configuration)
    return {
        "queries": total,
        "bases": len(bases),
        "verified_keys": len(solo),
        "configurations": configurations,
        "structures_per_pass": structure_counts,
    }
