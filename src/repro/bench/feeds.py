"""Document feed fixtures shared by the serving benchmarks and tests.

The service benchmarks model two delivery regimes:

* **latency-bound** — documents arrive as chunked feeds with per-chunk
  transport latency (an upload, a socket).  :class:`LatencyFeed` is the
  file-like rendering for in-process consumers (``time.sleep`` releases
  the GIL exactly like a blocking socket read, so other pool workers keep
  evaluating);
* the same feed for a **process pool** must not be drained in the parent
  (that would serialize delivery on the dispatch loop), so
  :class:`LatencyFeedSource` ships the *recipe* — text, chunking, latency
  — and the worker process materializes its own :class:`LatencyFeed`,
  keeping delivery overlapped across workers in both backends.

Both are deliberately deterministic: same text, same chunking, same
latency schedule, so thread/process comparisons measure the backends, not
the fixtures.
"""

from __future__ import annotations

import io
import time

from repro.service.process_pool import DocumentSource


class LatencyFeed(io.TextIOBase):
    """A document arriving over a slow transport, as a file-like object.

    ``read()`` returns the next chunk after ``latency`` seconds.  Works
    anywhere the service layer accepts a file-like document.
    """

    def __init__(self, text: str, chunks: int = 10, latency: float = 0.015):
        step = max(1, (len(text) + chunks - 1) // chunks)
        self._parts = [text[i : i + step] for i in range(0, len(text), step)]
        self._latency = latency
        self._next = 0

    def read(self, size: int = -1) -> str:  # size ignored: chunked source
        if self._next >= len(self._parts):
            return ""
        time.sleep(self._latency)
        part = self._parts[self._next]
        self._next += 1
        return part


class LatencyFeedSource(DocumentSource):
    """The picklable recipe of a :class:`LatencyFeed`.

    Shipped to a :class:`~repro.service.process_pool.ProcessServicePool`
    worker, which materializes (and pays the delivery latency of) the feed
    itself — the process-backend counterpart of handing a
    :class:`LatencyFeed` to a thread pool.
    """

    def __init__(self, text: str, chunks: int = 10, latency: float = 0.015):
        self.text = text
        self.chunks = chunks
        self.latency = latency

    def open(self) -> LatencyFeed:
        return LatencyFeed(self.text, chunks=self.chunks, latency=self.latency)
