"""Benchmark harness: run engines over workloads and collect measurements.

The harness executes (engine, query, document) combinations, checks that all
engines produce identical output for the same (query, document) pair — the
qualitative precondition for any performance comparison — and returns flat
:class:`Measurement` rows that the reporting module formats into the tables
and figures of ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.engines.base import Engine, QueryResult


@dataclass
class Measurement:
    """One engine × query × document data point."""

    engine: str
    query: str
    document: str
    document_bytes: int
    peak_buffer_bytes: int
    elapsed_seconds: float
    output_bytes: int
    events_processed: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def buffer_fraction(self) -> float:
        """Peak buffered bytes as a fraction of the document size."""
        if self.document_bytes == 0:
            return 0.0
        return self.peak_buffer_bytes / self.document_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "query": self.query,
            "document": self.document,
            "document_bytes": self.document_bytes,
            "peak_buffer_bytes": self.peak_buffer_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "output_bytes": self.output_bytes,
            "events_processed": self.events_processed,
            **self.extra,
        }


class OutputMismatchError(AssertionError):
    """Raised when two engines disagree on a query result."""


class BenchmarkHarness:
    """Runs engines over documents and collects measurements.

    Parameters
    ----------
    engines:
        Mapping from display name to engine instance.  The display name is
        what appears in the result tables (so ablation variants of the same
        engine class can be compared side by side).
    check_outputs:
        When true (default) the harness asserts that all engines return the
        same output string for the same query/document, raising
        :class:`OutputMismatchError` otherwise.
    """

    def __init__(self, engines: Dict[str, Engine], check_outputs: bool = True):
        self.engines = dict(engines)
        self.check_outputs = check_outputs
        self.measurements: List[Measurement] = []

    def run(
        self,
        query: str,
        document: str,
        query_name: str,
        document_name: str,
    ) -> List[Measurement]:
        """Run every engine on one (query, document) pair."""
        rows: List[Measurement] = []
        reference_output: Optional[str] = None
        reference_engine: Optional[str] = None
        for name, engine in self.engines.items():
            result = engine.execute(query, document)
            if self.check_outputs:
                if reference_output is None:
                    reference_output = result.output
                    reference_engine = name
                elif result.output != reference_output:
                    raise OutputMismatchError(
                        f"engines {reference_engine!r} and {name!r} disagree on "
                        f"query {query_name!r} over document {document_name!r}"
                    )
            rows.append(self._measurement(name, result, query_name, document_name, document))
        self.measurements.extend(rows)
        return rows

    def run_matrix(
        self,
        queries: Dict[str, str],
        documents: Dict[str, str],
    ) -> List[Measurement]:
        """Run every engine on the full query × document matrix."""
        rows: List[Measurement] = []
        for query_name, query in queries.items():
            for document_name, document in documents.items():
                rows.extend(self.run(query, document, query_name, document_name))
        return rows

    @staticmethod
    def _measurement(
        engine_name: str,
        result: QueryResult,
        query_name: str,
        document_name: str,
        document: str,
    ) -> Measurement:
        return Measurement(
            engine=engine_name,
            query=query_name,
            document=document_name,
            document_bytes=len(document),
            peak_buffer_bytes=result.stats.peak_buffer_bytes,
            elapsed_seconds=result.stats.elapsed_seconds,
            output_bytes=result.stats.output_bytes,
            events_processed=result.stats.events_processed,
        )


def run_comparison(
    engines: Dict[str, Engine],
    query: str,
    document: str,
    query_name: str = "query",
    document_name: str = "document",
    check_outputs: bool = True,
) -> List[Measurement]:
    """One-shot comparison of several engines on a single query/document."""
    harness = BenchmarkHarness(engines, check_outputs=check_outputs)
    return harness.run(query, document, query_name, document_name)
