"""Streaming XML substrate.

This package provides the event model, a hand-written streaming parser, an
in-memory tree representation, and a serializer.  It is the foundation both
for the streamed FluX runtime (which consumes events) and for the baseline
engines (which materialize trees).

Public API
----------

* :class:`~repro.xmlstream.events.Event` and its concrete subclasses
  (:class:`StartDocument`, :class:`EndDocument`, :class:`StartElement`,
  :class:`EndElement`, :class:`Text`).
* :func:`~repro.xmlstream.parser.parse_events` — lazily yield events from an
  XML string or file-like object.
* :class:`~repro.xmlstream.tree.XMLElement` / :class:`XMLText` and
  :func:`~repro.xmlstream.tree.parse_tree` — materialized documents.
* :func:`~repro.xmlstream.serializer.serialize_tree` /
  :func:`serialize_events` — turn trees or event streams back into text.
"""

from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import StreamingXMLParser, parse_events
from repro.xmlstream.serializer import (
    escape_attribute,
    escape_text,
    serialize_events,
    serialize_tree,
)
from repro.xmlstream.tree import XMLElement, XMLText, build_tree, parse_tree, tree_to_events

__all__ = [
    "Event",
    "StartDocument",
    "EndDocument",
    "StartElement",
    "EndElement",
    "Text",
    "StreamingXMLParser",
    "parse_events",
    "XMLElement",
    "XMLText",
    "build_tree",
    "parse_tree",
    "tree_to_events",
    "serialize_tree",
    "serialize_events",
    "escape_text",
    "escape_attribute",
]
