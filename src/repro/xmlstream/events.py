"""SAX-style event model for streaming XML.

The streaming parser (:mod:`repro.xmlstream.parser`) produces instances of the
classes defined here; the FluX runtime, the DTD validator and the XSAX parser
all operate on this event vocabulary.  Events are small immutable value
objects so they can be freely shared, compared in tests, and replayed.

The XSAX parser of the paper extends the vocabulary with *on-first* events;
that extension lives in :mod:`repro.runtime.xsax` because it depends on the
DTD machinery, not on raw XML.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple


@dataclass(frozen=True)
class Event:
    """Base class for all streaming events."""

    __slots__ = ()

    def size_estimate(self) -> int:
        """Return the approximate number of bytes this event represents.

        Used by the buffer manager for memory accounting.  Structural events
        cost a small constant; text costs its length.
        """
        return 8


@dataclass(frozen=True)
class StartDocument(Event):
    """Emitted once, before any other event."""

    __slots__ = ()


@dataclass(frozen=True)
class EndDocument(Event):
    """Emitted once, after the root element has been closed."""

    __slots__ = ()


@dataclass(frozen=True)
class StartElement(Event):
    """Opening tag of an element.

    Attributes are stored as a tuple of ``(name, value)`` pairs so the event
    stays hashable; :attr:`attributes` exposes them as a dict.
    """

    name: str
    attrs: Tuple[Tuple[str, str], ...] = ()

    @property
    def attributes(self) -> Dict[str, str]:
        """Attributes of the element as a plain dictionary."""
        return dict(self.attrs)

    def size_estimate(self) -> int:
        attr_bytes = sum(len(k) + len(v) + 4 for k, v in self.attrs)
        return 16 + len(self.name) + attr_bytes


@dataclass(frozen=True)
class EndElement(Event):
    """Closing tag of an element."""

    name: str

    def size_estimate(self) -> int:
        return 8 + len(self.name)


@dataclass(frozen=True)
class Text(Event):
    """Character data between tags.

    The parser strips pure-whitespace runs between elements by default (they
    carry no information for the data-oriented documents the paper targets)
    but preserves whitespace inside mixed content.
    """

    text: str

    def size_estimate(self) -> int:
        return len(self.text)


def element_events(name: str, attrs: Dict[str, str], body: Iterable[Event]) -> Iterator[Event]:
    """Wrap ``body`` events in a ``StartElement``/``EndElement`` pair.

    Convenience used by constructors in the runtime and by tests.
    """
    yield StartElement(name, tuple(sorted(attrs.items())) if attrs else ())
    for event in body:
        yield event
    yield EndElement(name)


def events_depth_ok(events: Iterable[Event]) -> bool:
    """Return ``True`` when start/end tags in ``events`` are balanced.

    This is a structural sanity check used by tests and by the serializer's
    strict mode; it does not validate against any schema.
    """
    stack: List[str] = []
    for event in events:
        if isinstance(event, StartElement):
            stack.append(event.name)
        elif isinstance(event, EndElement):
            if not stack or stack[-1] != event.name:
                return False
            stack.pop()
    return not stack
