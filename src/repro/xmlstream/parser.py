"""Hand-written streaming XML parser.

The parser produces the event vocabulary of :mod:`repro.xmlstream.events`
lazily, one event at a time, without ever materializing the document.  It is
deliberately self-contained (no :mod:`xml.sax`) so the whole stack — from
bytes to query results — is implemented in this repository, and so the
benchmarks measure a single, consistent parsing substrate for every engine.

Supported XML subset
--------------------

* elements, attributes (single- or double-quoted), character data,
* the five predefined entities plus decimal/hexadecimal character references,
* comments, processing instructions, CDATA sections, and the XML declaration
  (all skipped, CDATA contributing its literal text),
* an optional ``<!DOCTYPE ...>`` whose *internal subset* is captured verbatim
  on the parser instance (:attr:`StreamingXMLParser.doctype_internal_subset`)
  so documents can carry their own DTD,
* whitespace-only text between elements is dropped unless
  ``keep_whitespace=True``.

Out of scope (as for the paper): namespaces, external entities, and DTD-driven
attribute defaulting.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


def resolve_entities(text: str, offset: int = 0) -> str:
    """Replace entity and character references in ``text``.

    ``offset`` is only used to report useful positions in error messages.
    """
    if "&" not in text:
        return text
    parts: List[str] = []
    i = 0
    length = len(text)
    while i < length:
        amp = text.find("&", i)
        if amp < 0:
            parts.append(text[i:])
            break
        parts.append(text[i:amp])
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise XMLSyntaxError("unterminated entity reference", offset + amp)
        name = text[amp + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                parts.append(chr(int(name[2:], 16)))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{name};", offset + amp) from exc
        elif name.startswith("#"):
            try:
                parts.append(chr(int(name[1:], 10)))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{name};", offset + amp) from exc
        elif name in _PREDEFINED_ENTITIES:
            parts.append(_PREDEFINED_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", offset + amp)
        i = semi + 1
    return "".join(parts)


class StreamingXMLParser:
    """Incremental XML parser yielding :class:`~repro.xmlstream.events.Event`.

    The parser reads from a string or a text file-like object.  File-like
    input is read in chunks so that arbitrarily large documents can be
    processed with bounded parser-side memory; only the engines' explicit
    buffers decide how much of the document is retained.

    Parameters
    ----------
    source:
        XML text, or a file-like object with a ``read(size)`` method.
    keep_whitespace:
        When ``True``, whitespace-only character data between elements is
        reported as :class:`Text` events instead of being dropped.
    chunk_size:
        Read granularity for file-like sources.
    """

    def __init__(
        self,
        source: Union[str, io.TextIOBase],
        keep_whitespace: bool = False,
        chunk_size: int = 1 << 16,
    ):
        if isinstance(source, str):
            self._reader = None
            self._buffer = source
            self._eof = True
        else:
            self._reader = source
            self._buffer = ""
            self._eof = False
        self._pos = 0
        self._consumed = 0
        self._chunk_size = chunk_size
        self._keep_whitespace = keep_whitespace
        self.doctype_internal_subset: Optional[str] = None
        self.doctype_name: Optional[str] = None

    # ------------------------------------------------------------------ I/O

    def _fill(self, need: int = 1) -> None:
        """Ensure at least ``need`` unread characters are buffered (or EOF).

        Filling never shifts existing buffer indices; the consumed prefix is
        dropped separately by :meth:`_compact` at safe points of the main
        loop, so in-flight index arithmetic stays valid.
        """
        while not self._eof and len(self._buffer) - self._pos < need:
            chunk = self._reader.read(self._chunk_size)
            if not chunk:
                self._eof = True
                break
            self._buffer += chunk

    def _compact(self) -> None:
        """Drop the already-consumed buffer prefix to keep memory bounded."""
        if self._pos > 0:
            self._consumed += self._pos
            self._buffer = self._buffer[self._pos :]
            self._pos = 0

    def _find(self, needle: str, start: int) -> int:
        """Find ``needle`` at/after buffer index ``start``, filling as needed."""
        while True:
            idx = self._buffer.find(needle, start)
            if idx >= 0:
                return idx
            if self._eof:
                return -1
            search_from = max(start, len(self._buffer) - len(needle) + 1)
            self._fill(len(self._buffer) - self._pos + self._chunk_size)
            start = search_from

    def _offset(self, buffer_index: int) -> int:
        """Absolute character offset of a buffer index, for error messages."""
        return self._consumed + buffer_index

    # ------------------------------------------------------------ main loop

    def events(self) -> Iterator[Event]:
        """Yield the event stream for the whole document."""
        yield StartDocument()
        depth = 0
        saw_root = False
        text_parts: List[str] = []

        while True:
            self._compact()
            self._fill(1)
            if self._pos >= len(self._buffer):
                break
            lt = self._find("<", self._pos)
            if lt < 0:
                # Trailing character data after the last tag.
                text_parts.append(self._buffer[self._pos :])
                self._pos = len(self._buffer)
                break
            if lt > self._pos:
                text_parts.append(self._buffer[self._pos : lt])
                self._pos = lt
            flushed = self._flush_text(text_parts, depth)
            if flushed is not None:
                yield flushed
            event, closed = self._parse_markup()
            if event is None:
                continue
            if isinstance(event, StartElement):
                if depth == 0 and saw_root:
                    raise XMLSyntaxError(
                        "multiple root elements", self._offset(self._pos)
                    )
                saw_root = True
                yield event
                if closed:
                    yield EndElement(event.name)
                else:
                    depth += 1
            elif isinstance(event, EndElement):
                depth -= 1
                if depth < 0:
                    raise XMLSyntaxError(
                        f"unexpected closing tag </{event.name}>", self._offset(self._pos)
                    )
                yield event
            else:  # pragma: no cover - defensive
                yield event

        flushed = self._flush_text(text_parts, depth)
        if flushed is not None and depth > 0:
            yield flushed
        if depth != 0:
            raise XMLSyntaxError("unexpected end of document: unclosed elements")
        if not saw_root:
            raise XMLSyntaxError("document has no root element")
        yield EndDocument()

    __iter__ = events

    # ------------------------------------------------------------- helpers

    def _flush_text(self, parts: List[str], depth: int) -> Optional[Text]:
        if not parts:
            return None
        raw = "".join(parts)
        parts.clear()
        if depth == 0:
            if raw.strip():
                raise XMLSyntaxError("character data outside the root element")
            return None
        if not self._keep_whitespace and not raw.strip():
            return None
        return Text(resolve_entities(raw))

    def _parse_markup(self) -> Tuple[Optional[Event], bool]:
        """Parse one markup construct starting at ``<``.

        Returns ``(event, self_closed)``; ``event`` is ``None`` for skipped
        constructs (comments, PIs, doctype, XML declaration).
        """
        self._fill(4)
        buf = self._buffer
        pos = self._pos
        if buf.startswith("<!--", pos):
            end = self._find("-->", pos + 4)
            if end < 0:
                raise XMLSyntaxError("unterminated comment", self._offset(pos))
            self._pos = end + 3
            return None, False
        if buf.startswith("<![CDATA[", pos):
            end = self._find("]]>", pos + 9)
            if end < 0:
                raise XMLSyntaxError("unterminated CDATA section", self._offset(pos))
            text = self._buffer[pos + 9 : end]
            self._pos = end + 3
            return (Text(text) if text else None), False
        if buf.startswith("<?", pos):
            end = self._find("?>", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated processing instruction", self._offset(pos))
            self._pos = end + 2
            return None, False
        if buf.startswith("<!DOCTYPE", pos):
            self._parse_doctype(pos)
            return None, False
        if buf.startswith("</", pos):
            end = self._find(">", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated closing tag", self._offset(pos))
            name = self._buffer[pos + 2 : end].strip()
            if not name:
                raise XMLSyntaxError("empty closing tag", self._offset(pos))
            self._pos = end + 1
            return EndElement(name), False
        return self._parse_start_tag(pos)

    def _parse_doctype(self, pos: int) -> None:
        """Consume a DOCTYPE declaration, capturing its internal subset."""
        # Find the end of the declaration, honouring an optional [...] subset.
        i = pos + len("<!DOCTYPE")
        subset_start = -1
        subset_end = -1
        while True:
            self._fill(len(self._buffer) - self._pos + 1)
            buf = self._buffer
            if i >= len(buf):
                if self._eof:
                    raise XMLSyntaxError("unterminated DOCTYPE", self._offset(pos))
                continue
            ch = buf[i]
            if ch == "[" and subset_start < 0:
                subset_start = i + 1
                close = self._find("]", i + 1)
                if close < 0:
                    raise XMLSyntaxError("unterminated DOCTYPE internal subset", self._offset(pos))
                subset_end = close
                i = close + 1
                continue
            if ch == ">":
                break
            i += 1
        header = self._buffer[pos + len("<!DOCTYPE") : (subset_start - 1 if subset_start > 0 else i)]
        name = header.strip().split()[0] if header.strip() else None
        self.doctype_name = name
        if subset_start >= 0:
            self.doctype_internal_subset = self._buffer[subset_start:subset_end]
        self._pos = i + 1

    def _parse_start_tag(self, pos: int) -> Tuple[StartElement, bool]:
        end = self._find(">", pos + 1)
        if end < 0:
            raise XMLSyntaxError("unterminated start tag", self._offset(pos))
        # Attribute values may legally contain ">", but the documents this
        # library targets (and produces) escape it; we accept the restriction.
        raw = self._buffer[pos + 1 : end]
        self._pos = end + 1
        self_closed = raw.endswith("/")
        if self_closed:
            raw = raw[:-1]
        raw = raw.strip()
        if not raw:
            raise XMLSyntaxError("empty start tag", self._offset(pos))
        name, attrs = self._parse_tag_content(raw, pos)
        return StartElement(name, attrs), self_closed

    def _parse_tag_content(
        self, raw: str, pos: int
    ) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        i = 0
        length = len(raw)
        if not _is_name_start(raw[0]):
            raise XMLSyntaxError(f"invalid element name in <{raw}>", self._offset(pos))
        while i < length and _is_name_char(raw[i]):
            i += 1
        name = raw[:i]
        attrs: List[Tuple[str, str]] = []
        while i < length:
            while i < length and raw[i].isspace():
                i += 1
            if i >= length:
                break
            start = i
            while i < length and _is_name_char(raw[i]):
                i += 1
            attr_name = raw[start:i]
            if not attr_name:
                raise XMLSyntaxError(f"malformed attribute in <{raw}>", self._offset(pos))
            while i < length and raw[i].isspace():
                i += 1
            if i >= length or raw[i] != "=":
                raise XMLSyntaxError(
                    f"attribute {attr_name!r} is missing a value", self._offset(pos)
                )
            i += 1
            while i < length and raw[i].isspace():
                i += 1
            if i >= length or raw[i] not in "\"'":
                raise XMLSyntaxError(
                    f"attribute {attr_name!r} value must be quoted", self._offset(pos)
                )
            quote = raw[i]
            i += 1
            value_end = raw.find(quote, i)
            if value_end < 0:
                raise XMLSyntaxError(
                    f"unterminated value for attribute {attr_name!r}", self._offset(pos)
                )
            attrs.append((attr_name, resolve_entities(raw[i:value_end])))
            i = value_end + 1
        return name, tuple(attrs)


def parse_events(
    source: Union[str, io.TextIOBase], keep_whitespace: bool = False
) -> Iterator[Event]:
    """Yield streaming events for ``source`` (string or text file object)."""
    return StreamingXMLParser(source, keep_whitespace=keep_whitespace).events()


def parse_events_with_dtd(
    source: Union[str, io.TextIOBase], keep_whitespace: bool = False
) -> Tuple[Iterable[Event], StreamingXMLParser]:
    """Return ``(events, parser)`` so callers can inspect the DOCTYPE subset.

    The DOCTYPE is only available once parsing has progressed past the
    prolog; callers typically consume the first event (``StartDocument``)
    plus the root ``StartElement`` before reading
    :attr:`StreamingXMLParser.doctype_internal_subset`.
    """
    parser = StreamingXMLParser(source, keep_whitespace=keep_whitespace)
    return parser.events(), parser
