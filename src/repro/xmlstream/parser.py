"""Hand-written streaming XML parser.

The parser produces the event vocabulary of :mod:`repro.xmlstream.events`
lazily, one event at a time, without ever materializing the document.  It is
deliberately self-contained (no :mod:`xml.sax`) so the whole stack — from
bytes to query results — is implemented in this repository, and so the
benchmarks measure a single, consistent parsing substrate for every engine.

Supported XML subset
--------------------

* elements, attributes (single- or double-quoted), character data,
* the five predefined entities plus decimal/hexadecimal character references,
* comments, processing instructions, CDATA sections, and the XML declaration
  (all skipped, CDATA contributing its literal text),
* an optional ``<!DOCTYPE ...>`` whose *internal subset* is captured verbatim
  on the parser instance (:attr:`StreamingXMLParser.doctype_internal_subset`)
  so documents can carry their own DTD,
* whitespace-only text between elements is dropped unless
  ``keep_whitespace=True``.

Out of scope (as for the paper): namespaces, external entities, and DTD-driven
attribute defaulting.

Incremental (push) mode
-----------------------

:meth:`StreamingXMLParser.incremental` builds a parser with no source; the
caller pushes text with :meth:`StreamingXMLParser.feed`, which returns the
events that became complete, and ends the document with
:meth:`StreamingXMLParser.close`.  Events are identical to a one-shot parse of
the concatenated chunks regardless of where the chunk boundaries fall — this
is what the multi-query service uses to ingest documents as they arrive.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


class _Incomplete(Exception):
    """Internal: the buffered input ends inside an unfinished construct.

    Only raised in incremental mode; the main loop catches it and waits for
    the next :meth:`StreamingXMLParser.feed` call.  Parsing methods never
    consume input before raising, so a retry with more data is safe.
    """


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


def resolve_entities(text: str, offset: int = 0) -> str:
    """Replace entity and character references in ``text``.

    ``offset`` is only used to report useful positions in error messages.
    """
    if "&" not in text:
        return text
    parts: List[str] = []
    i = 0
    length = len(text)
    while i < length:
        amp = text.find("&", i)
        if amp < 0:
            parts.append(text[i:])
            break
        parts.append(text[i:amp])
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise XMLSyntaxError("unterminated entity reference", offset + amp)
        name = text[amp + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                parts.append(chr(int(name[2:], 16)))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{name};", offset + amp) from exc
        elif name.startswith("#"):
            try:
                parts.append(chr(int(name[1:], 10)))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{name};", offset + amp) from exc
        elif name in _PREDEFINED_ENTITIES:
            parts.append(_PREDEFINED_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", offset + amp)
        i = semi + 1
    return "".join(parts)


class StreamingXMLParser:
    """Incremental XML parser yielding :class:`~repro.xmlstream.events.Event`.

    The parser reads from a string or a text file-like object.  File-like
    input is read in chunks so that arbitrarily large documents can be
    processed with bounded parser-side memory; only the engines' explicit
    buffers decide how much of the document is retained.

    Parameters
    ----------
    source:
        XML text, a file-like object with a ``read(size)`` method, or
        ``None`` for incremental (push) mode, where input arrives through
        :meth:`feed` / :meth:`close`.
    keep_whitespace:
        When ``True``, whitespace-only character data between elements is
        reported as :class:`Text` events instead of being dropped.
    chunk_size:
        Read granularity for file-like sources.
    """

    def __init__(
        self,
        source: Union[str, io.TextIOBase, None],
        keep_whitespace: bool = False,
        chunk_size: int = 1 << 16,
    ):
        if source is None:
            self._reader = None
            self._buffer = ""
            self._eof = False
            self._push = True
        elif isinstance(source, str):
            self._reader = None
            self._buffer = source
            self._eof = True
            self._push = False
        else:
            self._reader = source
            self._buffer = ""
            self._eof = False
            self._push = False
        self._pos = 0
        self._consumed = 0
        self._chunk_size = chunk_size
        self._keep_whitespace = keep_whitespace
        self._closed = False
        # Scan-resume memo for push mode: when a _find() stalls on
        # _Incomplete, remember (needle, absolute construct start) and the
        # absolute position already scanned, so the retry after the next
        # feed() does not rescan the whole buffered construct (which would
        # make a text node spanning K chunks cost O(K^2)).
        self._resume_key: Optional[Tuple[str, int]] = None
        self._resume_from = 0
        # Push mode: a syntax error hit while earlier events of the same
        # feed() are already complete is held back until the next call, so
        # callers always receive the same event prefix a one-shot parse
        # yields before raising.
        self._deferred_error: Optional[XMLSyntaxError] = None
        # Document-level state of the resumable main loop.
        self._started = False
        self._finished = False
        self._depth = 0
        self._saw_root = False
        self._text_parts: List[str] = []
        self.doctype_internal_subset: Optional[str] = None
        self.doctype_name: Optional[str] = None

    @classmethod
    def incremental(cls, keep_whitespace: bool = False) -> "StreamingXMLParser":
        """A push-mode parser: call :meth:`feed` / :meth:`close` on it."""
        return cls(None, keep_whitespace=keep_whitespace)

    # ------------------------------------------------------------------ I/O

    def _fill(self, need: int = 1) -> None:
        """Ensure at least ``need`` unread characters are buffered (or EOF).

        Filling never shifts existing buffer indices; the consumed prefix is
        dropped separately by :meth:`_compact` at safe points of the main
        loop, so in-flight index arithmetic stays valid.  In push mode,
        raises :class:`_Incomplete` when the data is not there yet.
        """
        while not self._eof and len(self._buffer) - self._pos < need:
            if self._reader is None:
                if self._closed:
                    self._eof = True
                    break
                raise _Incomplete()
            chunk = self._reader.read(self._chunk_size)
            if not chunk:
                self._eof = True
                break
            self._append(chunk)

    def _append(self, data: str) -> None:
        """Append ``data`` to the buffer in amortized O(len(data)).

        ``self._buffer += data`` on the attribute always copies the whole
        buffer (the attribute slot keeps a second reference), turning a
        construct spanning K chunks into O(K^2) total copying.  Detaching
        the string into a sole-reference local first lets CPython extend it
        in place.
        """
        buffer = self._buffer
        self._buffer = ""
        buffer += data
        self._buffer = buffer

    def _compact(self) -> None:
        """Drop the already-consumed buffer prefix to keep memory bounded.

        Only once the prefix outgrows a chunk: compacting on every construct
        would copy the buffer tail per element (a ~chunk_size/construct_size
        constant-factor tax on the whole parse).  String sources never
        compact — the document is resident anyway, and slicing it per
        construct would cost O(n^2).
        """
        if self._reader is None and not self._push:
            return
        if self._pos >= self._chunk_size:
            self._force_compact()

    def _force_compact(self) -> None:
        if self._pos > 0:
            self._consumed += self._pos
            self._buffer = self._buffer[self._pos :]
            self._pos = 0

    def _find(self, needle: str, start: int) -> int:
        """Find ``needle`` at/after buffer index ``start``, filling as needed.

        In push mode the search position survives an :class:`_Incomplete`
        stall (in absolute offsets, so buffer compaction cannot skew it):
        re-entering the same scan resumes where the last one stopped.
        """
        key = (needle, self._offset(start))
        if self._resume_key == key:
            start = max(start, self._resume_from - self._consumed)
        while True:
            idx = self._buffer.find(needle, start)
            if idx >= 0:
                # Clear only this scan's memo: the _find("<") that re-enters
                # a stalled construct on every retry must not discard the
                # inner end-scan's progress (that would make a CDATA or
                # comment spanning K chunks cost O(K^2) again).
                if self._resume_key == key:
                    self._resume_key = None
                return idx
            if self._eof:
                if self._resume_key == key:
                    self._resume_key = None
                return -1
            search_from = max(start, len(self._buffer) - len(needle) + 1)
            try:
                self._fill(len(self._buffer) - self._pos + self._chunk_size)
            except _Incomplete:
                self._resume_key = key
                self._resume_from = self._offset(search_from)
                raise
            start = search_from

    def _offset(self, buffer_index: int) -> int:
        """Absolute character offset of a buffer index, for error messages."""
        return self._consumed + buffer_index

    # ------------------------------------------------------------ main loop

    def events(self) -> Iterator[Event]:
        """Yield the event stream for the whole document (pull mode only)."""
        if self._push:
            raise ValueError(
                "events() needs a source; an incremental parser is driven "
                "with feed()/close()"
            )
        while not self._finished:
            for event in self._advance():
                yield event

    __iter__ = events

    # ----------------------------------------------------------- push mode

    def feed(self, data: str) -> List[Event]:  # hot-loop
        """Push ``data`` into the parser, returning the completed events.

        Only available on :meth:`incremental` parsers.  Events are exactly
        those a one-shot parse would have produced by this point; input that
        ends inside an unfinished construct is retained until more data (or
        :meth:`close`) arrives.
        """
        if not self._push:
            # hot-loop-ok: misuse error path, never taken per chunk
            raise ValueError("feed() is only available on incremental parsers")
        if self._closed:
            # hot-loop-ok: misuse error path, never taken per chunk
            raise ValueError("feed() called after close()")
        self._append(data)
        return self._pump()

    def close(self) -> List[Event]:
        """Signal end of input, returning the remaining events.

        Raises :class:`~repro.errors.XMLSyntaxError` if the document is
        incomplete (unclosed elements, no root, an unfinished construct).
        """
        if not self._push:
            raise ValueError("close() is only available on incremental parsers")
        self._closed = True
        return self._pump()

    def _pump(self) -> List[Event]:
        """Run the step machine until it stalls, collecting events."""
        if self._deferred_error is not None:
            raise self._deferred_error
        collected: List[Event] = []
        while not self._finished:
            try:
                collected.extend(self._advance())
            except _Incomplete:
                break
            except XMLSyntaxError as exc:
                if not collected:
                    raise
                self._deferred_error = exc
                break
        return collected

    # ------------------------------------------------------- the step loop

    def _advance(self) -> List[Event]:
        """Parse one step, returning its events (resumable on _Incomplete).

        One step is the document start, one markup construct (with any text
        preceding it), or the document end.  State mutated before an
        :class:`_Incomplete` escape is limited to already-complete text
        moved into ``self._text_parts``, so re-entering is always safe.
        """
        out: List[Event] = []
        if self._finished:
            return out
        if not self._started:
            self._started = True
            out.append(StartDocument())
            return out
        self._compact()
        self._fill(1)
        if self._pos >= len(self._buffer):
            return self._finish_document(out)
        try:
            lt = self._find("<", self._pos)
        except _Incomplete:
            # The scan covered the whole buffer without a "<": everything
            # seen is character data.  Bank it and drop it from the buffer,
            # so a text node spanning K chunks costs O(K) — the buffer (and
            # each feed()'s string concatenation) stays one chunk long.
            if len(self._buffer) > self._pos:
                self._text_parts.append(self._buffer[self._pos :])
                self._pos = len(self._buffer)
                self._force_compact()
            raise
        if lt < 0:
            # Trailing character data after the last tag.
            self._text_parts.append(self._buffer[self._pos :])
            self._pos = len(self._buffer)
            return self._finish_document(out)
        if lt > self._pos:
            self._text_parts.append(self._buffer[self._pos : lt])
            self._pos = lt
        flushed = self._flush_text(self._text_parts, self._depth)
        if flushed is not None:
            out.append(flushed)
        try:
            event, closed = self._parse_markup()
        except _Incomplete:
            if out:
                return out
            raise
        if event is None:
            return out
        if isinstance(event, StartElement):
            if self._depth == 0 and self._saw_root:
                raise XMLSyntaxError("multiple root elements", self._offset(self._pos))
            self._saw_root = True
            out.append(event)
            if closed:
                out.append(EndElement(event.name))
            else:
                self._depth += 1
        elif isinstance(event, EndElement):
            self._depth -= 1
            if self._depth < 0:
                raise XMLSyntaxError(
                    f"unexpected closing tag </{event.name}>", self._offset(self._pos)
                )
            out.append(event)
        else:  # pragma: no cover - defensive
            out.append(event)
        return out

    def _finish_document(self, out: List[Event]) -> List[Event]:
        flushed = self._flush_text(self._text_parts, self._depth)
        if flushed is not None and self._depth > 0:
            out.append(flushed)
        if self._depth != 0:
            raise XMLSyntaxError("unexpected end of document: unclosed elements")
        if not self._saw_root:
            raise XMLSyntaxError("document has no root element")
        out.append(EndDocument())
        self._finished = True
        return out

    # ------------------------------------------------------------- helpers

    def _flush_text(self, parts: List[str], depth: int) -> Optional[Text]:
        if not parts:
            return None
        raw = "".join(parts)
        parts.clear()
        if depth == 0:
            if raw.strip():
                raise XMLSyntaxError("character data outside the root element")
            return None
        if not self._keep_whitespace and not raw.strip():
            return None
        return Text(resolve_entities(raw))

    def _parse_markup(self) -> Tuple[Optional[Event], bool]:
        """Parse one markup construct starting at ``<``.

        Returns ``(event, self_closed)``; ``event`` is ``None`` for skipped
        constructs (comments, PIs, doctype, XML declaration).
        """
        # Look ahead just far enough to discriminate the construct: "<!" may
        # open a comment (4 chars), CDATA or DOCTYPE (9 chars).  Requesting
        # only what the marker requires keeps push-mode latency minimal and
        # fixes misparsing when a chunk boundary splits "<!DOCTYPE"/"<![CDATA[".
        self._fill(2)
        pos = self._pos
        if self._buffer.startswith("<!", pos):
            self._fill(3)
            marker = self._buffer[pos + 2 : pos + 3]
            if marker == "-":
                self._fill(4)
            elif marker in ("[", "D"):
                self._fill(9)
        buf = self._buffer
        if buf.startswith("<!--", pos):
            end = self._find("-->", pos + 4)
            if end < 0:
                raise XMLSyntaxError("unterminated comment", self._offset(pos))
            self._pos = end + 3
            return None, False
        if buf.startswith("<![CDATA[", pos):
            end = self._find("]]>", pos + 9)
            if end < 0:
                raise XMLSyntaxError("unterminated CDATA section", self._offset(pos))
            text = self._buffer[pos + 9 : end]
            self._pos = end + 3
            return (Text(text) if text else None), False
        if buf.startswith("<?", pos):
            end = self._find("?>", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated processing instruction", self._offset(pos))
            self._pos = end + 2
            return None, False
        if buf.startswith("<!DOCTYPE", pos):
            self._parse_doctype(pos)
            return None, False
        if buf.startswith("</", pos):
            end = self._find(">", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated closing tag", self._offset(pos))
            name = self._buffer[pos + 2 : end].strip()
            if not name:
                raise XMLSyntaxError("empty closing tag", self._offset(pos))
            self._pos = end + 1
            return EndElement(name), False
        return self._parse_start_tag(pos)

    def _parse_doctype(self, pos: int) -> None:
        """Consume a DOCTYPE declaration, capturing its internal subset."""
        # Find the end of the declaration, honouring an optional [...] subset.
        i = pos + len("<!DOCTYPE")
        subset_start = -1
        subset_end = -1
        while True:
            # Request exactly up to index i — asking for more than is
            # buffered would stall a push-mode parse for the rest of the
            # document instead of just to the end of the declaration.
            self._fill(i - self._pos + 1)
            buf = self._buffer
            if i >= len(buf):
                raise XMLSyntaxError("unterminated DOCTYPE", self._offset(pos))
            ch = buf[i]
            if ch == "[" and subset_start < 0:
                subset_start = i + 1
                close = self._find("]", i + 1)
                if close < 0:
                    raise XMLSyntaxError("unterminated DOCTYPE internal subset", self._offset(pos))
                subset_end = close
                i = close + 1
                continue
            if ch == ">":
                break
            i += 1
        header = self._buffer[pos + len("<!DOCTYPE") : (subset_start - 1 if subset_start > 0 else i)]
        name = header.strip().split()[0] if header.strip() else None
        self.doctype_name = name
        if subset_start >= 0:
            self.doctype_internal_subset = self._buffer[subset_start:subset_end]
        self._pos = i + 1

    def _parse_start_tag(self, pos: int) -> Tuple[StartElement, bool]:
        end = self._find(">", pos + 1)
        if end < 0:
            raise XMLSyntaxError("unterminated start tag", self._offset(pos))
        # Attribute values may legally contain ">", but the documents this
        # library targets (and produces) escape it; we accept the restriction.
        raw = self._buffer[pos + 1 : end]
        self._pos = end + 1
        self_closed = raw.endswith("/")
        if self_closed:
            raw = raw[:-1]
        raw = raw.strip()
        if not raw:
            raise XMLSyntaxError("empty start tag", self._offset(pos))
        name, attrs = self._parse_tag_content(raw, pos)
        return StartElement(name, attrs), self_closed

    def _parse_tag_content(
        self, raw: str, pos: int
    ) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        i = 0
        length = len(raw)
        if not _is_name_start(raw[0]):
            raise XMLSyntaxError(f"invalid element name in <{raw}>", self._offset(pos))
        while i < length and _is_name_char(raw[i]):
            i += 1
        name = raw[:i]
        attrs: List[Tuple[str, str]] = []
        while i < length:
            while i < length and raw[i].isspace():
                i += 1
            if i >= length:
                break
            start = i
            while i < length and _is_name_char(raw[i]):
                i += 1
            attr_name = raw[start:i]
            if not attr_name:
                raise XMLSyntaxError(f"malformed attribute in <{raw}>", self._offset(pos))
            while i < length and raw[i].isspace():
                i += 1
            if i >= length or raw[i] != "=":
                raise XMLSyntaxError(
                    f"attribute {attr_name!r} is missing a value", self._offset(pos)
                )
            i += 1
            while i < length and raw[i].isspace():
                i += 1
            if i >= length or raw[i] not in "\"'":
                raise XMLSyntaxError(
                    f"attribute {attr_name!r} value must be quoted", self._offset(pos)
                )
            quote = raw[i]
            i += 1
            value_end = raw.find(quote, i)
            if value_end < 0:
                raise XMLSyntaxError(
                    f"unterminated value for attribute {attr_name!r}", self._offset(pos)
                )
            attrs.append((attr_name, resolve_entities(raw[i:value_end])))
            i = value_end + 1
        return name, tuple(attrs)


def parse_events(
    source: Union[str, io.TextIOBase], keep_whitespace: bool = False
) -> Iterator[Event]:
    """Yield streaming events for ``source`` (string or text file object)."""
    return StreamingXMLParser(source, keep_whitespace=keep_whitespace).events()


def parse_events_with_dtd(
    source: Union[str, io.TextIOBase], keep_whitespace: bool = False
) -> Tuple[Iterable[Event], StreamingXMLParser]:
    """Return ``(events, parser)`` so callers can inspect the DOCTYPE subset.

    The DOCTYPE is only available once parsing has progressed past the
    prolog; callers typically consume the first event (``StartDocument``)
    plus the root ``StartElement`` before reading
    :attr:`StreamingXMLParser.doctype_internal_subset`.
    """
    parser = StreamingXMLParser(source, keep_whitespace=keep_whitespace)
    return parser.events(), parser
