"""Serialization of trees and event streams back to XML text.

The FluX runtime produces its result as an *output event stream* which is
serialized incrementally (so results never need to be materialized); the
baseline engines serialize result trees.  Both paths share the escaping
helpers below so outputs are byte-for-byte comparable in tests.
"""

from __future__ import annotations

from typing import IO, Iterable, List, Optional

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.tree import XMLElement, XMLNode, XMLText


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def serialize_tree(node: XMLNode, indent: Optional[str] = None) -> str:
    """Serialize a tree to XML text.

    ``indent`` enables pretty-printing (children on their own lines); the
    default compact form is used whenever outputs are compared.
    """
    parts: List[str] = []
    _write_node(node, parts, indent, 0)
    return "".join(parts)


def _write_node(node: XMLNode, parts: List[str], indent: Optional[str], depth: int) -> None:
    pad = (indent * depth) if indent else ""
    newline = "\n" if indent else ""
    if isinstance(node, XMLText):
        parts.append(pad + escape_text(node.text) + newline)
        return
    attrs = "".join(f' {name}="{escape_attribute(value)}"' for name, value in node.attrs.items())
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    only_text = all(isinstance(child, XMLText) for child in node.children)
    if only_text:
        text = "".join(escape_text(child.text) for child in node.children)  # type: ignore[union-attr]
        parts.append(f"{pad}<{node.tag}{attrs}>{text}</{node.tag}>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>{newline}")
    for child in node.children:
        _write_node(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.tag}>{newline}")


class EventSerializer:
    """Incremental serializer for output event streams.

    Events are written to ``sink`` (any object with a ``write(str)`` method)
    as they arrive; the serializer checks well-formedness (balanced tags) so
    bugs in plan operators surface as errors rather than bad output.
    """

    def __init__(self, sink: IO[str]):
        self._sink = sink
        self._stack: List[str] = []
        self.bytes_written = 0

    def write(self, event: Event) -> None:
        """Serialize a single event."""
        if isinstance(event, (StartDocument, EndDocument)):
            return
        if isinstance(event, StartElement):
            attrs = "".join(
                f' {name}="{escape_attribute(value)}"' for name, value in event.attrs
            )
            self._emit(f"<{event.name}{attrs}>")
            self._stack.append(event.name)
        elif isinstance(event, EndElement):
            if not self._stack or self._stack[-1] != event.name:
                raise XMLSyntaxError(
                    f"serializer received unbalanced end tag </{event.name}>"
                )
            self._stack.pop()
            self._emit(f"</{event.name}>")
        elif isinstance(event, Text):
            self._emit(escape_text(event.text))
        else:  # pragma: no cover - future event kinds
            raise XMLSyntaxError(f"cannot serialize event {event!r}")

    def write_all(self, events: Iterable[Event]) -> None:
        """Serialize every event of ``events``."""
        for event in events:
            self.write(event)

    def close(self) -> None:
        """Check that all opened elements were closed."""
        if self._stack:
            raise XMLSyntaxError(
                f"serializer closed with unclosed elements: {self._stack!r}"
            )

    def _emit(self, text: str) -> None:
        self._sink.write(text)
        self.bytes_written += len(text)


def serialize_events(events: Iterable[Event]) -> str:
    """Serialize an event stream to an XML string."""
    import io

    sink = io.StringIO()
    serializer = EventSerializer(sink)
    serializer.write_all(events)
    serializer.close()
    return sink.getvalue()
