"""In-memory XML tree.

The tree model serves three purposes:

* the DOM baseline engine materializes whole documents as trees,
* the projection baseline materializes *projected* subtrees,
* the FluX runtime materializes only the buffered paths of the BDF as
  (small) trees that buffered sub-expressions are evaluated against.

Nodes are intentionally plain: an :class:`XMLElement` has a tag, attributes,
children (elements and text nodes) and a parent pointer; an :class:`XMLText`
holds character data.  ``size_estimate`` mirrors the accounting of the event
model so that buffered bytes are comparable across engines.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import parse_events

#: A child of an element is either a nested element or a text node.
XMLNode = Union["XMLElement", "XMLText"]


class XMLText:
    """A text node."""

    __slots__ = ("text", "parent")

    def __init__(self, text: str, parent: Optional["XMLElement"] = None):
        self.text = text
        self.parent = parent

    def size_estimate(self) -> int:
        """Approximate bytes held by this node (used for buffer accounting)."""
        return len(self.text)

    def string_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLText({self.text!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, XMLText) and other.text == self.text

    def __hash__(self) -> int:
        return hash(("text", self.text))


class XMLElement:
    """An element node with attributes and ordered children."""

    __slots__ = ("tag", "attrs", "children", "parent")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        children: Optional[List[XMLNode]] = None,
        parent: Optional["XMLElement"] = None,
    ):
        self.tag = tag
        self.attrs: Dict[str, str] = dict(attrs) if attrs else {}
        self.children: List[XMLNode] = []
        self.parent = parent
        if children:
            for child in children:
                self.append(child)

    # ----------------------------------------------------------- structure

    def append(self, node: XMLNode) -> XMLNode:
        """Append ``node`` as the last child and set its parent pointer."""
        node.parent = self
        self.children.append(node)
        return node

    def append_text(self, text: str) -> XMLText:
        """Append character data, merging with a trailing text sibling."""
        if self.children and isinstance(self.children[-1], XMLText):
            last = self.children[-1]
            last.text += text
            return last
        return self.append(XMLText(text))  # type: ignore[return-value]

    def child_elements(self, tag: Optional[str] = None) -> List["XMLElement"]:
        """Child elements, optionally filtered by tag (``"*"`` matches all)."""
        result = []
        for child in self.children:
            if isinstance(child, XMLElement):
                if tag is None or tag == "*" or child.tag == tag:
                    result.append(child)
        return result

    def first_child(self, tag: str) -> Optional["XMLElement"]:
        """First child element with the given tag, or ``None``."""
        for child in self.children:
            if isinstance(child, XMLElement) and child.tag == tag:
                return child
        return None

    def descendants(self, tag: Optional[str] = None) -> Iterator["XMLElement"]:
        """Yield descendant elements in document order (excluding ``self``)."""
        for child in self.children:
            if isinstance(child, XMLElement):
                if tag is None or tag == "*" or child.tag == tag:
                    yield child
                yield from child.descendants(tag)

    def iter(self) -> Iterator["XMLElement"]:
        """Yield ``self`` and all descendant elements in document order."""
        yield self
        yield from self.descendants()

    # ---------------------------------------------------------------- data

    def string_value(self) -> str:
        """Concatenated text of all descendant text nodes (XPath string value)."""
        parts: List[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: List[str]) -> None:
        for child in self.children:
            if isinstance(child, XMLText):
                parts.append(child.text)
            else:
                child._collect_text(parts)

    def get(self, attr: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute lookup."""
        return self.attrs.get(attr, default)

    def size_estimate(self) -> int:
        """Approximate bytes of the whole subtree (node overheads + text)."""
        total = 16 + len(self.tag) + sum(len(k) + len(v) + 4 for k, v in self.attrs.items())
        for child in self.children:
            total += child.size_estimate()
        return total

    def node_count(self) -> int:
        """Number of element nodes in the subtree rooted at ``self``."""
        count = 1
        for child in self.children:
            if isinstance(child, XMLElement):
                count += child.node_count()
        return count

    # --------------------------------------------------------------- misc

    def deep_equal(self, other: "XMLElement") -> bool:
        """Structural equality: same tag, attributes, and children."""
        if not isinstance(other, XMLElement):
            return False
        if self.tag != other.tag or self.attrs != other.attrs:
            return False
        if len(self.children) != len(other.children):
            return False
        for mine, theirs in zip(self.children, other.children):
            if isinstance(mine, XMLText) != isinstance(theirs, XMLText):
                return False
            if isinstance(mine, XMLText):
                if mine.text != theirs.text:
                    return False
            elif not mine.deep_equal(theirs):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLElement({self.tag!r}, children={len(self.children)})"


def build_tree(events: Iterable[Event]) -> XMLElement:
    """Construct a tree from an event stream and return the root element."""
    root: Optional[XMLElement] = None
    stack: List[XMLElement] = []
    for event in events:
        if isinstance(event, (StartDocument, EndDocument)):
            continue
        if isinstance(event, StartElement):
            element = XMLElement(event.name, event.attributes)
            if stack:
                stack[-1].append(element)
            elif root is None:
                root = element
            else:
                raise XMLSyntaxError("multiple root elements in event stream")
            stack.append(element)
        elif isinstance(event, EndElement):
            if not stack or stack[-1].tag != event.name:
                raise XMLSyntaxError(f"mismatched end tag </{event.name}> in event stream")
            stack.pop()
        elif isinstance(event, Text):
            if not stack:
                raise XMLSyntaxError("text outside the root element in event stream")
            stack[-1].append_text(event.text)
    if root is None:
        raise XMLSyntaxError("event stream contained no root element")
    if stack:
        raise XMLSyntaxError("event stream ended with unclosed elements")
    return root


def parse_tree(source: Union[str, io.TextIOBase], keep_whitespace: bool = False) -> XMLElement:
    """Parse XML text (or a file object) into a tree and return the root."""
    return build_tree(parse_events(source, keep_whitespace=keep_whitespace))


def tree_to_events(node: XMLNode, document: bool = False) -> Iterator[Event]:
    """Convert a tree (back) into the event vocabulary.

    When ``document`` is true the stream is wrapped in
    ``StartDocument``/``EndDocument`` events.
    """
    if document:
        yield StartDocument()
    yield from _node_events(node)
    if document:
        yield EndDocument()


def _node_events(node: XMLNode) -> Iterator[Event]:
    if isinstance(node, XMLText):
        yield Text(node.text)
        return
    yield StartElement(node.tag, tuple(node.attrs.items()))
    for child in node.children:
        yield from _node_events(child)
    yield EndElement(node.tag)
