"""Command-line interface.

Usage (installed as a module; no console script is registered to keep the
package dependency-free)::

    python -m repro run --query query.xq --input document.xml [--dtd schema.dtd]
    python -m repro explain --query query.xq --dtd schema.dtd
    python -m repro compare --query query.xq --input document.xml --dtd schema.dtd

* ``run`` evaluates an XQuery over an XML document with the FluX engine and
  writes the result to stdout (or ``--output``), reporting buffering and
  timing statistics on stderr.
* ``explain`` compiles a query and prints the optimizer stages: the
  normalized/optimized XQuery, the generated FluX query, and the buffer
  description forest.
* ``compare`` runs the query with all three engines (FluX, projection, DOM)
  and prints a memory/runtime comparison table.

Queries and documents are read from files; ``-`` means stdin.  The DTD can
be given explicitly with ``--dtd``; otherwise, if the document carries a
DOCTYPE with an internal subset, that subset is used; without any schema the
query still runs, with maximal buffering.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.optimizer import OptimizerPipeline
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.engines.projection_engine import ProjectionEngine
from repro.bench.harness import BenchmarkHarness
from repro.bench.reporting import format_table
from repro.xmlstream.parser import StreamingXMLParser


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_dtd(dtd_path: Optional[str], document: Optional[str]) -> Optional[DTD]:
    if dtd_path:
        return parse_dtd(_read(dtd_path))
    if document:
        parser = StreamingXMLParser(document)
        try:
            for _ in parser.events():
                pass
        except Exception:  # pragma: no cover - malformed input surfaces later
            return None
        if parser.doctype_internal_subset:
            return parse_dtd(parser.doctype_internal_subset)
    return None


def _command_run(args: argparse.Namespace) -> int:
    query = _read(args.query)
    document = _read(args.input)
    dtd = _load_dtd(args.dtd, document)
    engine = FluxEngine(dtd, validate=not args.no_validate)
    result = engine.execute(query, document)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.output)
    else:
        sys.stdout.write(result.output + "\n")
    print(
        f"[flux] peak buffer: {result.peak_buffer_bytes} B, "
        f"time: {result.stats.elapsed_seconds * 1000:.1f} ms, "
        f"events: {result.stats.events_processed}",
        file=sys.stderr,
    )
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    query = _read(args.query)
    dtd = _load_dtd(args.dtd, None)
    pipeline = OptimizerPipeline(dtd)
    compiled = pipeline.compile(query)
    print(compiled.describe())
    from repro.runtime.compiler import compile_flux

    plan = compile_flux(compiled.flux, compiled.dtd)
    print("== Buffer description forest ==")
    print(plan.bdf.describe())
    print("== Safety ==")
    print("safe" if compiled.is_safe else "\n".join(str(v) for v in compiled.safety_violations))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    query = _read(args.query)
    document = _read(args.input)
    dtd = _load_dtd(args.dtd, document)
    engines = {
        "flux": FluxEngine(dtd),
        "projection": ProjectionEngine(dtd),
        "dom": DomEngine(dtd),
    }
    harness = BenchmarkHarness(engines)
    harness.run(query, document, args.query, args.input)
    print(format_table(harness.measurements, metric="peak_buffer_bytes", title="peak buffer memory"))
    print()
    print(format_table(harness.measurements, metric="elapsed_seconds", title="evaluation runtime"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FluXQuery reproduction: streaming XQuery with DTD-driven buffer minimization",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="evaluate a query over a document")
    run_parser.add_argument("--query", "-q", required=True, help="XQuery file ('-' for stdin)")
    run_parser.add_argument("--input", "-i", required=True, help="XML document file ('-' for stdin)")
    run_parser.add_argument("--dtd", "-d", help="DTD file (defaults to the document's DOCTYPE)")
    run_parser.add_argument("--output", "-o", help="result file (default stdout)")
    run_parser.add_argument("--no-validate", action="store_true", help="skip DTD validation")
    run_parser.set_defaults(handler=_command_run)

    explain_parser = subparsers.add_parser("explain", help="show the optimizer stages for a query")
    explain_parser.add_argument("--query", "-q", required=True)
    explain_parser.add_argument("--dtd", "-d", help="DTD file")
    explain_parser.set_defaults(handler=_command_explain)

    compare_parser = subparsers.add_parser("compare", help="compare engines on one query/document")
    compare_parser.add_argument("--query", "-q", required=True)
    compare_parser.add_argument("--input", "-i", required=True)
    compare_parser.add_argument("--dtd", "-d", help="DTD file")
    compare_parser.set_defaults(handler=_command_compare)

    return parser


def main(argv: Optional[list] = None) -> int:
    """Entry point used by ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
